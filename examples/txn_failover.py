#!/usr/bin/env python
"""Drive a 2PC commit through a mid-commit coordinator crash.

The transaction layer (``repro.txn``) surfaces a multi-key transaction as
a Correctable: a speculative **PREPARED** preliminary view fires when every
participant voted yes, and the final view carries the real commit/abort
outcome.  This example shows both faces of that speculation:

1. a healthy transaction — PREPARED arrives first, the durable decision
   follows a couple of milliseconds later, every owner applies the write;
2. a stream of transactions through a **coordinator crash**: the active
   coordinator dies with decisions in flight, a standby detects the
   heartbeat silence, fences the old epoch, reads every participant's log
   and finishes the protocol.  Transactions whose decision never became
   durable are aborted — including any whose PREPARED view the client
   already saw (the one lie the speculative view can tell).

Everything runs on the simulated clock with fixed seeds; re-running prints
the same trace.  The full grid (fault scenario × transaction size, with
the atomicity audit asserted per cell) is the fig16 benchmark family::

    python -m repro.bench fig16 --quick
    python -m repro.bench fig16 --jobs 4      # byte-identical, parallel

Run with::

    python examples/txn_failover.py
"""

from repro.core.cluster_spec import ClusterSpec
from repro.txn import TxnConfig, build_txn_fabric

SEED = 7


def build_fabric():
    """A 3-node cluster with participants, two coordinators, one manager."""
    built = ClusterSpec(nodes=3, seed=SEED, record_count=50,
                        client_regions=()).build()
    fabric = build_txn_fabric(built, config=TxnConfig(),
                              coordinator_count=2)
    return built.env, fabric


def watch(label, correctable, env):
    """Print every view of a transaction as it lands."""
    t0 = env.now()

    def _update(view):
        print(f"  [{env.now() - t0:7.1f} ms] {label}: PREPARED "
              f"(speculative — every participant voted yes)")

    def _final(view):
        print(f"  [{env.now() - t0:7.1f} ms] {label}: FINAL "
              f"{view.value['outcome'].upper()}")

    correctable.set_callbacks(
        on_update=_update, on_final=_final,
        on_error=lambda exc: print(f"  {label}: ERROR {exc}"))


def main():
    print("== 1. A healthy commit ==")
    env, fabric = build_fabric()
    keys = fabric.built.dataset.keys()
    watch("txn", fabric.manager.execute({keys[0]: "a", keys[1]: "b"}), env)
    env.run(until=2_000.0)
    print(f"  owners applied: every replica of {keys[0]!r} and {keys[1]!r} "
          f"holds the committed value")
    fabric.assert_atomic()

    print("\n== 2. Coordinator crash mid-commit ==")
    env, fabric = build_fabric()
    manager = fabric.manager
    keys = fabric.built.dataset.keys()
    first, second = fabric.coordinators

    # A stream of single-key transactions, one every 60 ms.
    for i in range(20):
        env.scheduler.schedule_at(
            i * 60.0,
            lambda i=i: watch(f"txn-{i:02d}",
                              manager.execute({keys[i]: f"v{i}"}), env))
    # ... and the active coordinator dies 500 ms in, restarting 3 s later.
    env.scheduler.schedule_at(500.0, first.crash)
    env.scheduler.schedule_at(3_500.0, first.recover)
    env.run(until=25_000.0)

    stats = manager.stats
    print(f"\n  submitted           : {manager.txns_submitted}")
    print(f"  committed / aborted : {len(manager.acked_commits)} / "
          f"{len(manager.acked_aborts)}")
    print(f"  takeovers           : {fabric.total_takeovers()} "
          f"(epoch now {fabric.active_coordinator().epoch}, active: "
          f"{fabric.active_coordinator().name})")
    print(f"  time to recover     : {fabric.time_to_recover_ms():.1f} ms "
          f"(probe start -> every in-flight txn resolved)")
    print(f"  client retries      : {manager.retries}, redirects followed: "
          f"{manager.redirects_followed}")
    print(f"  prepared views      : {stats.prepared_views} "
          f"({stats.matched} kept their promise, {stats.mismatched} revoked)")
    report = fabric.assert_atomic()
    print(f"  atomicity audit     : clean — {report['partial_commits']} "
          f"partial commits, {report['lost_acked_commits']} lost acked "
          f"commits, {report['in_doubt']} in doubt")


if __name__ == "__main__":
    main()
