"""Figure 10 — dequeue bandwidth per operation: ZK recipe vs Correctable ZooKeeper."""

import pytest

from repro.bench.fig10_zk_bandwidth import format_fig10, run_fig10


@pytest.mark.benchmark(group="fig10")
def test_fig10_dequeue_bandwidth(benchmark, save_report):
    records = benchmark.pedantic(
        run_fig10,
        kwargs=dict(stocks=(500, 1000), client_counts=(1, 4, 12), seed=42),
        rounds=1, iterations=1)
    save_report("fig10_zookeeper_bandwidth", format_fig10(records))

    zk = {(r["stock"], r["clients"]): r for r in records if r["system"] == "ZK"}
    czk = {(r["stock"], r["clients"]): r for r in records if r["system"] == "CZK"}

    # ZK cost grows with queue size and with contention; CZK stays flat.
    assert zk[(1000, 1)]["kb_per_op"] > zk[(500, 1)]["kb_per_op"] * 1.5
    assert zk[(500, 12)]["kb_per_op"] > zk[(500, 1)]["kb_per_op"]
    assert czk[(1000, 1)]["kb_per_op"] == pytest.approx(
        czk[(500, 1)]["kb_per_op"], rel=0.1)
    # CZK saves at least the 44–81 % range the paper reports.
    for record in records:
        if record["system"] == "CZK":
            assert record["saving_vs_zk_pct"] > 40
    # Contention causes retries only in the ZK recipe.
    assert zk[(500, 12)]["retries"] > 0
    assert all(r["retries"] == 0 for r in records if r["system"] == "CZK")
    # Every ticket is dequeued exactly once in both systems.
    for record in records:
        assert record["dequeued"] == record["stock"]
