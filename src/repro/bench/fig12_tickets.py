"""Figure 12: selling tickets with ZooKeeper vs Correctable ZooKeeper.

Four retailers, colocated with the Frankfurt follower (the leader is in
Ireland), concurrently sell a fixed stock of tickets.  With Correctable
ZooKeeper the retailers confirm purchases from the preliminary (locally
simulated) dequeue while plenty of stock remains, and only wait for the
final, atomic result for the last ``threshold`` tickets.  Shapes to
reproduce:

* CZK purchase latency is low (≈ local RTT) for all but the last
  ``threshold`` tickets, where it jumps to the ZK commit latency;
* vanilla ZooKeeper pays the full commit latency (plus contention
  variability) for every ticket;
* nothing is oversold: confirmed purchases never exceed the stock.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.apps.tickets import TicketSeller
from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.bindings.zookeeper import ZooKeeperQueueBinding
from repro.core.client import CorrectableClient
from repro.metrics.latency import LatencyRecorder
from repro.metrics.summary import format_table
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region
from repro.zookeeper_sim.cluster import ZooKeeperCluster


def _sell_out(system: str, stock: int, retailers: int, threshold: int,
              seed: int) -> Dict:
    """Run one sell-out: ``retailers`` concurrently purchase until sold out."""
    env = SimEnvironment(seed=seed)
    cluster = ZooKeeperCluster(env, leader_region=Region.IRL,
                               follower_regions=(Region.FRK, Region.VRG))
    cluster.preload_queue("/tickets", [f"ticket-{i}" for i in range(stock)])
    use_icg = system == "CZK"
    purchases: List[Dict] = []
    sellers: List[TicketSeller] = []

    def _run_retailer(seller: TicketSeller) -> None:
        def _buy() -> None:
            seller.purchase_ticket(_bought, use_icg=use_icg)

        def _bought(outcome) -> None:
            if outcome.sold_out:
                return
            purchases.append({
                "ticket": outcome.ticket,
                "latency_ms": outcome.latency_ms,
                "used_preliminary": outcome.used_preliminary,
                "remaining": outcome.remaining,
            })
            _buy()

        _buy()

    for index in range(retailers):
        node = cluster.add_client(f"retailer-{index}", region=Region.FRK,
                                  connect_region=Region.FRK, colocated=True)
        seller = TicketSeller(
            CorrectableClient(ZooKeeperQueueBinding(node, "/tickets")),
            queue_path="/tickets", threshold=threshold)
        sellers.append(seller)
        _run_retailer(seller)
    env.run_until_idle()

    # Order purchases by completion order to obtain the per-ticket series.
    series = [{"ticket_number": i + 1, **purchase}
              for i, purchase in enumerate(purchases)]
    early = LatencyRecorder("early")
    last = LatencyRecorder("last")
    for entry in series:
        if entry["ticket_number"] <= stock - threshold:
            early.record(entry["latency_ms"])
        else:
            last.record(entry["latency_ms"])
    return {
        "system": system,
        "stock": stock,
        "threshold": threshold,
        "tickets_sold": len(series),
        "oversold": max(0, len(series) - stock),
        "series": series,
        "early_mean_ms": early.mean(),
        "last_mean_ms": last.mean() if last.count else early.mean(),
        "preliminary_purchases": sum(
            1 for entry in series if entry["used_preliminary"]),
    }


def build_fig12_points(stock: int = 500, retailers: int = 4,
                       threshold: int = 20,
                       systems: Iterable[str] = ("CZK", "ZK"),
                       seed: int = 42) -> List[SweepPoint]:
    """One sweep point per system's sell-out run."""
    return make_points("fig12", (
        ({"system": system},
         dict(system=system, stock=stock, retailers=retailers,
              threshold=threshold, seed=seed))
        for system in systems))


def run_fig12_point(point: SweepPoint) -> Dict:
    return _sell_out(**point.kwargs)


def run_fig12(stock: int = 500, retailers: int = 4, threshold: int = 20,
              systems: Iterable[str] = ("CZK", "ZK"),
              seed: int = 42, jobs: JobsSpec = 1) -> Dict[str, Dict]:
    """Regenerate the Figure 12 per-ticket latency series for CZK and ZK."""
    points = build_fig12_points(stock=stock, retailers=retailers,
                                threshold=threshold, systems=systems,
                                seed=seed)
    sweep = run_sweep(points, run_fig12_point, jobs=jobs)
    return {point.label("system"): record
            for point, record in zip(points, sweep.records())}


def format_fig12(results: Dict[str, Dict]) -> str:
    rows = []
    for system, result in results.items():
        rows.append([
            system, result["stock"], result["tickets_sold"],
            result["oversold"], result["preliminary_purchases"],
            result["early_mean_ms"], result["last_mean_ms"],
        ])
    return format_table(
        ["system", "stock", "sold", "oversold", "prelim purchases",
         "mean latency before last-N (ms)", "mean latency last-N (ms)"],
        rows,
        title="Figure 12 — ticket purchase latency (4 retailers, FRK follower, IRL leader)")
