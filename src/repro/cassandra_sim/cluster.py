"""Cluster assembly for the simulated Cassandra deployment."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cassandra_sim.client import CassandraClient
from repro.cassandra_sim.config import CassandraConfig
from repro.cassandra_sim.partitioner import RingPartitioner
from repro.cassandra_sim.replica import CassandraReplica
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region, replica_regions_default


class CassandraCluster:
    """A replicated Cassandra deployment inside one simulation environment."""

    def __init__(self, env: SimEnvironment,
                 config: Optional[CassandraConfig] = None,
                 replica_regions: Optional[Sequence[str]] = None) -> None:
        self.env = env
        self.config = config if config is not None else CassandraConfig()
        regions = list(replica_regions if replica_regions is not None
                       else replica_regions_default())
        if len(regions) < self.config.replication_factor:
            raise ValueError(
                "need at least as many replica regions as the replication factor")
        names = [f"cassandra-{i}-{region}" for i, region in enumerate(regions)]
        self.partitioner = RingPartitioner(names, self.config.replication_factor)
        self.replicas: List[CassandraReplica] = [
            CassandraReplica(name, region, env.network, self.config,
                             self.partitioner)
            for name, region in zip(names, regions)
        ]
        self._by_region: Dict[str, CassandraReplica] = {}
        for replica in self.replicas:
            self._by_region.setdefault(replica.region, replica)
        self._clients: List[CassandraClient] = []

    # -- lookup -----------------------------------------------------------------
    def replica_in(self, region: str) -> CassandraReplica:
        """The replica deployed in ``region``."""
        try:
            return self._by_region[region]
        except KeyError:
            raise KeyError(f"no replica deployed in region {region}") from None

    def replica_names(self) -> List[str]:
        return [replica.name for replica in self.replicas]

    # -- clients -----------------------------------------------------------------
    def add_client(self, name: str, region: str = Region.IRL,
                   contact_region: str = Region.FRK,
                   fallbacks: bool = False) -> CassandraClient:
        """Create a client in ``region`` connected to the replica in ``contact_region``.

        ``fallbacks=True`` hands the client the remaining replicas as backup
        coordinators so a client-side timeout can fail over (used by the
        fault experiments together with ``config.client_timeout_ms``).
        """
        contact = self.replica_in(contact_region)
        fallback_contacts = None
        if fallbacks:
            fallback_contacts = [r.name for r in self.replicas
                                 if r.name != contact.name]
        client = CassandraClient(name, region, self.env.network,
                                 contact.name, self.config,
                                 fallback_contacts=fallback_contacts)
        self._clients.append(client)
        return client

    @property
    def clients(self) -> List[CassandraClient]:
        return list(self._clients)

    # -- data loading ----------------------------------------------------------------
    def preload(self, items: Dict[str, object]) -> None:
        """Install initial data identically on every replica (time zero state)."""
        from repro.cassandra_sim.versions import VersionedValue

        for key, value in items.items():
            version = VersionedValue(value, (0.0, "preload", 0))
            for replica in self.replicas:
                replica.table.apply(key, version)

    # -- statistics -------------------------------------------------------------------
    def total_preliminaries_flushed(self) -> int:
        return sum(r.preliminaries_flushed for r in self.replicas)

    def total_confirmations_sent(self) -> int:
        return sum(r.confirmations_sent for r in self.replicas)
