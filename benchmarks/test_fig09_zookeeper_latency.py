"""Figure 9 — ZooKeeper enqueue latency gaps and §6.2.2 enqueue bandwidth."""

import pytest

from repro.bench.fig09_zk_latency import format_fig09, run_fig09


@pytest.mark.benchmark(group="fig09")
def test_fig09_zookeeper_latency_gaps(benchmark, save_report):
    records = benchmark.pedantic(run_fig09,
                                 kwargs=dict(samples=100, seed=42),
                                 rounds=1, iterations=1)
    save_report("fig09_zookeeper_latency", format_fig09(records))
    by_label = {r["configuration"]: r for r in records}

    # Preliminary latency equals the RTT to the connected server.
    assert by_label["leader-IRL / leader-IRL"]["czk_preliminary_ms"] < 6
    assert 15 < by_label["follower-FRK / leader-IRL"]["czk_preliminary_ms"] < 30
    assert by_label["leader-VRG / leader-VRG"]["czk_preliminary_ms"] > 70
    # The final view costs what vanilla ZooKeeper costs.
    for record in records:
        assert record["czk_final_ms"] == pytest.approx(record["zk_final_ms"],
                                                       rel=0.2)
    # The headline configuration: nearby follower, distant leader.
    gaps = {r["configuration"]: r["latency_gap_ms"] for r in records}
    assert max(gaps, key=gaps.get) == "follower-IRL / leader-VRG"
    assert gaps["follower-IRL / leader-VRG"] > 100
    # §6.2.2: one extra (preliminary) response ≈ +50 % enqueue bandwidth.
    for record in records:
        overhead = record["czk_bytes_per_op"] / record["zk_bytes_per_op"] - 1.0
        assert 0.2 < overhead < 0.9
