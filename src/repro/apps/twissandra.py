"""The Twissandra-style microblogging case study (Section 6.3.1, Figure 11).

``get_timeline`` proceeds in two steps — fetch the timeline (tweet IDs), then
fetch each tweet by ID — and is therefore amenable to the same speculation
pattern as the ad-serving system: prefetch tweets on the preliminary timeline
and confirm when the final timeline arrives.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Callable, Dict, List, Optional

from repro.apps.datasets import TwissandraDataset
from repro.core.client import CorrectableClient
from repro.core.correctable import Correctable
from repro.core.operations import read, write
from repro.core.promise import Promise
from repro.core.speculation import SpeculationStats

DoneCallback = Callable[[Dict[str, Any]], None]


class Twissandra:
    """Timelines and tweets stored in a replicated key-value store."""

    def __init__(self, client: CorrectableClient, dataset: TwissandraDataset,
                 clock: Optional[Callable[[], float]] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.client = client
        self.dataset = dataset
        self._clock = clock if clock is not None else getattr(client.binding, "clock", None)
        self._rng = rng if rng is not None else random.Random(17)
        self._new_tweet_ids = itertools.count(dataset.tweet_count)
        self.speculation_stats = SpeculationStats()
        self.operations = 0

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- reading a timeline ----------------------------------------------------
    def get_timeline(self, timeline_key: str, on_done: DoneCallback,
                     speculate: bool = True) -> Correctable:
        """Fetch a user's timeline with its tweet bodies.

        ``speculate=True`` reads the timeline with ICG and prefetches tweets
        on the preliminary view; ``speculate=False`` is the strong-read
        baseline of Figure 11.
        """
        self.operations += 1
        started = self._now()

        def _fetch_tweets(tweet_ids: List[str]) -> Promise:
            if not tweet_ids:
                return Promise.resolved([])
            fetches = [self.client.invoke_strong(read(tweet_id))
                       for tweet_id in tweet_ids]
            return Correctable.all(fetches)

        def _deliver(tweets: List[str]) -> None:
            on_done({"tweets": tweets,
                     "latency_ms": self._now() - started})

        if speculate:
            timeline = self.client.invoke(read(timeline_key))
            result = timeline.speculate(_fetch_tweets,
                                        stats=self.speculation_stats)
            result.set_callbacks(
                on_final=lambda view: _deliver(view.value),
                on_error=lambda exc: on_done(
                    {"error": exc, "latency_ms": self._now() - started}),
            )
            return result

        timeline = self.client.invoke_strong(read(timeline_key))
        derived = Correctable(clock=self._clock)
        timeline.set_callbacks(
            on_final=lambda view: _fetch_tweets(view.value).on_ready(
                lambda tweets: (derived.close(tweets, view.consistency),
                                _deliver(tweets))),
            on_error=lambda exc: on_done(
                {"error": exc, "latency_ms": self._now() - started}),
        )
        return derived

    # -- posting ------------------------------------------------------------------
    def post_tweet(self, timeline_key: str, body: str,
                   on_done: Optional[DoneCallback] = None) -> None:
        """Store a new tweet and prepend it to the author's timeline.

        The timeline update is the operation whose staleness the speculation
        on ``get_timeline`` has to cope with.
        """
        started = self._now()
        tweet_key = self.dataset.tweet_key(next(self._new_tweet_ids))
        tweet_write = self.client.invoke_strong(write(tweet_key, body))

        def _update_timeline(_view) -> None:
            current = self.dataset.timeline(timeline_key) \
                if timeline_key in self.dataset.timeline_keys() else []
            timeline_read = self.client.invoke_weak(read(timeline_key))

            def _write_back(view) -> None:
                existing = view.value if isinstance(view.value, list) else current
                updated = [tweet_key] + list(existing)[: self.dataset.timeline_length - 1]
                self.client.invoke_strong(write(timeline_key, updated)) \
                    .set_callbacks(on_final=lambda v: _finish())

            timeline_read.set_callbacks(on_final=_write_back,
                                        on_error=lambda exc: _finish(exc))

        def _finish(error: Optional[BaseException] = None) -> None:
            if on_done is not None:
                info: Dict[str, Any] = {"latency_ms": self._now() - started,
                                        "tweet_key": tweet_key}
                if error is not None:
                    info["error"] = error
                on_done(info)

        tweet_write.set_callbacks(on_final=_update_timeline,
                                  on_error=lambda exc: _finish(exc))

    def random_timeline_key(self) -> str:
        """A uniformly random timeline key (used by load generators)."""
        return self.dataset.timeline_key(
            self._rng.randrange(self.dataset.user_count))
