"""Live ring-rebalance orchestration: bootstrap → stream → announce → serve.

A :class:`RingRebalance` drives one membership change end to end on the
simulation scheduler while the cluster keeps serving:

1. **bootstrap** — for a join, the new replica node is created (state
   ``bootstrapping``) and registered on the network; the change is planned
   against the current ring and marked *in flight*
   (:meth:`RingPartitioner.begin`), at which point coordinators start
   forwarding writes to every node gaining a range.
2. **stream** — each :class:`StreamTask`'s source replica ships its key
   range to the gainer in stop-and-wait batches, charged to the source's
   processing queue so streaming competes with foreground traffic.
3. **announce** — once every task finishes, the change commits: the ring
   epoch bumps, preference caches invalidate, and in-flight requests routed
   by the old epoch get ``stale_epoch`` rejections that push coordinators to
   the post-rebalance preference list.
4. **serve** — a joining replica flips to ``serving``; a decommissioned or
   removed one flips to ``retired`` (it stays on the network rejecting
   stragglers, which is what drives client/coordinator re-routing).

The whole sequence is deterministic: the plan is a pure function of the
membership edit, streaming order follows the plan, and completion is driven
by simulated message events only.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cassandra_sim.partitioner import RingChange, StreamTask
from repro.cassandra_sim.replica import CassandraReplica


class RingRebalance:
    """One join/decommission/removal being executed against a live cluster."""

    def __init__(self, cluster, kind: str, node_name: str,
                 region: Optional[str] = None,
                 vnodes: Optional[int] = None,
                 on_complete: Optional[Callable[["RingRebalance"], None]] = None
                 ) -> None:
        if kind not in ("join", "decommission", "remove"):
            raise ValueError(f"unknown rebalance kind {kind!r}")
        if kind == "join" and region is None:
            raise ValueError("a joining node needs a region")
        self.cluster = cluster
        self.kind = kind
        self.node_name = node_name
        self.region = region
        self.vnodes = vnodes
        self.on_complete = on_complete
        self.change: Optional[RingChange] = None
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._remaining = 0
        #: Stream tasks that could not run (source crashed before streaming).
        self.skipped_tasks: List[StreamTask] = []

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def duration_ms(self) -> float:
        if self.started_at is None or self.completed_at is None:
            raise RuntimeError("rebalance has not completed")
        return self.completed_at - self.started_at

    # -- phases ---------------------------------------------------------------
    def start(self) -> None:
        """Bootstrap phase: plan the change and kick off streaming."""
        cluster = self.cluster
        partitioner = cluster.partitioner
        self.started_at = cluster.env.scheduler.now()
        if self.kind == "join":
            replica = cluster._add_replica(self.node_name, self.region,
                                           ring_state="bootstrapping")
            change = partitioner.plan_join(self.node_name, self.vnodes)
        elif self.kind == "decommission":
            replica = cluster.replica_by_name(self.node_name)
            change = partitioner.plan_decommission(self.node_name)
        else:
            replica = cluster.replica_by_name(self.node_name)
            change = partitioner.plan_remove(self.node_name)
        self.change = change
        self._replica = replica
        partitioner.begin(change)
        self._remaining = len(change.tasks)
        if self._remaining == 0:
            self._announce()
            return
        for task in change.tasks:
            source = cluster.replica_by_name(task.source)
            if not source.alive:
                # A crashed source cannot stream (forced removals racing a
                # second fault); the gainer still catches every new write via
                # forwarding, and read repair backfills the rest.
                self.skipped_tasks.append(task)
                self._task_done(task)
                continue
            source.begin_stream(task, self._task_done)

    def _task_done(self, task: StreamTask) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self._announce()

    def _announce(self) -> None:
        """Commit the ring change and flip the node's serving state."""
        cluster = self.cluster
        cluster.partitioner.commit(self.change)
        replica: CassandraReplica = self._replica
        if self.kind == "join":
            replica.ring_state = "serving"
        else:
            replica.ring_state = "retired"
        cluster._on_membership_committed(self)
        self.completed_at = cluster.env.scheduler.now()
        if self.on_complete is not None:
            self.on_complete(self)
