"""Simulated clock.

The clock only advances when the scheduler executes events; code running
inside the simulation reads time through :meth:`Clock.now`.
"""


class Clock:
    """A monotonically advancing simulated clock (milliseconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in milliseconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises:
            ValueError: if ``timestamp`` lies in the past.  The simulation
                never travels backwards; a violation indicates a scheduler
                bug rather than a recoverable condition.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.3f}ms)"
