"""Tests for the asyncio bridge."""

import asyncio

import pytest

from repro.core.asyncio_adapter import final_value, promise_to_future, view_stream
from repro.core.consistency import STRONG, WEAK
from repro.core.correctable import Correctable
from repro.core.errors import OperationError
from repro.core.promise import Promise


def _run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


class TestPromiseToFuture:
    def test_resolved_promise(self):
        async def scenario():
            promise = Promise.resolved(5)
            return await promise_to_future(promise)

        assert _run(scenario()) == 5

    def test_promise_resolved_later(self):
        async def scenario():
            promise = Promise()
            loop = asyncio.get_event_loop()
            loop.call_soon(promise.resolve, "later")
            return await promise_to_future(promise)

        assert _run(scenario()) == "later"

    def test_failed_promise_raises(self):
        async def scenario():
            promise = Promise.failed(OperationError("x"))
            return await promise_to_future(promise)

        with pytest.raises(OperationError):
            _run(scenario())


class TestFinalValue:
    def test_final_value_awaits_close(self):
        async def scenario():
            correctable = Correctable()
            loop = asyncio.get_event_loop()
            loop.call_soon(correctable.update, "weak", WEAK)
            loop.call_soon(correctable.close, "strong", STRONG)
            return await final_value(correctable)

        assert _run(scenario()) == "strong"


class TestViewStream:
    def test_yields_all_views_in_order(self):
        async def scenario():
            correctable = Correctable()
            loop = asyncio.get_event_loop()
            loop.call_soon(correctable.update, "a", WEAK)
            loop.call_soon(correctable.update, "b", WEAK)
            loop.call_soon(correctable.close, "c", STRONG)
            return [view.value async for view in view_stream(correctable)]

        assert _run(scenario()) == ["a", "b", "c"]

    def test_stream_raises_on_error(self):
        async def scenario():
            correctable = Correctable()
            loop = asyncio.get_event_loop()
            loop.call_soon(correctable.fail, OperationError("down"))
            return [view.value async for view in view_stream(correctable)]

        with pytest.raises(OperationError):
            _run(scenario())

    def test_already_closed_correctable_streams_history(self):
        async def scenario():
            correctable = Correctable()
            correctable.update("a", WEAK)
            correctable.close("b", STRONG)
            return [view.value async for view in view_stream(correctable)]

        assert _run(scenario()) == ["a", "b"]
