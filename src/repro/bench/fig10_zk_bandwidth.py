"""Figure 10: bandwidth cost of dequeue operations, ZK recipe vs CZK.

The standard ZooKeeper queue recipe reads the whole child list before every
dequeue, so its per-operation message size grows with queue length and with
contention-induced retries.  Correctable ZooKeeper's server-side dequeue only
exchanges constant-size messages.  Shapes to reproduce:

* ZK bytes/op grow with the initial stock size (500 vs 1000 tickets) and with
  the number of contending clients;
* CZK bytes/op are independent of queue size and dramatically lower
  (the paper reports 44–81 % savings).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.metrics.bandwidth import BandwidthProbe
from repro.metrics.summary import format_table
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region
from repro.zookeeper_sim.cluster import ZooKeeperCluster
from repro.zookeeper_sim.queue_recipe import DistributedQueue

DEFAULT_STOCKS = (500, 1000)
DEFAULT_CLIENT_COUNTS = (1, 4, 12)


def _drain_queue(system: str, stock: int, clients: int, seed: int) -> Dict:
    """Drain a preloaded queue with ``clients`` concurrent consumers."""
    env = SimEnvironment(seed=seed)
    cluster = ZooKeeperCluster(env, leader_region=Region.IRL,
                               follower_regions=(Region.FRK, Region.VRG))
    cluster.preload_queue("/tickets", [f"ticket-{i}" for i in range(stock)])
    consumers = [
        cluster.add_client(f"consumer-{i}", region=Region.FRK,
                           connect_region=Region.FRK, colocated=True)
        for i in range(clients)
    ]
    probe = BandwidthProbe(env.network, [c.name for c in consumers],
                           [s.name for s in cluster.servers])
    probe.start()
    stats = {"dequeued": 0, "operations": 0, "retries": 0}

    def _consume_with(queue: DistributedQueue) -> None:
        def _next() -> None:
            if system == "ZK":
                queue.dequeue_recipe(_done)
            else:
                queue.dequeue(icg=True, on_final=_done)

        def _done(resp: Dict) -> None:
            stats["operations"] += 1
            stats["retries"] += resp.get("retries", 0)
            result = resp.get("result") or {}
            if resp["ok"] and result.get("item") is not None:
                stats["dequeued"] += 1
                _next()
            # An empty queue (or error) stops this consumer.

        _next()

    for consumer in consumers:
        _consume_with(DistributedQueue(consumer, "/tickets"))
    env.run_until_idle()
    probe.stop()
    return {
        "system": system,
        "stock": stock,
        "clients": clients,
        "kb_per_op": probe.kilobytes_per_op(max(1, stats["dequeued"])),
        "dequeued": stats["dequeued"],
        "operations": stats["operations"],
        "retries": stats["retries"],
    }


def build_fig10_points(stocks: Iterable[int] = DEFAULT_STOCKS,
                       client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
                       seed: int = 42) -> List[SweepPoint]:
    """One sweep point per (stock, clients, system) drain."""
    return make_points("fig10", (
        ({"stock": stock, "clients": clients, "system": system},
         dict(system=system, stock=stock, clients=clients, seed=seed))
        for stock in stocks
        for clients in client_counts
        for system in ("ZK", "CZK")))


def run_fig10_point(point: SweepPoint) -> Dict:
    return _drain_queue(**point.kwargs)


def _merge_savings(records: List[Dict]) -> List[Dict]:
    """Fill ``saving_vs_zk_pct`` by pairing each CZK drain with its ZK twin."""
    zk_kb: Dict = {}
    for record in records:
        key = (record["stock"], record["clients"])
        if record["system"] == "ZK":
            zk_kb[key] = record["kb_per_op"]
            record["saving_vs_zk_pct"] = 0.0
        else:
            saving = 0.0
            if zk_kb.get(key, 0.0) > 0:
                saving = 100.0 * (1.0 - record["kb_per_op"] / zk_kb[key])
            record["saving_vs_zk_pct"] = saving
    return records


def run_fig10(stocks: Iterable[int] = DEFAULT_STOCKS,
              client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
              seed: int = 42, jobs: JobsSpec = 1) -> List[Dict]:
    """Regenerate the Figure 10 dequeue-bandwidth comparison."""
    points = build_fig10_points(stocks=stocks, client_counts=client_counts,
                                seed=seed)
    return _merge_savings(run_sweep(points, run_fig10_point, jobs=jobs)
                          .records())


def format_fig10(records: List[Dict]) -> str:
    rows = [[r["stock"], r["clients"], r["system"], r["kb_per_op"],
             r["dequeued"], r["retries"], r["saving_vs_zk_pct"]]
            for r in records]
    return format_table(
        ["stock", "clients", "system", "kB/op", "dequeued", "retries",
         "saving vs ZK (%)"],
        rows,
        title="Figure 10 — dequeue bandwidth: ZK recipe vs Correctable ZooKeeper")
