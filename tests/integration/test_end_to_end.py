"""End-to-end tests: the full Correctables stack over the simulated clusters."""

import pytest

from repro.apps.ads import AdServingSystem
from repro.apps.datasets import AdsDataset
from repro.bindings.cassandra import CassandraBinding
from repro.bindings.zookeeper import ZooKeeperQueueBinding
from repro.cassandra_sim.cluster import CassandraCluster
from repro.cassandra_sim.config import CassandraConfig
from repro.core.client import CorrectableClient
from repro.core.consistency import STRONG, WEAK
from repro.core.operations import dequeue, read, write
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region
from repro.zookeeper_sim.cluster import ZooKeeperCluster


class TestCassandraStack:
    def test_icg_read_speculation_window_matches_topology(self, cassandra_setup):
        """The preliminary/final gap equals the coordinator's quorum RTT."""
        env, cluster, node = cassandra_setup
        client = CorrectableClient(CassandraBinding(node))
        c = client.invoke(read("key1"))
        env.run_until_idle()
        prelim, final = c.views()
        gap = final.timestamp - prelim.timestamp
        # Coordinator in FRK gathers its quorum from IRL: RTT ≈ 20 ms.
        assert 15.0 < gap < 30.0

    def test_read_your_own_write_with_strong_reads(self, cassandra_setup):
        env, _, node = cassandra_setup
        client = CorrectableClient(CassandraBinding(node))
        for i in range(5):
            client.invoke_strong(write("counter", i))
            env.run_until_idle()
            c = client.invoke_strong(read("counter"))
            env.run_until_idle()
            assert c.value() == i

    def test_speculative_ads_end_to_end_on_cluster(self):
        env = SimEnvironment(seed=21)
        dataset = AdsDataset(profile_count=30, ad_count=60,
                             max_ads_per_profile=5, seed=2)
        cluster = CassandraCluster(env, CassandraConfig())
        cluster.preload(dataset.initial_items())
        node = cluster.add_client("app-client", Region.IRL, Region.FRK)
        app = AdServingSystem(CorrectableClient(CassandraBinding(node)), dataset)
        results = []
        app.fetch_ads_by_user_id("profile:0", results.append)
        env.run_until_idle()
        assert len(results[0]["ads"]) == len(dataset.ad_refs("profile:0"))
        assert results[0]["speculation_confirmed"]
        assert app.speculation_stats.confirmed == 1


class TestZooKeeperStack:
    def test_queue_binding_end_to_end_gap(self, zookeeper_setup):
        env, _, node = zookeeper_setup
        client = CorrectableClient(ZooKeeperQueueBinding(node, "/queue"))
        c = client.invoke(dequeue("/queue"))
        env.run_until_idle()
        prelim, final = c.views()
        assert prelim.consistency == WEAK and final.consistency == STRONG
        # Follower in FRK, leader in IRL: the commit path costs ≥ 2 WAN trips.
        assert final.timestamp - prelim.timestamp > 30.0
        assert prelim.value["item"] == final.value["item"]


class TestFaultTolerance:
    def test_cc2_read_survives_far_replica_crash(self, cassandra_setup):
        env, cluster, node = cassandra_setup
        cluster.replica_in(Region.VRG).crash()
        client = CorrectableClient(CassandraBinding(node))
        c = client.invoke(read("key1"))
        env.run_until_idle()
        assert c.is_final()
        assert c.value() == "value1"

    def test_w1_write_survives_replica_crash(self, cassandra_setup):
        env, cluster, node = cassandra_setup
        cluster.replica_in(Region.VRG).crash()
        client = CorrectableClient(CassandraBinding(node))
        c = client.invoke_strong(write("key1", "still-works"))
        env.run_until_idle()
        assert c.is_final()
        # The surviving replicas converge; the crashed one stays stale.
        assert cluster.replica_in(Region.FRK).table.read("key1").value == \
            "still-works"
        assert cluster.replica_in(Region.VRG).table.read("key1").value == \
            "value1"

    def test_partition_heal_lets_replication_catch_up(self, cassandra_setup):
        env, cluster, node = cassandra_setup
        frk = cluster.replica_in(Region.FRK)
        vrg = cluster.replica_in(Region.VRG)
        env.network.partition(frk.name, vrg.name)
        client = CorrectableClient(CassandraBinding(node))
        client.invoke_strong(write("key1", "v-partitioned"))
        env.run_until_idle()
        assert vrg.table.read("key1").value == "value1"   # still stale
        env.network.heal(frk.name, vrg.name)
        client.invoke_strong(write("key1", "v-healed"))
        env.run_until_idle()
        assert vrg.table.read("key1").value == "v-healed"

    def test_zookeeper_write_survives_follower_crash(self, zookeeper_setup):
        env, cluster, node = zookeeper_setup
        # Crash the follower the client is NOT connected to (VRG).
        crashed = [f for f in cluster.followers if f.region == Region.VRG][0]
        crashed.crash()
        client = CorrectableClient(ZooKeeperQueueBinding(node, "/queue"))
        c = client.invoke_strong(dequeue("/queue"))
        env.run_until_idle()
        # Leader + the remaining follower still form a majority.
        assert c.is_final()
        assert c.value()["item"] == "item-0"

    def test_zookeeper_progress_requires_majority(self, zookeeper_setup):
        env, cluster, node = zookeeper_setup
        for follower in cluster.followers:
            follower.crash()
        client = CorrectableClient(ZooKeeperQueueBinding(node, "/queue"))
        c = client.invoke_strong(dequeue("/queue"))
        env.run_until_idle()
        # With both followers down no quorum can form: the operation stays
        # open rather than returning an unsafe result.
        assert not c.is_done()


class TestDeterminism:
    def test_same_seed_same_results(self):
        def _run(seed):
            env = SimEnvironment(seed=seed)
            cluster = CassandraCluster(env, CassandraConfig())
            cluster.preload({"k": "v0"})
            node = cluster.add_client("c", Region.IRL, Region.FRK)
            client = CorrectableClient(CassandraBinding(node))
            c = client.invoke(read("k"))
            env.run_until_idle()
            return [(view.value, view.timestamp) for view in c.views()]

        assert _run(5) == _run(5)
        assert _run(5) != _run(6)
