"""Client-side request failover shared by the storage clients.

Both the Cassandra and ZooKeeper clients recover from an unresponsive
endpoint the same way: a per-request timeout fires, the request is re-sent
to the next endpoint in a rotation, and after a bounded number of re-sends
the caller gets a terminal error.  This mixin holds that machinery once so
the two stacks cannot drift apart.

Retry budgets and backoff come from a shared
:class:`~repro.core.retry.RetryPolicy`: hosts provide one via
:meth:`FailoverMixin._retry_policy` (the default wraps the historical
``_failover_retries()`` count in an immediate-retry policy).  A zero
backoff re-sends synchronously — no extra scheduler event — so the default
configuration reproduces the historical event traces byte for byte.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.retry import RetryPolicy


class FailoverMixin:
    """Timeout-driven request failover over a rotation of endpoints.

    Mixed into client :class:`~repro.sim.node.Node` subclasses.  The host
    class provides:

    * ``self.scheduler`` and ``self._pending`` (request id → pending-request
      object with ``attempts``, ``rotation_index``, ``timeout_event`` and
      ``on_final`` attributes), plus ``self.retries`` /
      ``self.failed_requests`` counters;
    * :meth:`_redispatch` — re-send the request to the next endpoint (and
      re-arm the timeout via :meth:`_arm_request_timeout`);
    * :meth:`_failover_retries` — how many re-sends before giving up (used
      by the default :meth:`_retry_policy`);
    * :meth:`_timeout_failure_response` — the error payload delivered to
      ``on_final`` when retries are exhausted.
    """

    #: Lazily-built policy cache (per instance; invalidated never — configs
    #: are immutable for the lifetime of a client).
    _failover_policy: Any = None

    def _retry_policy(self) -> RetryPolicy:
        """The policy governing this client's request failover.

        Hosts with backoff knobs override this; the default reproduces the
        historical behaviour (bounded immediate retries).
        """
        policy = self._failover_policy
        if policy is None:
            policy = RetryPolicy.immediate(self._failover_retries())
            self._failover_policy = policy
        return policy

    def _arm_request_timeout(self, pending: Any, req_id: int,
                             timeout_ms: float) -> None:
        if timeout_ms > 0:
            pending.timeout_event = self.scheduler.schedule(
                timeout_ms, self._on_request_timeout, req_id)

    def _on_request_timeout(self, req_id: int) -> None:
        pending = self._pending.get(req_id)
        if pending is None:
            return
        pending.timeout_event = None
        policy = self._retry_policy()
        if policy.should_retry(pending.attempts):
            pending.attempts += 1
            pending.rotation_index += 1
            self.retries += 1
            self._retry_after_backoff(pending, policy)
            return
        self.failed_requests += 1
        del self._pending[req_id]
        if pending.on_final is not None:
            pending.on_final(self._timeout_failure_response(pending))

    def _retry_after_backoff(self, pending: Any, policy: RetryPolicy) -> None:
        """Re-send now (zero backoff) or after the policy's delay.

        The zero-delay path calls :meth:`_redispatch` synchronously rather
        than scheduling a 0 ms event — scheduling would reorder the event
        trace relative to the pre-policy implementation.
        """
        delay_ms = policy.backoff_ms(pending.attempts)
        if delay_ms <= 0:
            self._redispatch(pending)
            return
        self.scheduler.schedule(delay_ms, self._redispatch, pending)

    @staticmethod
    def _settle(pending: Any) -> None:
        """Cancel the pending timeout once a final response arrived."""
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
            pending.timeout_event = None

    # -- host hooks ---------------------------------------------------------
    def _redispatch(self, pending: Any) -> None:
        raise NotImplementedError

    def _failover_retries(self) -> int:
        raise NotImplementedError

    def _timeout_failure_response(self, pending: Any) -> Dict[str, Any]:
        raise NotImplementedError
