"""Message-passing network with latency and byte accounting.

Nodes register under a unique name; :meth:`Network.send` delivers a
:class:`Message` to the destination node's ``handle_message`` after a one-way
delay drawn from the :class:`~repro.sim.topology.Topology`.  Every message's
size is charged to the (source, destination) link, which is what the paper's
bandwidth figures (Figures 8 and 10) measure on the client-replica links.

The send path is written for throughput:

* with no faults installed the partition/degradation checks cost one
  truthiness test each (no ``frozenset`` allocation), per-node byte totals
  are maintained as O(1) counters, and payload sizing is iterative with a
  cache for non-ASCII strings;
* per-(src, dst) *routes* — endpoint nodes, link stats and the jitter-free
  base delay — are cached and invalidated by topology edits (a version
  counter), membership changes and ``reset_stats``; jitter is applied
  inline with the exact arithmetic of ``Topology.one_way``;
* delivered :class:`Message` objects are recycled through a free-list pool
  guarded by a refcount check, so steady-state traffic allocates no message
  objects at all (see :meth:`Network.pool_stats`);
* :meth:`Network.send_many` fans a burst out of one node and coalesces
  same-instant deliveries into one batched heap entry
  (:meth:`~repro.sim.scheduler.Scheduler.schedule_batch_at`).

The *fused* protocol fast path (:attr:`Network.fast_path`, default on) goes
one step further: protocol layers that carry their own per-operation state
skip :class:`Message` entirely and schedule a pre-bound continuation at the
delivery instant via :meth:`Network.fused_send` /
:meth:`Network.fused_account`.  Accounting, drop rules, and the jitter draw
are bit-identical to :meth:`send` — same ``messages_sent`` /
``messages_dropped`` counters, same :class:`LinkStats` and per-node byte
cells, same RNG consumption — so golden event traces are unchanged; only
the per-send object churn (message shell, payload dict, handler dispatch)
disappears.  Delivery-side accounting (``messages_delivered`` and the
dead-destination drop) is the receiving continuation's responsibility.
"""

from __future__ import annotations

import heapq
import itertools
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.sim.scheduler import Scheduler
from repro.sim.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.node import Node

#: Fixed per-message framing overhead (TCP/IP + RPC headers), in bytes.
MESSAGE_HEADER_BYTES = 50

_message_ids = itertools.count(1)

#: Upper bound on the per-network message free list; bounds pool memory at
#: the peak number of simultaneously in-flight messages worth keeping.
_MESSAGE_POOL_MAX = 4096

#: UTF-8 sizes of non-ASCII strings seen by :func:`estimate_payload_size`
#: (ASCII strings — the common case — are sized with ``len`` directly).
_STR_SIZE_CACHE: Dict[str, int] = {}
_STR_SIZE_CACHE_LIMIT = 4096


def _utf8_size(text: str) -> int:
    if text.isascii():
        return len(text)
    size = _STR_SIZE_CACHE.get(text)
    if size is None:
        if len(_STR_SIZE_CACHE) >= _STR_SIZE_CACHE_LIMIT:
            _STR_SIZE_CACHE.clear()
        size = len(text.encode("utf-8"))
        _STR_SIZE_CACHE[text] = size
    return size


def estimate_payload_size(payload: Any) -> int:
    """Rough byte size of a message payload.

    The simulator does not serialize payloads; this helper estimates sizes so
    bandwidth figures have realistic proportions.  Callers that know the true
    wire size (e.g. a 100 B YCSB value) should pass ``size_bytes`` explicitly
    to :meth:`Network.send` instead.  Traversal is iterative (no recursion
    limit on deeply nested payloads) and sums are order-independent, so the
    result matches the original recursive definition exactly.
    """
    total = 0
    stack = [payload]
    pop = stack.pop
    while stack:
        item = pop()
        if item is None:
            continue
        tp = type(item)
        if tp is str:
            total += _utf8_size(item)
        elif tp is bool:
            total += 1
        elif tp is int or tp is float:
            total += 8
        elif tp is bytes:
            total += len(item)
        elif tp is dict:
            for key, value in item.items():
                stack.append(key)
                stack.append(value)
        elif tp is list or tp is tuple or tp is set or tp is frozenset:
            stack.extend(item)
        # Subclasses of the above (rare) and unknown types:
        elif isinstance(item, bool):
            total += 1
        elif isinstance(item, (int, float)):
            total += 8
        elif isinstance(item, bytes):
            total += len(item)
        elif isinstance(item, str):
            total += _utf8_size(item)
        elif isinstance(item, dict):
            for key, value in item.items():
                stack.append(key)
                stack.append(value)
        elif isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)
        else:
            total += 32
    return total


class Message:
    """A network message between two named nodes."""

    __slots__ = ("src", "dst", "kind", "payload", "size_bytes", "msg_id",
                 "send_time")

    def __init__(self, src: str, dst: str, kind: str,
                 payload: Optional[Dict[str, Any]] = None,
                 size_bytes: Optional[int] = 0, msg_id: int = 0,
                 send_time: float = 0.0) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = {} if payload is None else payload
        self.msg_id = msg_id if msg_id else next(_message_ids)
        self.send_time = send_time
        if size_bytes is None or size_bytes <= 0:
            size_bytes = MESSAGE_HEADER_BYTES + estimate_payload_size(
                self.payload)
        self.size_bytes = size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message(src={self.src!r}, dst={self.dst!r}, "
                f"kind={self.kind!r}, size_bytes={self.size_bytes}, "
                f"msg_id={self.msg_id})")


@dataclass
class LinkStats:
    """Accumulated traffic statistics for one directed link."""

    messages: int = 0
    bytes: int = 0

    def record(self, size_bytes: int) -> None:
        self.messages += 1
        self.bytes += size_bytes


class _FrozenLinkStats(LinkStats):
    """The shared all-zero stats returned for links that never carried
    traffic.  Immutable, so callers cannot corrupt one another's view by
    mutating what used to be a per-call throwaway instance."""

    def __init__(self) -> None:
        object.__setattr__(self, "messages", 0)
        object.__setattr__(self, "bytes", 0)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            "this LinkStats is the shared zero for unused links; "
            "it cannot be mutated")

    def record(self, size_bytes: int) -> None:
        raise AttributeError(
            "this LinkStats is the shared zero for unused links; "
            "record traffic through Network.send instead")


#: Returned by :meth:`Network.link_stats` for links with no recorded traffic.
EMPTY_LINK_STATS = _FrozenLinkStats()


class Network:
    """Delivers messages between registered nodes with WAN latencies."""

    __slots__ = ("scheduler", "topology", "_clock", "_rand",
                 "_jitter_fraction", "_nodes", "_links", "_node_cells",
                 "_partitioned", "_partitioned_regions", "_link_extra_ms",
                 "_routes", "_route_epoch", "_topo_version", "_msg_pool",
                 "messages_sent", "messages_delivered", "messages_dropped",
                 "pool_created", "pool_reused", "pool_recycled", "pool_debug",
                 "fast_path", "lean_ops")

    def __init__(self, scheduler: Scheduler, topology: Topology) -> None:
        self.scheduler = scheduler
        self._clock = scheduler.clock
        self.topology = topology
        self._nodes: Dict[str, "Node"] = {}
        self._links: Dict[Tuple[str, str], LinkStats] = {}
        #: O(1) per-node byte totals (every link where the node is an
        #: endpoint), kept as single-element list cells so cached routes can
        #: charge them without a dict lookup per send.
        self._node_cells: Dict[str, list] = {}
        self._partitioned: set = set()
        self._partitioned_regions: set = set()
        #: Extra one-way latency (ms) per node pair or region pair; region
        #: keys use the ``"region:<name>"`` form so the two namespaces never
        #: collide with node names.
        self._link_extra_ms: Dict[frozenset, float] = {}
        #: (src, dst) -> [src_node, dst_node, LinkStats | None, base_delay,
        #: src_byte_cell, dst_byte_cell | None].  Stats are filled in on
        #: first charge so dead-sender traffic never materializes a link
        #: entry (matching the uncached behaviour).
        self._routes: Dict[Tuple[str, str], list] = {}
        #: Free list of delivered messages awaiting reuse, plus counters for
        #: the pool tests; ``pool_debug`` adds aliasing assertions.
        self._msg_pool: List[Message] = []
        self.pool_created = 0
        self.pool_reused = 0
        self.pool_recycled = 0
        self.pool_debug = False
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Kill-switch for the fused protocol fast path (mirrors
        #: ``Scheduler.wheel`` / ``batch_dispatch``).  Protocol layers check
        #: it when an operation is *issued*; in-flight fused operations
        #: complete fused after a flip.
        self.fast_path = True
        #: Kill-switch for the lean op pipeline (``protocol.lean_ops``): the
        #: allocation-free completion path where pooled sinks replace the
        #: per-op response/info dicts and callback closures.  Requires the
        #: fused path; checked when an operation is *issued* (so a mid-run
        #: flip only affects subsequent operations) and falls back to the
        #: classic dict pipeline whenever the fused gate fails.
        self.lean_ops = True
        #: Bumped whenever :attr:`_routes` is invalidated; protocol-level
        #: fused-route caches revalidate against it instead of probing the
        #: route dict per send.
        self._route_epoch = 0
        self._sync_topology()

    def _sync_topology(self) -> None:
        """Refresh everything cached off the topology (see ``_version``)."""
        topology = self.topology
        self._routes.clear()
        self._route_epoch += 1
        self._jitter_fraction = topology.jitter_fraction
        self._rand = topology._rng.random
        self._topo_version = topology._version

    # -- membership ------------------------------------------------------
    def register(self, node: "Node") -> None:
        """Register a node; its name must be unique within the network."""
        if node.name in self._nodes:
            raise ValueError(f"node name already registered: {node.name}")
        self._nodes[node.name] = node
        self._routes.clear()
        self._route_epoch += 1

    def unregister(self, name: str) -> None:
        self._nodes.pop(name, None)
        self._routes.clear()
        self._route_epoch += 1

    def node(self, name: str) -> "Node":
        return self._nodes[name]

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    # -- fault injection ---------------------------------------------------
    def partition(self, name_a: str, name_b: str) -> None:
        """Drop all future messages between two nodes (both directions)."""
        self._partitioned.add(frozenset({name_a, name_b}))

    def heal(self, name_a: str, name_b: str) -> None:
        """Remove a partition previously installed by :meth:`partition`."""
        self._partitioned.discard(frozenset({name_a, name_b}))

    def partition_regions(self, region_a: str, region_b: str) -> None:
        """Drop all future messages between two regions (both directions).

        A WAN partition: every node in ``region_a`` loses connectivity to
        every node in ``region_b``, regardless of when nodes join.
        """
        self._partitioned_regions.add(frozenset({region_a, region_b}))

    def heal_regions(self, region_a: str, region_b: str) -> None:
        """Remove a region partition installed by :meth:`partition_regions`."""
        self._partitioned_regions.discard(frozenset({region_a, region_b}))

    def is_partitioned(self, name_a: str, name_b: str) -> bool:
        if self._partitioned \
                and frozenset({name_a, name_b}) in self._partitioned:
            return True
        if self._partitioned_regions:
            node_a = self._nodes.get(name_a)
            node_b = self._nodes.get(name_b)
            if node_a is not None and node_b is not None:
                key = frozenset({node_a.region, node_b.region})
                if key in self._partitioned_regions:
                    return True
        return False

    def degrade_link(self, endpoint_a: str, endpoint_b: str,
                     extra_ms: float) -> None:
        """Add one-way latency between two nodes (or two ``region:<r>`` keys)."""
        if extra_ms < 0:
            raise ValueError("extra latency must be non-negative")
        self._link_extra_ms[frozenset({endpoint_a, endpoint_b})] = extra_ms

    def restore_link(self, endpoint_a: str, endpoint_b: str) -> None:
        """Remove a degradation installed by :meth:`degrade_link`."""
        self._link_extra_ms.pop(frozenset({endpoint_a, endpoint_b}), None)

    def link_extra_ms(self, src: str, dst: str) -> float:
        """Total injected one-way latency currently applied to src→dst."""
        if not self._link_extra_ms:
            return 0.0
        extra = self._link_extra_ms.get(frozenset({src, dst}), 0.0)
        src_node = self._nodes.get(src)
        dst_node = self._nodes.get(dst)
        if src_node is not None and dst_node is not None:
            extra += self._link_extra_ms.get(
                frozenset({f"region:{src_node.region}",
                           f"region:{dst_node.region}"}), 0.0)
        return extra

    # -- traffic -----------------------------------------------------------
    def _route(self, src: str, dst: str) -> list:
        """Build and cache the route entry for one (src, dst) pair.

        The jitter-free base delay is precomputed with exactly the
        arithmetic of :meth:`Topology.one_way` (loopback or RTT halved);
        stats start as ``None`` and are created on first charge; the byte
        cells alias :attr:`_node_cells` (``None`` dst cell for self-sends,
        which charge the endpoint once).
        """
        nodes = self._nodes
        src_node = nodes.get(src)
        if src_node is None:
            raise KeyError(f"unknown source node: {src}")
        dst_node = nodes.get(dst)
        if dst_node is None:
            raise KeyError(f"unknown destination node: {dst}")
        topology = self.topology
        src_host = src_node.host
        same_host = (src_host is not None
                     and src_host == dst_node.host) or src == dst
        if same_host:
            base = topology.loopback_rtt_ms / 2.0
        else:
            base = topology.rtt(src_node.region, dst_node.region) / 2.0
        cells = self._node_cells
        src_cell = cells.get(src)
        if src_cell is None:
            src_cell = cells[src] = [0]
        if dst == src:
            dst_cell = None
        else:
            dst_cell = cells.get(dst)
            if dst_cell is None:
                dst_cell = cells[dst] = [0]
        route = [src_node, dst_node, self._links.get((src, dst)), base,
                 src_cell, dst_cell]
        self._routes[(src, dst)] = route
        return route

    def _prepare(self, src: str, dst: str, kind: str,
                 payload: Optional[Dict[str, Any]],
                 size_bytes: Optional[int]
                 ) -> Tuple[Optional[float], Message, "Node"]:
        """Account one send; returns ``(delay_ms | None, message, dst_node)``.

        A ``None`` delay means the message was dropped (dead endpoint or
        partition) and must not be scheduled for delivery.  This is the
        hottest function in the simulator; everything it touches per call is
        either a local, a cached route field, or a plain counter.
        """
        if self.topology._version != self._topo_version:
            self._sync_topology()
        route = self._routes.get((src, dst))
        if route is None:
            route = self._route(src, dst)
        src_node, dst_node, stats, base, src_cell, dst_cell = route
        # Inline message acquire: reuse a recycled shell when one is free.
        pool = self._msg_pool
        if pool:
            message = pool.pop()
            if self.pool_debug:
                # 2 = this local + getrefcount's argument: a pooled message
                # referenced by anything else would alias live state.
                assert sys.getrefcount(message) == 2, \
                    "message pool recycled an object that is still referenced"
            self.pool_reused += 1
            message.src = src
            message.dst = dst
            message.kind = kind
            message.payload = payload if payload is not None else {}
            message.msg_id = next(_message_ids)
            message.send_time = self._clock._now
            if size_bytes is None or size_bytes <= 0:
                size_bytes = MESSAGE_HEADER_BYTES + estimate_payload_size(
                    message.payload)
            message.size_bytes = size_bytes
        else:
            self.pool_created += 1
            message = Message(src, dst, kind, payload, size_bytes,
                              send_time=self._clock._now)
            size_bytes = message.size_bytes
        if not src_node.alive:
            self.messages_dropped += 1
            return None, message, dst_node
        self.messages_sent += 1
        if stats is None:
            stats = self._links.get((src, dst))
            if stats is None:
                stats = self._links[(src, dst)] = LinkStats()
            route[2] = stats
        stats.messages += 1
        stats.bytes += size_bytes
        src_cell[0] += size_bytes
        if dst_cell is not None:
            dst_cell[0] += size_bytes

        # Zero-fault fast path: with no partitions installed the check is
        # two falsy tests, no frozenset allocation.
        if self._partitioned or self._partitioned_regions:
            if self.is_partitioned(src, dst):
                self.messages_dropped += 1
                return None, message, dst_node
        if not dst_node.alive:
            self.messages_dropped += 1
            return None, message, dst_node

        # Inline Topology.one_way over the cached base: uniform(0, jf) is
        # exactly jf * random(), so the delay sample is bit-identical.
        jitter_fraction = self._jitter_fraction
        if jitter_fraction > 0:
            delay = base + jitter_fraction * self._rand() * base
        else:
            delay = base
        if self._link_extra_ms:
            delay += self.link_extra_ms(src, dst)
        return delay, message, dst_node

    def send(self, src: str, dst: str, kind: str,
             payload: Optional[Dict[str, Any]] = None,
             size_bytes: Optional[int] = None,
             extra_delay_ms: float = 0.0) -> Message:
        """Send a message; returns the :class:`Message` (already accounted).

        The message is charged to the link even if the destination is down or
        partitioned away — bytes leave the sender's NIC regardless.  A *dead
        sender*, however, sends nothing at all: work still queued on a
        crashed node must not leak protocol messages (or bytes) out of it.
        """
        delay, message, dst_node = self._prepare(src, dst, kind, payload,
                                                 size_bytes)
        if delay is not None:
            self.scheduler.schedule_call(delay + extra_delay_ms,
                                         self._deliver, (message, dst_node))
        return message

    def send_many(self, src: str,
                  sends: Sequence[Tuple[str, str,
                                        Optional[Dict[str, Any]],
                                        Optional[int]]]) -> List[Message]:
        """Fan a burst of ``(dst, kind, payload, size_bytes)`` out of ``src``.

        Equivalent to calling :meth:`send` once per tuple in order — same
        jitter draws, message ids and accounting — but consecutive
        deliveries landing at the same instant go to the scheduler as one
        batched heap entry.  The multi-replica fan-outs (quorum reads, write
        replication) send through this.
        """
        scheduler = self.scheduler
        now = self._clock._now
        deliver = self._deliver
        messages: List[Message] = []
        batch: list = []
        batch_time = 0.0
        for dst, kind, payload, size_bytes in sends:
            delay, message, dst_node = self._prepare(src, dst, kind, payload,
                                                     size_bytes)
            messages.append(message)
            if delay is None:
                continue
            at = now + delay
            if batch and at != batch_time:
                scheduler.schedule_batch_at(batch_time, batch)
                batch = []
            batch_time = at
            batch.append((deliver, (message, dst_node)))
        if batch:
            scheduler.schedule_batch_at(batch_time, batch)
        return messages

    def _deliver(self, message: Message, node: "Node") -> None:
        # The destination node object is captured at send time (nodes are
        # never unregistered mid-run — they crash, which flips ``alive``).
        if node.alive:
            self.messages_delivered += 1
            # Dispatch through the node's handler cache directly;
            # handle_message fills the cache on the first message of a kind
            # (and raises for unknown kinds).
            handler = node._handler_cache.get(message.kind)
            if handler is not None:
                handler(message)
            else:
                node.handle_message(message)
        else:
            self.messages_dropped += 1
        # Recycle if nothing kept a reference: 3 = the scheduler entry's args
        # tuple + this local + getrefcount's argument.  Tests (or sessions)
        # that hold the message raise the count and opt out automatically.
        pool = self._msg_pool
        if len(pool) < _MESSAGE_POOL_MAX and sys.getrefcount(message) == 3:
            if self.pool_debug:
                assert all(pooled is not message for pooled in pool), \
                    "message recycled twice"
            self.pool_recycled += 1
            message.payload = None
            pool.append(message)

    def pool_stats(self) -> Dict[str, int]:
        """Message-pool counters (created / reused / recycled / free)."""
        return {"created": self.pool_created,
                "reused": self.pool_reused,
                "recycled": self.pool_recycled,
                "free": len(self._msg_pool)}

    # -- fused fast path ---------------------------------------------------
    def fused_epoch(self) -> int:
        """Current route epoch, syncing pending topology edits first.

        Protocol-level route/plan caches validate against this (not the raw
        :attr:`_route_epoch`): an RTT edit bumps only the topology version
        until the next send, and a stale cached base delay must not survive
        into a fused fan-out loop after the first send re-syncs.
        """
        if self.topology._version != self._topo_version:
            self._sync_topology()
        return self._route_epoch

    def fused_route(self, src: str, dst: str) -> list:
        """The cached route entry for src→dst, for fused protocol senders.

        Callers hold the returned list and revalidate their hold against
        :attr:`_route_epoch` (the list is shared with :meth:`_prepare`, so
        fused and message sends charge the very same stats and byte cells).
        """
        if self.topology._version != self._topo_version:
            self._sync_topology()
        route = self._routes.get((src, dst))
        if route is None:
            route = self._route(src, dst)
        return route

    def fused_account(self, route: list, size_bytes: int) -> Optional[float]:
        """Account one fused send; returns the delivery delay or ``None``.

        Bit-for-bit the accounting of :meth:`_prepare` without the message
        shell: sender-side drop rules, link/byte charging, and the jitter
        draw happen in the same order with the same arithmetic, so a fused
        run consumes the topology RNG exactly like a message run.  ``None``
        means the send was dropped and nothing must be scheduled.
        """
        if self.topology._version != self._topo_version:
            self._sync_topology()
            route = self._route(route[0].name, route[1].name)
        src_node, dst_node, stats, base, src_cell, dst_cell = route
        if not src_node.alive:
            self.messages_dropped += 1
            return None
        self.messages_sent += 1
        if stats is None:
            key = (src_node.name, dst_node.name)
            stats = self._links.get(key)
            if stats is None:
                stats = self._links[key] = LinkStats()
            route[2] = stats
        stats.messages += 1
        stats.bytes += size_bytes
        src_cell[0] += size_bytes
        if dst_cell is not None:
            dst_cell[0] += size_bytes
        if self._partitioned or self._partitioned_regions:
            if self.is_partitioned(src_node.name, dst_node.name):
                self.messages_dropped += 1
                return None
        if not dst_node.alive:
            self.messages_dropped += 1
            return None
        jitter_fraction = self._jitter_fraction
        if jitter_fraction > 0:
            delay = base + jitter_fraction * self._rand() * base
        else:
            delay = base
        if self._link_extra_ms:
            delay += self.link_extra_ms(src_node.name, dst_node.name)
        return delay

    def fused_send(self, route: list, size_bytes: int,
                   fn: Any, args: tuple) -> bool:
        """Account one fused send and schedule ``fn(*args)`` at delivery.

        The continuation owns the delivery-side bookkeeping that
        :meth:`_deliver` does for messages: bump ``messages_delivered`` when
        the destination is alive, ``messages_dropped`` when it is not.
        Returns ``False`` when the send was dropped (nothing scheduled).

        :meth:`fused_account` and the scheduler insert are inlined — this
        runs once per protocol hop, and the two extra call frames are
        measurable at full fig06 scale.  Keep the accounting sequence
        bit-identical to :meth:`_prepare` / :meth:`fused_account`.
        """
        if self.topology._version != self._topo_version:
            self._sync_topology()
            route = self._route(route[0].name, route[1].name)
        src_node, dst_node, stats, base, src_cell, dst_cell = route
        if not src_node.alive:
            self.messages_dropped += 1
            return False
        self.messages_sent += 1
        if stats is None:
            key = (src_node.name, dst_node.name)
            stats = self._links.get(key)
            if stats is None:
                stats = self._links[key] = LinkStats()
            route[2] = stats
        stats.messages += 1
        stats.bytes += size_bytes
        src_cell[0] += size_bytes
        if dst_cell is not None:
            dst_cell[0] += size_bytes
        if self._partitioned or self._partitioned_regions:
            if self.is_partitioned(src_node.name, dst_node.name):
                self.messages_dropped += 1
                return False
        if not dst_node.alive:
            self.messages_dropped += 1
            return False
        jitter_fraction = self._jitter_fraction
        if jitter_fraction > 0:
            delay = base + jitter_fraction * self._rand() * base
        else:
            delay = base
        if self._link_extra_ms:
            delay += self.link_extra_ms(src_node.name, dst_node.name)
        # Scheduler.schedule_call, inlined (delay is >= 0 by construction).
        scheduler = self.scheduler
        seq = scheduler._seq
        scheduler._seq = seq + 1
        scheduler._live += 1
        timestamp = scheduler.clock._now + delay
        if timestamp < scheduler._horizon:
            tick = int(timestamp * scheduler._wheel_inv)
            if tick == scheduler._cursor:
                heapq.heappush(
                    scheduler._slots[tick & scheduler._wheel_mask],
                    (timestamp, seq, fn, args, None, None))
            else:
                scheduler._slots[tick & scheduler._wheel_mask].append(
                    (timestamp, seq, fn, args, None, None))
                scheduler._wheel_count += 1
        else:
            heapq.heappush(scheduler._heap,
                           (timestamp, seq, fn, args, None, None))
        return True

    def fused_send_to(self, src: Any, dst: str, size_bytes: int,
                      fn: Any, args: tuple) -> bool:
        """:meth:`fused_send` with the sender's route-cache probe fused in.

        ``src`` is the sending *node* object, ``dst`` the destination name.
        One call frame and one topology check replace the
        ``Node._fused_route_to`` + :meth:`fused_send` pair; reply hops
        (final/preliminary responses, write acks) are the hottest send
        sites in a full fig06 run.  Accounting and scheduling are copied
        verbatim from :meth:`fused_send` — keep the two in lockstep.
        """
        if self.topology._version != self._topo_version:
            self._sync_topology()
        epoch = self._route_epoch
        if src._fused_epoch != epoch:
            src._fused_routes.clear()
            src._fused_epoch = epoch
        route = src._fused_routes.get(dst)
        if route is None:
            route = self._routes.get((src.name, dst))
            if route is None:
                route = self._route(src.name, dst)
            src._fused_routes[dst] = route
        src_node, dst_node, stats, base, src_cell, dst_cell = route
        if not src_node.alive:
            self.messages_dropped += 1
            return False
        self.messages_sent += 1
        if stats is None:
            key = (src_node.name, dst_node.name)
            stats = self._links.get(key)
            if stats is None:
                stats = self._links[key] = LinkStats()
            route[2] = stats
        stats.messages += 1
        stats.bytes += size_bytes
        src_cell[0] += size_bytes
        if dst_cell is not None:
            dst_cell[0] += size_bytes
        if self._partitioned or self._partitioned_regions:
            if self.is_partitioned(src_node.name, dst_node.name):
                self.messages_dropped += 1
                return False
        if not dst_node.alive:
            self.messages_dropped += 1
            return False
        jitter_fraction = self._jitter_fraction
        if jitter_fraction > 0:
            delay = base + jitter_fraction * self._rand() * base
        else:
            delay = base
        if self._link_extra_ms:
            delay += self.link_extra_ms(src_node.name, dst_node.name)
        # Scheduler.schedule_call, inlined (delay is >= 0 by construction).
        scheduler = self.scheduler
        seq = scheduler._seq
        scheduler._seq = seq + 1
        scheduler._live += 1
        timestamp = scheduler.clock._now + delay
        if timestamp < scheduler._horizon:
            tick = int(timestamp * scheduler._wheel_inv)
            if tick == scheduler._cursor:
                heapq.heappush(
                    scheduler._slots[tick & scheduler._wheel_mask],
                    (timestamp, seq, fn, args, None, None))
            else:
                scheduler._slots[tick & scheduler._wheel_mask].append(
                    (timestamp, seq, fn, args, None, None))
                scheduler._wheel_count += 1
        else:
            heapq.heappush(scheduler._heap,
                           (timestamp, seq, fn, args, None, None))
        return True

    # -- accounting --------------------------------------------------------
    def _link(self, src: str, dst: str) -> LinkStats:
        key = (src, dst)
        stats = self._links.get(key)
        if stats is None:
            stats = self._links[key] = LinkStats()
        return stats

    def link_stats(self, src: str, dst: str) -> LinkStats:
        """Traffic on the directed link src→dst.

        Links that never carried traffic share one immutable zero instance
        (:data:`EMPTY_LINK_STATS`); callers must treat the result as
        read-only.
        """
        return self._links.get((src, dst), EMPTY_LINK_STATS)

    def bytes_between(self, name_a: str, name_b: str) -> int:
        """Total bytes exchanged between two nodes, both directions."""
        return (self.link_stats(name_a, name_b).bytes
                + self.link_stats(name_b, name_a).bytes)

    def bytes_touching(self, name: str) -> int:
        """Total bytes on every link where ``name`` is an endpoint."""
        cell = self._node_cells.get(name)
        return cell[0] if cell is not None else 0

    def total_bytes(self) -> int:
        return sum(stats.bytes for stats in self._links.values())

    def reset_stats(self) -> None:
        """Clear byte counters (used to scope measurement windows)."""
        self._links.clear()
        # Cached routes hold LinkStats references and byte cells; drop them
        # so post-reset traffic charges fresh counters.
        self._routes.clear()
        self._route_epoch += 1
        self._node_cells.clear()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
