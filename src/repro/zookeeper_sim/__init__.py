"""A Zab-replicated coordination service modelled after ZooKeeper.

Substitute for the Apache ZooKeeper v3.4.8 deployment of the paper.  It
implements the pieces the evaluation exercises:

* a znode data tree with sequential nodes (:mod:`datatree`);
* a leader/follower ensemble running a Zab-style atomic broadcast for write
  transactions, with local reads (:mod:`server`, :mod:`zab`);
* the distributed-queue recipe, in both the standard client-side form
  (``getChildren`` + ``delete``, whose messages grow with queue length) and
  the constant-size server-side dequeue used by Correctable ZooKeeper
  (:mod:`queue_recipe`);
* the CZK fast path: the contacted replica simulates an operation on its
  local state and returns a preliminary result before Zab coordination
  (:mod:`server`).
"""

from repro.zookeeper_sim.config import ZooKeeperConfig
from repro.zookeeper_sim.datatree import DataTree, Znode, NoNodeError, NodeExistsError
from repro.zookeeper_sim.zab import Transaction, ProposalTracker
from repro.zookeeper_sim.server import ZKServer
from repro.zookeeper_sim.client import ZKClient
from repro.zookeeper_sim.cluster import ZooKeeperCluster
from repro.zookeeper_sim.queue_recipe import DistributedQueue

__all__ = [
    "ZooKeeperConfig",
    "DataTree",
    "Znode",
    "NoNodeError",
    "NodeExistsError",
    "Transaction",
    "ProposalTracker",
    "ZKServer",
    "ZKClient",
    "ZooKeeperCluster",
    "DistributedQueue",
]
