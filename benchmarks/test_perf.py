"""Perf harness smoke: the wall-clock scenarios run, count deterministically,
and the BENCH_perf.json trajectory machinery round-trips."""

import json
import os

import pytest

from repro.bench.perf import (
    append_entry,
    baseline_entry,
    check_regression,
    format_perf,
    gate_reference,
    latest_entry,
    load_trajectory,
    run_closed_loop_scenario,
    run_fault_scenario,
    run_perf,
    run_sweep_scenario,
    run_zk_queue_scenario,
    save_trajectory,
    scenario_names,
)

_TINY = dict(threads_per_client=2, duration_ms=2_500.0, warmup_ms=500.0,
             cooldown_ms=250.0, record_count=60)


@pytest.mark.benchmark(group="perf")
def test_perf_scenarios_run_and_count(benchmark):
    counts = benchmark.pedantic(run_closed_loop_scenario, kwargs=_TINY,
                                rounds=1, iterations=1)
    assert counts["events"] > 0 and counts["ops"] > 0


def test_scenarios_are_deterministic():
    first = run_closed_loop_scenario(**_TINY)
    second = run_closed_loop_scenario(**_TINY)
    assert first == second


def test_zk_and_fault_scenarios_count():
    zk = run_zk_queue_scenario(samples=40)
    assert zk["ops"] == 40 and zk["events"] > 0
    faults = run_fault_scenario(threads_per_client=1, duration_ms=3_000.0,
                                warmup_ms=500.0, cooldown_ms=250.0,
                                record_count=60)
    assert faults["ops"] > 0 and faults["events"] > 0


def test_run_perf_unknown_scenario_rejected():
    with pytest.raises(KeyError):
        run_perf(scenarios=["nope"])


def test_run_perf_seed_changes_counts():
    default = run_perf(scenarios=["fig09-zk-queue"], quick=True, repeats=1)
    reseeded = run_perf(scenarios=["fig09-zk-queue"], quick=True, repeats=1,
                        seed=99)
    # Same ops (the workload is fixed-size) but a different event schedule.
    assert reseeded["fig09-zk-queue"]["ops"] == default["fig09-zk-queue"]["ops"]
    assert reseeded["fig09-zk-queue"]["events"] > 0


def test_run_perf_measures_named_scenarios():
    assert "fig06-closed-loop" in scenario_names()
    measured = run_perf(scenarios=["fig09-zk-queue"], quick=True, repeats=1)
    stats = measured["fig09-zk-queue"]
    assert stats["wall_s"] > 0
    assert stats["events_per_s"] > 0
    assert stats["ops_per_s"] * stats["wall_s"] == pytest.approx(
        stats["ops"], rel=0.05)


def test_trajectory_round_trip(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    trajectory = load_trajectory(path)
    assert trajectory["entries"] == []
    measured = {"s": {"wall_s": 1.0, "runs_s": [1.0], "events": 10,
                      "ops": 5, "events_per_s": 10.0, "ops_per_s": 5.0}}
    append_entry(trajectory, "first", quick=True, measured=measured)
    save_trajectory(trajectory, path)
    loaded = load_trajectory(path)
    assert loaded["entries"][0]["label"] == "first"
    assert baseline_entry(loaded, quick=True)["label"] == "first"
    assert baseline_entry(loaded, quick=False) is None
    assert latest_entry(loaded, quick=True)["label"] == "first"
    assert json.loads(path.read_text())["schema"] == 1


def test_format_perf_reports_speedup():
    old = {"label": "old", "scenarios": {
        "s": {"wall_s": 2.0, "events": 1, "events_per_s": 1, "ops": 1,
              "ops_per_s": 1}}}
    new = {"s": {"wall_s": 1.0, "events": 1, "events_per_s": 1, "ops": 1,
                 "ops_per_s": 1}}
    report = format_perf(new, baseline=old)
    assert "2.00x" in report


def test_check_regression_gate():
    committed = {"scenarios": {"s": {"wall_s": 1.0, "events": 10}}}
    ok = {"s": {"wall_s": 1.5, "events": 10}}
    slow = {"s": {"wall_s": 2.5, "events": 10}}
    lines = []
    assert check_regression(ok, committed, echo=lines.append)
    assert not check_regression(slow, committed, echo=lines.append)
    assert any("REGRESSION" in line for line in lines)


def test_check_regression_fails_loudly_on_missing_reference():
    committed = {"scenarios": {"other": {"wall_s": 1.0, "events": 10}}}
    lines = []
    assert not check_regression({"s": {"wall_s": 0.1, "events": 10}},
                                committed, echo=lines.append)
    assert any("no committed reference" in line for line in lines)


def test_check_regression_fails_on_event_count_drift():
    committed = {"scenarios": {"s": {"wall_s": 1.0, "events": 10}}}
    lines = []
    assert not check_regression({"s": {"wall_s": 0.5, "events": 11}},
                                committed, echo=lines.append)
    assert any("event count" in line for line in lines)


_SWEEP_TINY = dict(systems=("C1", "CC2"), workloads=("A",),
                   thread_counts=(2,), duration_ms=2_500.0, warmup_ms=500.0,
                   cooldown_ms=250.0, record_count=60)


def _counts(stats):
    return {key: stats[key] for key in ("events", "ops", "points")}


def test_sweep_scenario_parallel_matches_serial_counts():
    serial = run_sweep_scenario(jobs=1, **_SWEEP_TINY)
    parallel = run_sweep_scenario(jobs=2, **_SWEEP_TINY)
    assert _counts(serial) == _counts(parallel)
    assert serial["points"] == 2
    assert len(parallel["point_walls_s"]) == 2


def test_run_perf_parallel_scenarios_match_serial():
    names = ["fig09-zk-queue", "fig06-sweep-serial"]
    serial = run_perf(scenarios=names, quick=True, repeats=1)
    parallel = run_perf(scenarios=names, quick=True, repeats=1, jobs=2)
    assert list(parallel) == names
    for name in names:
        assert parallel[name]["events"] == serial[name]["events"]
        assert parallel[name]["ops"] == serial[name]["ops"]


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.mark.slow
@pytest.mark.skipif(_available_cores() < 2,
                    reason="multi-core speedup needs >= 2 available cores")
def test_multicore_sweep_speedup():
    """On a multi-core host --jobs 2 must actually overlap point execution.

    Asserts the achieved concurrency (summed per-point wall over elapsed
    sweep wall) rather than the ratio of two separate end-to-end runs: a
    noisy neighbor slows the points and the sweep proportionally, so this
    ratio stays stable where a serial-vs-parallel comparison would flake.
    """
    parallel = run_sweep_scenario(
        jobs=2, systems=("C1", "C2", "CC2"), workloads=("A", "B"),
        thread_counts=(4,), duration_ms=6_000.0, warmup_ms=1_000.0,
        cooldown_ms=500.0, record_count=300)
    concurrency = sum(parallel["point_walls_s"]) / parallel["sweep_wall_s"]
    # 1.3 is deliberately below the ~1.7-2x expected on idle 2-core
    # hardware so CI runner contention does not flake the suite.
    assert concurrency > 1.3


def test_gate_reference_picks_best_entry_per_scenario():
    trajectory = {"entries": []}
    append_entry(trajectory, "fast", quick=True,
                 measured={"s": {"wall_s": 1.0, "events": 10}})
    append_entry(trajectory, "slow ci host", quick=True,
                 measured={"s": {"wall_s": 3.0, "events": 10}})
    ref = gate_reference(trajectory, quick=True,
                         measured={"s": {"wall_s": 0.9, "events": 10}})
    # A slow later entry must not loosen the gate: the best wall wins.
    assert ref["scenarios"]["s"]["wall_s"] == 1.0


def test_gate_reference_skips_stale_scales_and_other_jobs():
    trajectory = {"entries": []}
    append_entry(trajectory, "old scale", quick=True,
                 measured={"s": {"wall_s": 0.1, "events": 99}})
    append_entry(trajectory, "parallel run", quick=True,
                 measured={"s": {"wall_s": 0.2, "events": 10}}, jobs=2)
    append_entry(trajectory, "current", quick=True,
                 measured={"s": {"wall_s": 1.0, "events": 10}})
    ref = gate_reference(trajectory, quick=True,
                         measured={"s": {"wall_s": 0.9, "events": 10}})
    # The 0.1s entry counted 99 events (a different scenario scale) and the
    # 0.2s entry was measured with cross-scenario parallelism: neither is
    # comparable, so the gate reference stays at 1.0s.
    assert ref["scenarios"]["s"]["wall_s"] == 1.0
    assert gate_reference(trajectory, quick=False) is None


def test_gate_reference_survives_subset_and_seed_entries():
    trajectory = {"entries": []}
    append_entry(trajectory, "baseline", quick=True,
                 measured={"a": {"wall_s": 1.0, "events": 10},
                           "b": {"wall_s": 2.0, "events": 20}})
    # A later single-scenario save and a seed-overridden save (different
    # event count) must not poison the gate for the other scenarios.
    append_entry(trajectory, "subset", quick=True,
                 measured={"a": {"wall_s": 1.1, "events": 10}})
    append_entry(trajectory, "seeded", quick=True,
                 measured={"b": {"wall_s": 0.1, "events": 77}})
    measured = {"a": {"wall_s": 1.0, "events": 10},
                "b": {"wall_s": 2.0, "events": 20}}
    ref = gate_reference(trajectory, quick=True, measured=measured)
    assert ref["scenarios"]["a"]["wall_s"] == 1.0
    assert ref["scenarios"]["b"]["wall_s"] == 2.0
    lines = []
    assert check_regression(measured, ref, echo=lines.append)


def test_gate_reference_falls_back_to_newest_on_event_drift():
    trajectory = {"entries": []}
    append_entry(trajectory, "baseline", quick=True,
                 measured={"s": {"wall_s": 1.0, "events": 10}})
    measured = {"s": {"wall_s": 0.5, "events": 11}}
    ref = gate_reference(trajectory, quick=True, measured=measured)
    # No committed entry matches the measured event count: the newest stats
    # stand in so check_regression fails loudly on the drift rather than
    # reporting a missing reference.
    assert ref["scenarios"]["s"]["events"] == 10
    lines = []
    assert not check_regression(measured, ref, echo=lines.append)
    assert any("event count" in line for line in lines)


def test_append_entry_records_jobs():
    trajectory = {"entries": []}
    entry = append_entry(trajectory, "x", quick=True, measured={}, jobs=2)
    assert entry["jobs"] == 2
    assert append_entry(trajectory, "y", quick=True, measured={})["jobs"] == 1
