"""Tests for the primary-backup binding and the cache-fronted binding."""

import pytest

from repro.bindings.cached_store import CachedStoreBinding
from repro.bindings.local import LocalBinding
from repro.bindings.primary_backup import PrimaryBackupBinding, PrimaryBackupStore
from repro.cache.client_cache import ClientCache
from repro.core.client import CorrectableClient
from repro.core.consistency import CACHED, STRONG, WEAK
from repro.core.operations import read, write
from repro.sim.scheduler import Scheduler


class TestPrimaryBackupStore:
    def test_write_reaches_backup_after_lag(self):
        scheduler = Scheduler()
        store = PrimaryBackupStore(scheduler=scheduler, replication_lag_ms=30)
        store.write("k", "v1")
        assert store.read_primary("k") == "v1"
        assert store.backup_is_stale("k")
        scheduler.run_until_idle()
        assert store.read_backup("k") == "v1"
        assert not store.backup_is_stale("k")

    def test_without_scheduler_replication_is_immediate(self):
        store = PrimaryBackupStore()
        store.write("k", "v")
        assert store.read_backup("k") == "v"

    def test_missing_key_raises(self):
        from repro.core.errors import OperationError
        store = PrimaryBackupStore()
        with pytest.raises(OperationError):
            store.read_primary("x")
        with pytest.raises(OperationError):
            store.read_backup("x")


class TestPrimaryBackupBinding:
    def test_weak_reads_backup_strong_reads_primary(self):
        scheduler = Scheduler()
        store = PrimaryBackupStore(scheduler=scheduler, replication_lag_ms=1000)
        binding = PrimaryBackupBinding(store, scheduler=scheduler,
                                       backup_rtt_ms=5, primary_rtt_ms=50)
        store.write("k", "v1")
        scheduler.run_until_idle()
        store.write("k", "v2")          # backup still has v1 for 1000 ms
        client = CorrectableClient(binding)
        c = client.invoke(read("k"))
        scheduler.run(until=scheduler.now() + 200)
        assert c.views()[0].value == "v1"
        assert c.value() == "v2"

    def test_latency_ordering(self):
        scheduler = Scheduler()
        binding = PrimaryBackupBinding(scheduler=scheduler,
                                       backup_rtt_ms=4, primary_rtt_ms=80)
        binding.store.write("k", "v")
        scheduler.run_until_idle()
        start = scheduler.now()
        c = CorrectableClient(binding).invoke(read("k"))
        scheduler.run_until_idle()
        views = c.views()
        assert views[0].timestamp - start == pytest.approx(4.0)
        assert views[1].timestamp - start == pytest.approx(80.0)

    def test_write_goes_to_primary(self):
        binding = PrimaryBackupBinding()
        CorrectableClient(binding).invoke_strong(write("k", 9))
        assert binding.store.read_primary("k") == 9

    def test_unsupported_operation(self):
        from repro.core.operations import dequeue
        binding = PrimaryBackupBinding()
        c = CorrectableClient(binding).invoke_strong(dequeue("q"))
        assert c.is_error()


class TestCachedStoreBinding:
    def _binding(self, scheduler=None):
        inner = LocalBinding(scheduler=scheduler, weak_delay_ms=10,
                             strong_delay_ms=60)
        return CachedStoreBinding(inner, cache=ClientCache(capacity=8),
                                  scheduler=scheduler, cache_latency_ms=0.5)

    def test_advertises_three_levels(self):
        binding = self._binding()
        assert CorrectableClient(binding).available_levels() == \
            [CACHED, WEAK, STRONG]

    def test_cache_miss_then_hit(self):
        binding = self._binding()
        binding.inner.store.put("k", "v")
        client = CorrectableClient(binding)
        first = client.invoke(read("k"))
        # Miss: only weak + strong views.
        assert [v.consistency for v in first.views()] == [WEAK, STRONG]
        second = client.invoke(read("k"))
        # Hit: the cached view arrives first.
        assert [v.consistency for v in second.views()] == [CACHED, WEAK, STRONG]
        assert second.views()[0].value == "v"

    def test_write_through_updates_cache(self):
        binding = self._binding()
        client = CorrectableClient(binding)
        client.invoke_strong(write("k", "fresh"))
        assert binding.cache.get("k") == "fresh"
        assert binding.inner.store.get("k") == "fresh"

    def test_invoke_weak_served_from_cache_only(self):
        binding = self._binding()
        binding.cache.put("k", "cached-value")
        client = CorrectableClient(binding)
        c = client.invoke_weak(read("k"))
        assert c.is_final()
        assert c.value() == "cached-value"
        assert c.final_view().consistency == CACHED

    def test_invoke_strong_bypasses_cache(self):
        binding = self._binding()
        binding.cache.put("k", "stale-cached")
        binding.inner.store.put("k", "authoritative")
        client = CorrectableClient(binding)
        c = client.invoke_strong(read("k"))
        assert c.value() == "authoritative"

    def test_strong_read_refreshes_cache(self):
        binding = self._binding()
        binding.inner.store.put("k", "v1")
        client = CorrectableClient(binding)
        client.invoke_strong(read("k"))
        assert binding.cache.get("k") == "v1"

    def test_three_views_with_scheduler_ordering(self):
        scheduler = Scheduler()
        binding = self._binding(scheduler=scheduler)
        binding.inner.store.put("k", "v")
        binding.cache.put("k", "v-cached")
        client = CorrectableClient(binding)
        order = []
        c = client.invoke(read("k"))
        c.set_callbacks(on_update=lambda v: order.append(v.consistency.name),
                        on_final=lambda v: order.append(v.consistency.name))
        scheduler.run_until_idle()
        assert order == ["cached", "weak", "strong"]
