"""Tests for the network-level fault primitives: region partitions,
link degradation, and node slowdown."""

import pytest

from repro.sim.environment import SimEnvironment
from repro.sim.node import Node
from repro.sim.topology import Region, Topology


class Recorder(Node):
    """A node that records every message it receives."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def handle_message(self, message):
        self.received.append(message)


def _make_env():
    return SimEnvironment(seed=5, topology=Topology(jitter_fraction=0.0))


class TestRegionPartition:
    def test_region_partition_drops_both_directions(self):
        env = _make_env()
        a = Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.FRK, env.network)
        env.network.partition_regions(Region.IRL, Region.FRK)
        a.send("b", "hi")
        b.send("a", "hi")
        env.run_until_idle()
        assert b.received == []
        assert a.received == []
        assert env.network.messages_dropped == 2

    def test_region_partition_spares_other_regions(self):
        env = _make_env()
        a = Recorder("a", Region.IRL, env.network)
        Recorder("b", Region.FRK, env.network)
        c = Recorder("c", Region.VRG, env.network)
        env.network.partition_regions(Region.IRL, Region.FRK)
        a.send("c", "hi")
        env.run_until_idle()
        assert len(c.received) == 1

    def test_heal_regions_restores_delivery_round_trip(self):
        env = _make_env()
        a = Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.FRK, env.network)
        env.network.partition_regions(Region.IRL, Region.FRK)
        a.send("b", "lost")
        env.run_until_idle()
        env.network.heal_regions(Region.IRL, Region.FRK)
        a.send("b", "delivered")
        b.send("a", "delivered-back")
        env.run_until_idle()
        assert [m.kind for m in b.received] == ["delivered"]
        assert [m.kind for m in a.received] == ["delivered-back"]

    def test_region_partition_affects_nodes_registered_later(self):
        env = _make_env()
        a = Recorder("a", Region.IRL, env.network)
        env.network.partition_regions(Region.IRL, Region.FRK)
        late = Recorder("late", Region.FRK, env.network)
        a.send("late", "hi")
        env.run_until_idle()
        assert late.received == []

    def test_node_partition_heal_round_trip(self):
        env = _make_env()
        a = Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.FRK, env.network)
        env.network.partition("a", "b")
        assert env.network.is_partitioned("a", "b")
        a.send("b", "lost")
        env.run_until_idle()
        env.network.heal("a", "b")
        assert not env.network.is_partitioned("a", "b")
        a.send("b", "delivered")
        env.run_until_idle()
        assert [m.kind for m in b.received] == ["delivered"]

    def test_partitioned_messages_still_charged_to_link(self):
        env = _make_env()
        a = Recorder("a", Region.IRL, env.network)
        Recorder("b", Region.FRK, env.network)
        env.network.partition_regions(Region.IRL, Region.FRK)
        a.send("b", "hi", size_bytes=123)
        env.run_until_idle()
        assert env.network.link_stats("a", "b").bytes == 123


class TestLinkDegradation:
    def test_degraded_node_link_adds_latency(self):
        env = _make_env()
        a = Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.FRK, env.network)
        env.network.degrade_link("a", "b", 50.0)
        a.send("b", "hi")
        env.run_until_idle()
        # Base IRL-FRK one-way is 10 ms; the degradation adds 50 ms.
        assert env.now() == pytest.approx(60.0)
        assert len(b.received) == 1

    def test_degraded_region_link_adds_latency_and_restores(self):
        env = _make_env()
        a = Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.FRK, env.network)
        env.network.degrade_link(f"region:{Region.IRL}",
                                 f"region:{Region.FRK}", 40.0)
        assert env.network.link_extra_ms("a", "b") == pytest.approx(40.0)
        env.network.restore_link(f"region:{Region.IRL}",
                                 f"region:{Region.FRK}")
        a.send("b", "hi")
        env.run_until_idle()
        assert env.now() == pytest.approx(10.0)

    def test_degradation_rejects_negative_latency(self):
        env = _make_env()
        with pytest.raises(ValueError):
            env.network.degrade_link("a", "b", -1.0)


class TestSlowdown:
    def test_slow_down_scales_service_time(self, scheduler):
        env = _make_env()
        node = Recorder("n", Region.IRL, env.network)
        node.slow_down(10.0)
        done = []
        node.process(lambda: done.append(env.now()), service_time_ms=2.0)
        env.run_until_idle()
        assert done == [pytest.approx(20.0)]

    def test_restore_speed(self):
        env = _make_env()
        node = Recorder("n", Region.IRL, env.network)
        node.slow_down(10.0)
        node.restore_speed()
        done = []
        node.process(lambda: done.append(env.now()), service_time_ms=2.0)
        env.run_until_idle()
        assert done == [pytest.approx(2.0)]

    def test_slow_down_rejects_non_positive_factor(self):
        env = _make_env()
        node = Recorder("n", Region.IRL, env.network)
        with pytest.raises(ValueError):
            node.slow_down(0.0)
