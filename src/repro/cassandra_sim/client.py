"""Client node for the simulated Cassandra cluster.

A client connects to one contact replica (its coordinator) and issues reads
and writes with explicit quorum sizes, mirroring the DataStax driver the
paper's prototype uses.  ICG reads (``icg=True``) produce two callbacks: one
for the coordinator's preliminary response and one for the final quorum
response.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cassandra_sim.config import CassandraConfig
from repro.cassandra_sim.coordinator import FusedRead, FusedWrite
from repro.core.retry import RetryPolicy
from repro.sim.failover import FailoverMixin
from repro.sim.network import MESSAGE_HEADER_BYTES, Message, Network, estimate_payload_size
from repro.sim.node import Node

#: ``callback(response_dict)`` where the dict carries value/found/timestamp/...
ResponseCallback = Callable[[Dict[str, Any]], None]


@dataclass(slots=True)
class _PendingRequest:
    kind: str
    sent_at: float
    on_preliminary: Optional[ResponseCallback] = None
    on_final: Optional[ResponseCallback] = None
    preliminary_value: Any = None
    preliminary_seen: bool = False
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: Failover state: request payload for re-sends, retry count, and the
    #: pending client-side timeout event.
    request: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 0
    attempts: int = 0
    rotation_index: int = 0
    timeout_event: Optional[Any] = None


class CassandraClient(FailoverMixin, Node):
    """A client application node issuing operations against one coordinator.

    With ``config.client_timeout_ms`` set and ``fallback_contacts`` given, a
    request that receives no final response in time is re-issued to the next
    coordinator in the rotation — which is how sessions survive a crashed or
    partitioned-away contact replica.
    """

    def __init__(self, name: str, region: str, network: Network,
                 contact: str, config: CassandraConfig,
                 fallback_contacts: Optional[Sequence[str]] = None) -> None:
        super().__init__(name, region, network)
        self.contact = contact
        self.config = config
        self._contacts: List[str] = [contact] + [
            c for c in (fallback_contacts or []) if c != contact]
        self._req_ids = itertools.count(1)
        self._pending: Dict[int, _PendingRequest] = {}
        #: Contact replica's node object, resolved lazily on the first fused
        #: operation (registration order is not constrained at __init__).
        self._fused_coordinator: Optional[Any] = None
        self.reads_sent = 0
        self.writes_sent = 0
        # Fault-path instrumentation (stays zero with timeouts disabled).
        self.retries = 0
        self.failed_requests = 0
        #: Preliminary views that arrived after the final response — the
        #: client-side analogue of ``Correctable.discarded_updates``.
        self.late_preliminaries = 0
        # Fused continuations, bound once: coordinators pass these to fused
        # sends, and an instance-attribute load avoids materializing a new
        # bound method per reply hop.
        self._fused_read_preliminary = self._fused_read_preliminary
        self._fused_read_final = self._fused_read_final
        self._fused_read_error = self._fused_read_error
        self._fused_write_ack = self._fused_write_ack
        self._fused_write_error = self._fused_write_error

    # -- issuing operations -------------------------------------------------
    def _fused_eligible(self) -> bool:
        """Whether operations issued now may take the fused fast path.

        Fused operations carry no timeout/failover machinery, so the gate
        requires every fault hook to be disarmed: a single contact (no
        rotation), all timeouts off, and no read repair.  Scenarios that arm
        any of these run the classic message path end to end.
        """
        config = self.config
        return (self.network.fast_path and len(self._contacts) == 1
                and config.client_timeout_ms <= 0
                and config.read_timeout_ms <= 0
                and config.write_timeout_ms <= 0
                and not config.read_repair)

    def _fused_contact(self) -> "Any":
        coordinator = self._fused_coordinator
        if coordinator is None:
            coordinator = self.network.node(self._contacts[0])
            self._fused_coordinator = coordinator
        return coordinator

    # -- lean op pipeline -----------------------------------------------------
    # ``protocol.lean_ops``: completions are delivered *positionally* to a
    # pooled sink object instead of through per-op response dicts.  A sink
    # implements ``deliver_read_preliminary(value, timestamp, latency_ms)``,
    # ``deliver_read_final(value, timestamp, latency_ms, is_confirmation)``,
    # ``deliver_read_error(error, latency_ms)``,
    # ``deliver_write_ack(timestamp, latency_ms)`` and
    # ``deliver_write_error(error, latency_ms)``.  Latencies, byte sizes,
    # counters, and the (time, seq) event order are identical to the dict
    # pipeline — only the Python allocations differ.

    def lean_ready(self) -> bool:
        """Whether operations issued now may take the lean pipeline.

        The ``protocol.lean_ops`` kill-switch plus the fused-path gate:
        checked per issued operation, so a mid-run flip or a fault
        configuration (timeouts, fallback contacts, read repair) routes
        subsequent operations back to the classic dict pipeline.
        """
        return self.network.lean_ops and self._fused_eligible()

    def lean_read(self, key: str, r: int, icg: bool, sink: Any) -> None:
        """Fused read delivering to ``sink`` (caller checked lean_ready)."""
        next(self._req_ids)
        self.reads_sent += 1
        coordinator = self._fused_coordinator
        if coordinator is None:
            coordinator = self._fused_contact()
        rec = FusedRead.acquire()
        rec.client = self
        rec.coordinator = coordinator
        rec.key = key
        rec.r = r
        rec.icg = icg
        rec.sent_at = self.scheduler.clock._now
        rec.on_preliminary = None
        rec.on_final = None
        rec.lean = sink
        self.network.fused_send_to(
            self, coordinator.name,
            MESSAGE_HEADER_BYTES + self.config.key_size_bytes + 8,
            coordinator._fused_client_read, rec.args)

    def lean_write(self, key: str, value: Any, w: int, sink: Any) -> None:
        """Fused write delivering to ``sink`` (caller checked lean_ready)."""
        next(self._req_ids)
        self.writes_sent += 1
        if type(value) is str and value.isascii():
            value_bytes = len(value)
        else:
            value_bytes = estimate_payload_size(value)
        coordinator = self._fused_coordinator
        if coordinator is None:
            coordinator = self._fused_contact()
        rec = FusedWrite.acquire()
        rec.client = self
        rec.coordinator = coordinator
        rec.key = key
        rec.value = value
        rec.version = None
        rec.w = w
        rec.sent_at = self.scheduler.clock._now
        rec.on_final = None
        rec.lean = sink
        self.network.fused_send_to(
            self, coordinator.name,
            MESSAGE_HEADER_BYTES + self.config.key_size_bytes + value_bytes,
            coordinator._fused_client_write, rec.args)

    def read(self, key: str, r: int = 1, icg: bool = False,
             on_preliminary: Optional[ResponseCallback] = None,
             on_final: Optional[ResponseCallback] = None) -> int:
        """Issue a read with read-quorum ``r``; returns the request id."""
        req_id = next(self._req_ids)
        self.reads_sent += 1
        config = self.config
        network = self.network
        # _fused_eligible, inlined: this gate runs once per operation.
        if (network.fast_path and len(self._contacts) == 1
                and config.client_timeout_ms <= 0
                and config.read_timeout_ms <= 0
                and config.write_timeout_ms <= 0 and not config.read_repair):
            coordinator = self._fused_coordinator
            if coordinator is None:
                coordinator = self._fused_contact()
            rec = FusedRead.acquire()
            rec.client = self
            rec.coordinator = coordinator
            rec.key = key
            rec.r = r
            rec.icg = icg
            rec.sent_at = self.scheduler.clock._now
            rec.on_preliminary = on_preliminary
            rec.on_final = on_final
            network.fused_send_to(
                self, coordinator.name,
                MESSAGE_HEADER_BYTES + config.key_size_bytes + 8,
                coordinator._fused_client_read, rec.args)
            return req_id
        pending = _PendingRequest(
            kind="read", sent_at=self.scheduler.now(),
            on_preliminary=on_preliminary, on_final=on_final,
            request={"req_id": req_id, "key": key, "r": r, "icg": icg},
            size_bytes=MESSAGE_HEADER_BYTES + self.config.key_size_bytes + 8)
        self._pending[req_id] = pending
        self._dispatch(pending, "client_read")
        return req_id

    def write(self, key: str, value: Any, w: int = 1,
              on_final: Optional[ResponseCallback] = None) -> int:
        """Issue a write with write-quorum ``w``; returns the request id."""
        req_id = next(self._req_ids)
        self.writes_sent += 1
        # A YCSB update writes a single field, so the request is sized by the
        # written payload (reads, in contrast, return the whole record and are
        # sized by the replica using ``config.value_size_bytes`` as a floor).
        if type(value) is str and value.isascii():
            value_bytes = len(value)
        else:
            value_bytes = estimate_payload_size(value)
        config = self.config
        network = self.network
        # _fused_eligible, inlined (see read()).
        if (network.fast_path and len(self._contacts) == 1
                and config.client_timeout_ms <= 0
                and config.read_timeout_ms <= 0
                and config.write_timeout_ms <= 0 and not config.read_repair):
            coordinator = self._fused_coordinator
            if coordinator is None:
                coordinator = self._fused_contact()
            rec = FusedWrite.acquire()
            rec.client = self
            rec.coordinator = coordinator
            rec.key = key
            rec.value = value
            rec.version = None
            rec.w = w
            rec.sent_at = self.scheduler.clock._now
            rec.on_final = on_final
            network.fused_send_to(
                self, coordinator.name,
                (MESSAGE_HEADER_BYTES + config.key_size_bytes
                 + value_bytes),
                coordinator._fused_client_write, rec.args)
            return req_id
        pending = _PendingRequest(
            kind="write", sent_at=self.scheduler.now(), on_final=on_final,
            request={"req_id": req_id, "key": key, "value": value, "w": w},
            size_bytes=(MESSAGE_HEADER_BYTES + self.config.key_size_bytes
                        + value_bytes))
        self._pending[req_id] = pending
        self._dispatch(pending, "client_write")
        return req_id

    # -- dispatch & failover (see FailoverMixin) ------------------------------
    def _message_kind(self, pending: _PendingRequest) -> str:
        return "client_read" if pending.kind == "read" else "client_write"

    def _dispatch(self, pending: _PendingRequest, message_kind: str) -> None:
        contact = self._contacts[pending.rotation_index % len(self._contacts)]
        # The request dict is shared with the message (no defensive copy):
        # replica handlers only read payloads, and a re-dispatch after
        # failover sends the identical request anyway.
        self.send(contact, message_kind, pending.request,
                  size_bytes=pending.size_bytes)
        self._arm_request_timeout(pending, pending.request["req_id"],
                                  self.config.client_timeout_ms)

    def _redispatch(self, pending: _PendingRequest) -> None:
        self._dispatch(pending, self._message_kind(pending))

    def _failover_retries(self) -> int:
        return self.config.client_retries

    def _retry_policy(self) -> RetryPolicy:
        policy = self._failover_policy
        if policy is None:
            policy = RetryPolicy(
                max_retries=self.config.client_retries,
                base_delay_ms=self.config.client_backoff_base_ms,
                multiplier=self.config.client_backoff_multiplier,
                cap_ms=self.config.client_backoff_cap_ms,
                jitter_ms=self.config.client_backoff_jitter_ms,
                label=f"failover:{self.name}")
            self._failover_policy = policy
        return policy

    def _timeout_failure_response(self, pending: _PendingRequest) -> Dict[str, Any]:
        return {
            "value": None,
            "found": False,
            "timestamp": None,
            "is_confirmation": False,
            "error": "client timeout: no coordinator responded",
            "latency_ms": self.scheduler.now() - pending.sent_at,
        }

    # -- responses ---------------------------------------------------------------
    def on_read_preliminary(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.get(payload["req_id"])
        if pending is None:
            self.late_preliminaries += 1
            return
        pending.preliminary_seen = True
        pending.preliminary_value = payload["value"]
        if pending.on_preliminary is not None:
            pending.on_preliminary({
                "value": payload["value"],
                "found": payload["found"],
                "timestamp": payload["timestamp"],
                "replica": payload.get("replica"),
                "latency_ms": self.scheduler.now() - pending.sent_at,
                "is_confirmation": False,
            })

    def on_read_final(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.pop(payload["req_id"], None)
        if pending is None:
            return
        self._settle(pending)
        is_confirmation = bool(payload.get("is_confirmation", False))
        value = payload["value"]
        if is_confirmation:
            # The storage elided the payload: the preliminary value is final.
            value = pending.preliminary_value
        if pending.on_final is not None:
            pending.on_final({
                "value": value,
                "found": payload["found"],
                "timestamp": payload["timestamp"],
                "is_confirmation": is_confirmation,
                "matches_preliminary": payload.get("matches_preliminary"),
                "degraded": bool(payload.get("degraded", False)),
                "latency_ms": self.scheduler.now() - pending.sent_at,
            })

    def on_read_error(self, message: Message) -> None:
        self._fail_pending(message.payload)

    def on_write_error(self, message: Message) -> None:
        self._fail_pending(message.payload)

    def _fail_pending(self, payload: Dict[str, Any]) -> None:
        pending = self._pending.pop(payload["req_id"], None)
        if pending is None:
            return
        self._settle(pending)
        # A coordinator that left the ring answers with a *retryable* error:
        # rotate to the next contact instead of failing the request (the
        # rebalance analogue of timeout-driven failover).
        if payload.get("retryable") and len(self._contacts) > 1 \
                and self._retry_policy().should_retry(pending.attempts):
            pending.attempts += 1
            pending.rotation_index += 1
            self.retries += 1
            self._pending[payload["req_id"]] = pending
            self._redispatch(pending)
            return
        self.failed_requests += 1
        if pending.on_final is not None:
            pending.on_final({
                "value": None,
                "found": False,
                "timestamp": None,
                "is_confirmation": False,
                "error": payload.get("error", "storage error"),
                "latency_ms": self.scheduler.now() - pending.sent_at,
            })

    def on_write_ack_client(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.pop(payload["req_id"], None)
        if pending is None:
            return
        self._settle(pending)
        if pending.on_final is not None:
            pending.on_final({
                "value": True,
                "found": True,
                "timestamp": payload.get("timestamp"),
                "is_confirmation": False,
                "degraded": bool(payload.get("degraded", False)),
                "latency_ms": self.scheduler.now() - pending.sent_at,
            })

    # -- fused fast path responses -------------------------------------------
    # Network continuations: each starts with the delivery preamble (the
    # alive check plus delivered/dropped counters _deliver does for
    # messages).  Records are recycled before callbacks run — a callback may
    # issue the next operation, which is allowed to reuse the record — so
    # everything the callback dict needs is captured first.
    def _fused_read_preliminary(self, rec: FusedRead, replica: str) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        if rec.final_done:
            # Outlived the final response (the coordinator was slowed, or the
            # flush job lost the race): count and recycle, no callback.
            self.late_preliminaries += 1
            rec.prelim_seen = True
            if not rec.flush_pending:
                FusedRead.release(rec)
            return
        rec.prelim_seen = True
        version = rec.preliminary
        value = version.value if version is not None else None
        rec.prelim_value = value
        lean = rec.lean
        if lean is not None:
            lean.deliver_read_preliminary(
                value, version.timestamp if version is not None else None,
                self.scheduler.clock._now - rec.sent_at)
        elif rec.on_preliminary is not None:
            rec.on_preliminary({
                "value": value,
                "found": version is not None,
                "timestamp": version.timestamp if version is not None else None,
                "replica": replica,
                "latency_ms": self.scheduler.clock._now - rec.sent_at,
                "is_confirmation": False,
            })

    def _fused_read_final(self, rec: FusedRead, is_confirmation: bool,
                          matches_preliminary: bool) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        rec.final_done = True
        version = rec.best
        if is_confirmation:
            # The storage elided the payload: the preliminary value is final.
            value = rec.prelim_value
        else:
            value = version.value if version is not None else None
        timestamp = version.timestamp if version is not None else None
        lean = rec.lean
        if lean is not None:
            sent_at = rec.sent_at
            if not rec.flush_pending \
                    and (not rec.preliminary_sent or rec.prelim_seen):
                FusedRead.release(rec)
            lean.deliver_read_final(
                value, timestamp, self.scheduler.clock._now - sent_at,
                is_confirmation)
            return
        found = version is not None
        cb = rec.on_final
        sent_at = rec.sent_at
        if not rec.flush_pending and (not rec.preliminary_sent or rec.prelim_seen):
            FusedRead.release(rec)
        if cb is not None:
            cb({
                "value": value,
                "found": found,
                "timestamp": timestamp,
                "is_confirmation": is_confirmation,
                "matches_preliminary": matches_preliminary,
                "degraded": False,
                "latency_ms": self.scheduler.clock._now - sent_at,
            })

    def _fused_read_error(self, rec: FusedRead, error: str) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        self.failed_requests += 1
        lean = rec.lean
        cb = rec.on_final
        sent_at = rec.sent_at
        FusedRead.release(rec)
        if lean is not None:
            lean.deliver_read_error(
                error, self.scheduler.clock._now - sent_at)
        elif cb is not None:
            cb({
                "value": None,
                "found": False,
                "timestamp": None,
                "is_confirmation": False,
                "error": error,
                "latency_ms": self.scheduler.clock._now - sent_at,
            })

    def _fused_write_ack(self, rec: FusedWrite) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        rec.client_done = True
        lean = rec.lean
        cb = rec.on_final
        sent_at = rec.sent_at
        timestamp = rec.version.timestamp
        if rec.ack_count >= rec.acks_expected:
            FusedWrite.release(rec)
        if lean is not None:
            lean.deliver_write_ack(
                timestamp, self.scheduler.clock._now - sent_at)
            return
        if cb is not None:
            cb({
                "value": True,
                "found": True,
                "timestamp": timestamp,
                "is_confirmation": False,
                "degraded": False,
                "latency_ms": self.scheduler.clock._now - sent_at,
            })

    def _fused_write_error(self, rec: FusedWrite, error: str) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        self.failed_requests += 1
        lean = rec.lean
        cb = rec.on_final
        sent_at = rec.sent_at
        FusedWrite.release(rec)
        if lean is not None:
            lean.deliver_write_error(
                error, self.scheduler.clock._now - sent_at)
            return
        if cb is not None:
            cb({
                "value": None,
                "found": False,
                "timestamp": None,
                "is_confirmation": False,
                "error": error,
                "latency_ms": self.scheduler.clock._now - sent_at,
            })
