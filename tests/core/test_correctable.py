"""Tests for the Correctable state machine and its callbacks."""

import pytest
from hypothesis import given, strategies as st

from repro.core.consistency import CACHED, STRONG, WEAK
from repro.core.correctable import Correctable, CorrectableState
from repro.core.errors import InvalidStateError, OperationError


class TestStateMachine:
    def test_starts_updating(self):
        c = Correctable()
        assert c.state is CorrectableState.UPDATING
        assert c.is_updating() and not c.is_done()

    def test_update_keeps_updating(self):
        c = Correctable()
        c.update("v1", WEAK)
        assert c.is_updating()
        assert len(c.views()) == 1

    def test_close_moves_to_final(self):
        c = Correctable()
        c.close("v", STRONG)
        assert c.is_final() and c.is_done()
        assert c.value() == "v"

    def test_fail_moves_to_error(self):
        c = Correctable()
        c.fail(OperationError("boom"))
        assert c.is_error()
        assert isinstance(c.error, OperationError)

    def test_update_after_close_is_dropped_and_counted(self):
        c = Correctable()
        c.close("v", STRONG)
        assert c.update("late", WEAK) is None
        assert c.discarded_updates == 1
        assert len(c.views()) == 1

    def test_close_after_close_raises(self):
        c = Correctable()
        c.close("v", STRONG)
        with pytest.raises(InvalidStateError):
            c.close("v2", STRONG)

    def test_fail_after_close_raises(self):
        c = Correctable()
        c.close("v", STRONG)
        with pytest.raises(InvalidStateError):
            c.fail(OperationError("x"))

    def test_close_after_fail_raises(self):
        c = Correctable()
        c.fail(OperationError("x"))
        with pytest.raises(InvalidStateError):
            c.close("v", STRONG)

    def test_final_view_before_close_raises(self):
        with pytest.raises(InvalidStateError):
            Correctable().final_view()

    def test_final_view_after_error_reraises(self):
        c = Correctable()
        c.fail(OperationError("bad"))
        with pytest.raises(OperationError):
            c.final_view()

    def test_views_ordering(self):
        c = Correctable()
        c.update("a", CACHED)
        c.update("b", WEAK)
        c.close("c", STRONG)
        assert [v.value for v in c.views()] == ["a", "b", "c"]
        assert [v.value for v in c.preliminary_views()] == ["a", "b"]
        assert c.final_view().value == "c"
        assert c.latest_view().value == "c"


class TestCallbacks:
    def test_on_update_fires_per_preliminary(self):
        c = Correctable()
        seen = []
        c.set_callbacks(on_update=lambda v: seen.append(v.value))
        c.update("a", WEAK)
        c.update("b", WEAK)
        assert seen == ["a", "b"]

    def test_on_final_fires_once(self):
        c = Correctable()
        seen = []
        c.set_callbacks(on_final=lambda v: seen.append(v.value))
        c.update("a", WEAK)
        c.close("b", STRONG)
        assert seen == ["b"]

    def test_callbacks_registered_late_fire_immediately(self):
        c = Correctable()
        c.update("a", WEAK)
        c.close("b", STRONG)
        updates, finals = [], []
        c.set_callbacks(on_update=lambda v: updates.append(v.value),
                        on_final=lambda v: finals.append(v.value))
        assert updates == ["a"]
        assert finals == ["b"]

    def test_on_error_late_registration(self):
        c = Correctable()
        c.fail(OperationError("boom"))
        errors = []
        c.on_error(errors.append)
        assert len(errors) == 1

    def test_chaining_returns_self(self):
        c = Correctable()
        assert c.set_callbacks(on_update=lambda v: None) is c
        assert c.on_final(lambda v: None) is c

    def test_update_callback_not_called_for_final(self):
        c = Correctable()
        updates = []
        c.on_update(lambda v: updates.append(v.value))
        c.close("final", STRONG)
        assert updates == []

    def test_multiple_final_callbacks(self):
        c = Correctable()
        seen = []
        c.on_final(lambda v: seen.append(1))
        c.on_final(lambda v: seen.append(2))
        c.close("x", STRONG)
        assert seen == [1, 2]


class TestTimestamps:
    def test_clock_stamps_views(self):
        times = iter([10.0, 20.0])
        c = Correctable(clock=lambda: next(times))
        c.update("a", WEAK)
        c.close("b", STRONG)
        assert c.views()[0].timestamp == 10.0
        assert c.views()[1].timestamp == 20.0

    def test_no_clock_leaves_timestamp_none(self):
        c = Correctable()
        c.close("a", STRONG)
        assert c.final_view().timestamp is None


class TestDerived:
    def test_map_transforms_all_views(self):
        c = Correctable()
        mapped = c.map(lambda x: x * 2)
        seen = []
        mapped.set_callbacks(on_update=lambda v: seen.append(("u", v.value)),
                             on_final=lambda v: seen.append(("f", v.value)))
        c.update(1, WEAK)
        c.close(2, STRONG)
        assert seen == [("u", 2), ("f", 4)]

    def test_map_propagates_error(self):
        c = Correctable()
        mapped = c.map(lambda x: x)
        c.fail(OperationError("x"))
        assert mapped.is_error()

    def test_final_promise_resolves_with_final_value(self):
        c = Correctable()
        promise = c.final_promise()
        c.update("weak", WEAK)
        assert not promise.is_done()
        c.close("strong", STRONG)
        assert promise.value == "strong"

    def test_final_promise_rejects_on_error(self):
        c = Correctable()
        promise = c.final_promise()
        c.fail(OperationError("nope"))
        assert promise.is_failed()

    def test_resolved_constructor(self):
        c = Correctable.resolved(7, STRONG)
        assert c.is_final() and c.value() == 7

    def test_all_combines_final_values(self):
        c1, c2 = Correctable(), Correctable()
        combined = Correctable.all([c1, c2])
        c2.close("b", STRONG)
        c1.close("a", STRONG)
        assert combined.value == ["a", "b"]

    def test_close_with_confirmation_flag(self):
        c = Correctable()
        c.update("v", WEAK)
        view = c.close("v", STRONG, is_confirmation=True)
        assert view.is_confirmation
        assert c.final_view().value == "v"


@given(st.lists(st.integers(), min_size=0, max_size=10), st.integers())
def test_views_are_append_only_and_final_is_last(preliminaries, final_value):
    c = Correctable()
    for value in preliminaries:
        c.update(value, WEAK)
    c.close(final_value, STRONG)
    values = [v.value for v in c.views()]
    assert values == preliminaries + [final_value]
    assert c.final_view().consistency == STRONG
    # After closing, no further transitions are possible.
    assert c.update(0, WEAK) is None
    with pytest.raises(InvalidStateError):
        c.close(0, STRONG)


@given(st.lists(st.sampled_from(["update", "close", "fail"]),
                min_size=1, max_size=12))
def test_state_machine_never_reopens(actions):
    """Once final or error is reached the Correctable never changes state."""
    c = Correctable()
    terminal = None
    for action in actions:
        if terminal is None:
            if action == "update":
                c.update("x", WEAK)
            elif action == "close":
                c.close("x", STRONG)
                terminal = CorrectableState.FINAL
            else:
                c.fail(OperationError("e"))
                terminal = CorrectableState.ERROR
        else:
            if action == "update":
                c.update("y", WEAK)
            else:
                with pytest.raises(InvalidStateError):
                    if action == "close":
                        c.close("y", STRONG)
                    else:
                        c.fail(OperationError("e2"))
            assert c.state is terminal


class TestViewSnapshotCaching:
    """views()/preliminary_views() hand out cached immutable snapshots."""

    def test_views_returns_same_tuple_between_deliveries(self):
        c = Correctable()
        c.update("v1", WEAK)
        first = c.views()
        assert isinstance(first, tuple)
        assert c.views() is first, "hot-path polling must not copy"

    def test_views_cache_invalidated_by_new_view(self):
        c = Correctable()
        c.update("v1", WEAK)
        first = c.views()
        c.update("v2", WEAK)
        second = c.views()
        assert second is not first
        assert [view.value for view in second] == ["v1", "v2"]
        assert c.views() is second

    def test_preliminary_views_cached_once_final(self):
        c = Correctable()
        c.update("v1", WEAK)
        c.close("v2", STRONG)
        prelims = c.preliminary_views()
        assert isinstance(prelims, tuple)
        assert [view.value for view in prelims] == ["v1"]
        assert c.preliminary_views() is prelims

    def test_preliminary_views_while_updating_track_all_views(self):
        c = Correctable()
        c.update("v1", WEAK)
        assert [v.value for v in c.preliminary_views()] == ["v1"]
        c.update("v2", WEAK)
        assert [v.value for v in c.preliminary_views()] == ["v1", "v2"]

    def test_unpacking_still_works(self):
        c = Correctable()
        c.update("p", WEAK)
        c.close("f", STRONG)
        prelim, final = c.views()
        assert (prelim.value, final.value) == ("p", "f")


class TestLeanCorrectable:
    def _fresh(self, clock=None):
        from repro.core.correctable import LeanCorrectable

        lean = LeanCorrectable.acquire(clock=clock)
        lean.preliminary_consistency = WEAK
        lean.final_consistency = STRONG
        return lean

    def test_read_lifecycle_and_views_on_demand(self):
        lean = self._fresh(clock=lambda: 7.0)
        assert lean.is_updating()
        lean.deliver_read_preliminary("p", None, 1.5)
        assert lean.had_preliminary and lean.preliminary_value == "p"
        assert lean.latest_view().value == "p"
        lean.deliver_read_final("f", None, 4.0, False)
        assert lean.is_final()
        assert lean.value() == "f"
        assert lean.final_view() is lean.final_view(), "final view is cached"
        assert lean.final_view().timestamp == 7.0
        assert [v.value for v in lean.views()] == ["p", "f"]
        assert [v.value for v in lean.preliminary_views()] == ["p"]
        assert lean.final_latency_ms == 4.0
        assert lean.preliminary_latency_ms == 1.5

    def test_write_lifecycle_closes_with_pending_value(self):
        lean = self._fresh()
        lean.pending_value = "w"
        lean.deliver_write_ack(None, 2.0)
        assert lean.is_final()
        assert lean.value() == "w"
        assert lean.final_view().consistency is STRONG

    def test_confirmation_closes_with_preliminary_value(self):
        lean = self._fresh()
        lean.deliver_read_preliminary("p", None, 1.0)
        lean.deliver_read_final(None, None, 3.0, True)
        assert lean.value() == "p"
        assert lean.final_view().is_confirmation

    def test_error_lifecycle(self):
        lean = self._fresh()
        seen = []
        lean.set_callbacks(on_error=seen.append)
        lean.deliver_read_error("timeout", 9.0)
        assert lean.is_error()
        assert isinstance(lean.error, OperationError)
        assert seen == [lean.error]
        with pytest.raises(OperationError):
            lean.final_view()

    def test_callbacks_fire_in_order_and_promise_semantics(self):
        lean = self._fresh()
        events = []
        lean.set_callbacks(on_update=lambda v: events.append(("u", v.value)),
                           on_final=lambda v: events.append(("f", v.value)))
        lean.deliver_read_preliminary("p", None, 1.0)
        lean.deliver_read_final("f", None, 2.0, False)
        assert events == [("u", "p"), ("f", "f")]
        # Late registration replays the retained transitions immediately.
        late = []
        lean.set_callbacks(on_update=lambda v: late.append(("u", v.value)),
                           on_final=lambda v: late.append(("f", v.value)))
        assert late == [("u", "p"), ("f", "f")]

    def test_single_slot_callbacks_reject_second_registration(self):
        lean = self._fresh()
        lean.set_callbacks(on_final=lambda v: None)
        with pytest.raises(InvalidStateError):
            lean.set_callbacks(on_final=lambda v: None)

    def test_late_deliveries_counted_as_discarded(self):
        lean = self._fresh()
        lean.deliver_read_final("f", None, 2.0, False)
        lean.deliver_read_preliminary("late", None, 1.0)
        lean.deliver_read_final("again", None, 3.0, False)
        assert lean.discarded_updates == 2
        assert lean.value() == "f", "late deliveries must not change state"
        assert not lean.had_preliminary

    def test_pool_acquire_release_balances_and_resets(self):
        from repro.core.correctable import LeanCorrectable

        stats_before = LeanCorrectable.pool_stats()
        lean = self._fresh()
        lean.set_callbacks(on_final=lambda v: None)
        lean.deliver_read_preliminary("p", None, 1.0)
        lean.deliver_read_final("f", None, 2.0, False)
        LeanCorrectable.release(lean)
        stats = LeanCorrectable.pool_stats()
        assert stats["recycled"] == stats_before["recycled"] + 1
        fresh = LeanCorrectable.acquire()
        assert fresh is lean, "released instance should be reused"
        assert fresh.is_updating()
        assert not fresh.had_preliminary
        assert fresh.discarded_updates == 0
        assert fresh.latest_view() is None
        LeanCorrectable.release(fresh)

    def test_speculation_attaches_to_lean_source(self):
        lean = self._fresh(clock=lambda: 1.0)
        derived = lean.speculate(lambda value: value + "!")
        lean.deliver_read_preliminary("p", None, 1.0)
        lean.deliver_read_final("p", None, 2.0, False)
        assert derived.is_final()
        assert derived.value() == "p!"
