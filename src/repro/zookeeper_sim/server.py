"""ZooKeeper server node: leader or follower.

Request flow for a write transaction (create / delete / set / dequeue):

1. a client sends ``zk_request`` to the server it is connected to;
2. if the server is a follower it forwards the request to the leader
   (``zk_forward``); the leader assigns a zxid and broadcasts
   ``zab_proposal``;
3. followers acknowledge with ``zab_ack``; when a majority (leader included)
   acked, the leader sends ``zab_commit`` to all and applies the transaction;
4. every server applies committed transactions in zxid order; the server
   that originally received the client request (the *origin*) computes the
   result of the application locally and replies with ``zk_response``.

Reads (``get``, ``get_children``) are served from the contacted server's
local tree without coordination, exactly as in ZooKeeper.

Correctable ZooKeeper (CZK) fast path: a request flagged ``icg`` is first
*simulated* on the contacted server's local state; the simulated result is
returned immediately as ``zk_preliminary`` before the transaction enters Zab.
Simulations of concurrent requests on the same server observe each other's
tentative effects (e.g. two retailers simulating a dequeue obtain different
tickets), mirroring what applying the operations to a copy of the local
state would do.

Failure detection and leader election (enabled by
``config.heartbeat_interval_ms > 0`` plus
:meth:`ZKServer.enable_failure_detection`): followers ping the leader every
heartbeat interval; one that misses replies for ``leader_timeout_ms``
announces its candidacy (``zk_election``) carrying its last applied zxid.
After ``election_window_ms`` every elector tallies the candidacies it saw —
requiring a majority of the ensemble — and the candidate with the highest
``(last_applied, name)`` promotes itself, bumps the epoch, and broadcasts
``zk_new_leader``.  Followers then discard uncommitted proposals of the dead
epoch, catch up missing transactions from the new leader's applied log
(``zk_sync_req`` / ``zk_sync``), and re-forward writes that were in flight.
Zab messages are epoch-tagged so stragglers from a deposed leader are
ignored.  A recovering server broadcasts ``zk_whois_leader`` and rejoins as a
follower of whoever currently leads.  Writes orphaned by a leader crash are
abandoned server-side; clients re-issue them (at-least-once), as with real
ZooKeeper session retries.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.sim.network import (
    MESSAGE_HEADER_BYTES,
    Message,
    Network,
    estimate_payload_size,
)
from repro.sim.node import Node
from repro.zookeeper_sim.config import ZooKeeperConfig
from repro.zookeeper_sim.datatree import DataTree, NoNodeError, NodeExistsError
from repro.zookeeper_sim.zab import CommitLog, ProposalTracker, Transaction

#: Operation types that mutate state and therefore go through Zab.
WRITE_OPS = {"create", "delete", "set", "enqueue", "dequeue"}
#: Operation types served locally by the contacted server.
READ_OPS = {"get", "get_children", "exists"}


class ZKServer(Node):
    """One member of the ensemble (leader or follower)."""

    def __init__(self, name: str, region: str, network: Network,
                 config: ZooKeeperConfig) -> None:
        super().__init__(name, region, network)
        self.config = config
        self.tree = DataTree()
        self.is_leader = False
        self.leader_name: Optional[str] = None
        self.ensemble: List[str] = []
        self.tracker: Optional[ProposalTracker] = None
        self.commit_log = CommitLog()
        # origin bookkeeping: zxid -> (client, request_id) for requests this
        # server received (it must answer them after applying the commit).
        self._origin_requests: Dict[int, Dict[str, Any]] = {}
        # follower-side: requests forwarded to the leader awaiting a zxid,
        # keyed by a server-local forward id (client req_ids may collide
        # across clients).
        self._forwarded: Dict[int, Dict[str, Any]] = {}
        self._next_forward_id = 1
        # CZK simulation overlay (tentative effects of in-flight operations).
        self._simulated_removed: Set[str] = set()
        self._simulated_created: Dict[str, int] = {}
        # Failure detection / election state.
        self.epoch = 0
        self.applied_log: List[Transaction] = []
        self._failure_detection = False
        self._last_pong_ms = 0.0
        #: Last time a transaction applied locally (stall detection).
        self._last_progress_ms = 0.0
        #: Highest epoch this server has announced a candidacy for.
        self._announced_epoch = 0
        #: Election epoch -> candidate name -> last applied zxid.
        self._election_candidates: Dict[int, Dict[str, int]] = {}
        #: Origin bookkeeping for requests whose proposal died with a deposed
        #: leader, keyed by the forward id; re-attached when the new leader
        #: re-proposes the transaction (same ``origin_request``).
        self._orphan_origins: Dict[int, Dict[str, Any]] = {}
        # Instrumentation.
        self.preliminaries_sent = 0
        self.transactions_applied = 0
        self.reads_served = 0
        self.elections_started = 0
        self.promotions = 0
        self.syncs_served = 0
        self.snapshots_served = 0
        self.snapshots_received = 0

    # -- ensemble wiring ----------------------------------------------------
    def become_leader(self, ensemble: List[str], next_zxid: int = 1) -> None:
        self.is_leader = True
        self.leader_name = self.name
        self.ensemble = list(ensemble)
        self.tracker = ProposalTracker(len(ensemble), next_zxid=next_zxid)

    def become_follower(self, leader_name: str, ensemble: List[str]) -> None:
        self.is_leader = False
        self.leader_name = leader_name
        self.ensemble = list(ensemble)
        self.tracker = None

    def _followers(self) -> List[str]:
        return [name for name in self.ensemble if name != self.name]

    @property
    def quorum_size(self) -> int:
        return len(self.ensemble) // 2 + 1

    # -- failure detection & election -----------------------------------------
    def enable_failure_detection(self) -> None:
        """Start the heartbeat/election machinery on this server.

        No-op unless ``config.heartbeat_interval_ms > 0``; with the default
        configuration the ensemble behaves exactly as the fault-free seed.
        """
        if self._failure_detection or self.config.heartbeat_interval_ms <= 0:
            return
        self._failure_detection = True
        self._last_pong_ms = self.scheduler.now()
        self._schedule_heartbeat()

    def _schedule_heartbeat(self) -> None:
        self.scheduler.schedule(self.config.heartbeat_interval_ms,
                                self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        if not self._failure_detection:
            return
        # Keep the tick alive through crashes so a recovered follower
        # resumes monitoring; a crashed node neither sends nor suspects.
        self._schedule_heartbeat()
        if not self.alive or self.is_leader or self.leader_name is None:
            return
        self.send(self.leader_name, "zk_ping", {"server": self.name},
                  size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)
        stale_for = self.scheduler.now() - self._last_pong_ms
        if stale_for > self.config.leader_timeout_ms:
            self._start_election()
            return
        # Self-healing: transactions are queued but nothing has applied for
        # a whole leader-timeout (e.g. a proposal was lost while switching
        # epochs) — ask the leader for a sync + retransmission.
        if self.commit_log.has_backlog() and \
                (self.scheduler.now() - self._last_progress_ms
                 > self.config.leader_timeout_ms):
            self._last_progress_ms = self.scheduler.now()
            self.send(self.leader_name, "zk_sync_req",
                      {"server": self.name,
                       "last_applied": self.commit_log.last_applied,
                       "epoch": self.epoch},
                      size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)

    def on_zk_ping(self, message: Message) -> None:
        if self.is_leader:
            self.send(message.src, "zk_pong", {"epoch": self.epoch},
                      size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)
        else:
            # Stale ping (this server was deposed or never led): redirect.
            self._send_leader_info(message.src)

    def on_zk_pong(self, message: Message) -> None:
        if message.payload.get("epoch", self.epoch) >= self.epoch:
            self._last_pong_ms = self.scheduler.now()

    def _start_election(self) -> None:
        target_epoch = self.epoch + 1
        if self._announced_epoch >= target_epoch:
            return  # already campaigning for this epoch (or a newer one)
        self.elections_started += 1
        self._announce_candidacy(target_epoch)

    def _announce_candidacy(self, epoch: int) -> None:
        self._announced_epoch = epoch
        candidates = self._election_candidates.setdefault(epoch, {})
        candidates[self.name] = self.commit_log.last_applied
        for peer in self._followers():
            self.send(peer, "zk_election",
                      {"epoch": epoch, "candidate": self.name,
                       "last_applied": self.commit_log.last_applied},
                      size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)
        self.scheduler.schedule(self.config.election_window_ms,
                                self._conclude_election, epoch)

    def on_zk_election(self, message: Message) -> None:
        payload = message.payload
        epoch = payload["epoch"]
        if epoch <= self.epoch:
            # A stale suspicion; if this server currently leads, reassert.
            if self.is_leader and self.alive:
                self._send_leader_info(message.src)
            return
        candidates = self._election_candidates.setdefault(epoch, {})
        candidates[payload["candidate"]] = payload["last_applied"]
        if self._announced_epoch < epoch and not self.is_leader:
            self._announce_candidacy(epoch)

    def _conclude_election(self, epoch: int) -> None:
        if not self.alive or self.epoch >= epoch:
            return  # crashed meanwhile, or a leader for this epoch emerged
        candidates = self._election_candidates.get(epoch, {})
        if len(candidates) < self.quorum_size:
            # Not enough electors reachable: abandon this round so a later
            # heartbeat tick can start a fresh one.
            self._election_candidates.pop(epoch, None)
            self._announced_epoch = self.epoch
            return
        winner = max(candidates.items(), key=lambda kv: (kv[1], kv[0]))[0]
        if winner == self.name:
            self._promote(epoch)
            return
        # Give the winner time to announce; if no new leader materializes,
        # allow another election round.
        self.scheduler.schedule(
            3 * self.config.election_window_ms,
            self._check_leader_emerged, epoch)

    def _check_leader_emerged(self, epoch: int) -> None:
        if self.alive and self.epoch < epoch:
            self._election_candidates.pop(epoch, None)
            self._announced_epoch = self.epoch

    def _promote(self, epoch: int) -> None:
        """Take over leadership for ``epoch``."""
        self.epoch = epoch
        self.promotions += 1
        # Proposals of the dead epoch that never committed are re-proposed
        # under the new epoch with fresh zxids continuing from last_applied:
        # the zxid sequence stays gapless, so commit logs (which apply in
        # strict last_applied+1 order) keep making progress.
        orphans = self.commit_log.uncommitted_transactions()
        self.commit_log.discard_uncommitted()
        stale_origins = self._drop_stale_origins()
        self.become_leader(self.ensemble,
                           next_zxid=self.commit_log.last_applied + 1)
        self._election_candidates = {
            e: c for e, c in self._election_candidates.items() if e > epoch}
        for peer in self._followers():
            self.send(peer, "zk_new_leader",
                      {"leader": self.name, "epoch": epoch,
                       "last_applied": self.commit_log.last_applied},
                      size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)
        for txn in orphans:
            self._repropose(txn, stale_origins.get(txn.zxid))
        # Writes this server had forwarded to the dead leader restart here.
        pending = list(self._forwarded.values())
        self._forwarded.clear()
        for request in pending:
            self._propose(origin_server=self.name, request=request)

    def _repropose(self, txn: Transaction,
                   origin: Optional[Dict[str, Any]]) -> None:
        """Re-issue a dead-epoch transaction under this leadership.

        The operation, origin server, and origin request id are preserved so
        the origin can still answer its client; only the zxid (and epoch on
        the wire) change.
        """
        assert self.tracker is not None
        renumbered = Transaction(
            zxid=self.tracker.next_zxid(),
            op=txn.op, path=txn.path, data=txn.data,
            sequential=txn.sequential,
            origin_server=txn.origin_server,
            origin_request=txn.origin_request,
        )
        self.tracker.track(renumbered)
        self.commit_log.learn(renumbered)
        if origin is not None:
            self._origin_requests[renumbered.zxid] = origin
        proposal_payload = self._txn_payload(renumbered)
        proposal_payload["epoch"] = self.epoch
        for follower in self._followers():
            self.send(follower, "zab_proposal", proposal_payload,
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.path_size_bytes
                                  + self.config.element_size_bytes))
        if self.tracker.record_ack(renumbered.zxid, self.name):
            self._commit(renumbered.zxid)

    def on_zk_new_leader(self, message: Message) -> None:
        payload = message.payload
        if payload["epoch"] < self.epoch:
            return
        if payload["epoch"] == self.epoch \
                and payload["leader"] == self.leader_name:
            return  # duplicate announcement
        self._adopt_leader(payload["leader"], payload["epoch"])

    def _adopt_leader(self, leader: str, epoch: int) -> None:
        if leader == self.name:
            return
        prev_epoch = self.epoch
        self.epoch = epoch
        self.become_follower(leader, self.ensemble)
        self.commit_log.discard_uncommitted()
        self._drop_stale_origins()
        self._last_pong_ms = self.scheduler.now()
        self._announced_epoch = self.epoch
        self._election_candidates = {
            e: c for e, c in self._election_candidates.items() if e > epoch}
        # Catch up on transactions committed while this server was behind.
        # The pre-adoption epoch tells the leader whether a plain diff sync
        # is safe or whether this server needs a full snapshot (it may carry
        # applied state from a dead leadership).
        self.send(leader, "zk_sync_req",
                  {"server": self.name,
                   "last_applied": self.commit_log.last_applied,
                   "epoch": prev_epoch},
                  size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)
        # Writes forwarded to the dead leader are re-forwarded to the new one.
        for forward_id, request in list(self._forwarded.items()):
            forwarded_payload = dict(request["payload"])
            forwarded_payload["req_id"] = forward_id
            self.send(leader, "zk_forward",
                      {"origin": self.name, "payload": forwarded_payload},
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.path_size_bytes
                                  + self.config.element_size_bytes))

    def _drop_stale_origins(self) -> Dict[int, Dict[str, Any]]:
        """Detach origin bookkeeping from zxids of abandoned proposals.

        Returns the detached entries keyed by their dead zxid (used by a
        promoting leader to re-attach them to re-proposed transactions) and
        stashes them by forward id in :attr:`_orphan_origins` so a follower
        can re-attach when the new leader's re-proposal arrives.  Entries
        never re-proposed are answered by the client's own timeout/retry
        (at-least-once), as with real ZooKeeper session recovery.
        """
        applied = self.commit_log.last_applied
        stale = {z: v for z, v in self._origin_requests.items() if z > applied}
        for entry in stale.values():
            forward_id = entry.get("origin_request")
            if forward_id is not None:
                self._orphan_origins[forward_id] = entry
        self._origin_requests = {z: v for z, v in self._origin_requests.items()
                                 if z <= applied}
        return stale

    def _send_leader_info(self, dst: str) -> None:
        if self.leader_name is None:
            return
        self.send(dst, "zk_leader_info",
                  {"leader": self.leader_name, "epoch": self.epoch},
                  size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)

    def on_zk_whois_leader(self, message: Message) -> None:
        self._send_leader_info(message.src)

    def on_zk_leader_info(self, message: Message) -> None:
        payload = message.payload
        if payload["epoch"] < self.epoch or payload["leader"] == self.name:
            return
        if payload["epoch"] == self.epoch and not self.is_leader \
                and payload["leader"] == self.leader_name:
            return  # nothing new
        self._adopt_leader(payload["leader"], payload["epoch"])

    def on_zk_sync_req(self, message: Message) -> None:
        payload = message.payload
        requester_epoch = payload.get("epoch", self.epoch)
        if requester_epoch < self.epoch \
                or payload["last_applied"] > self.commit_log.last_applied:
            # The requester slept through at least one election (or carries
            # applied state from a dead leadership whose zxids this epoch
            # recycled): a diff sync cannot reconcile it, send a snapshot.
            self._send_snapshot(message.src)
            self._retransmit_pending(message.src)
            return
        missing = [txn for txn in self.applied_log
                   if txn.zxid > payload["last_applied"]]
        if missing:
            self.syncs_served += 1
            self.send(message.src, "zk_sync",
                      {"epoch": self.epoch,
                       "txns": [self._txn_payload(txn) for txn in missing]},
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + len(missing) * (self.config.path_size_bytes
                                                    + self.config.element_size_bytes)))
        self._retransmit_pending(message.src)

    def _retransmit_pending(self, dst: str) -> None:
        """Re-send every uncommitted proposal of this leadership to ``dst``.

        A follower adopting a new leader mid-stream dropped (epoch-guarded)
        any proposals broadcast before it switched epochs; without
        retransmission those zxids could never reach quorum and every later
        transaction would stall behind them.
        """
        if not self.is_leader or self.tracker is None:
            return
        for txn in self.tracker.pending_transactions():
            proposal_payload = self._txn_payload(txn)
            proposal_payload["epoch"] = self.epoch
            self.send(dst, "zab_proposal", proposal_payload,
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.path_size_bytes
                                  + self.config.element_size_bytes))

    def on_zk_sync(self, message: Message) -> None:
        for txn_payload in message.payload["txns"]:
            txn = self._txn_from_payload(txn_payload)
            if txn.zxid <= self.commit_log.last_applied:
                continue
            self._apply_synced(txn)

    def _send_snapshot(self, dst: str) -> None:
        """Full state transfer (ZooKeeper's SNAP sync): tree + applied log."""
        self.snapshots_served += 1
        tree_snapshot = self.tree.snapshot()
        log_payload = [self._txn_payload(txn) for txn in self.applied_log]
        self.send(dst, "zk_snapshot",
                  {"epoch": self.epoch,
                   "leader": self.leader_name,
                   "last_applied": self.commit_log.last_applied,
                   "tree": tree_snapshot,
                   "log": log_payload},
                  size_bytes=(MESSAGE_HEADER_BYTES
                              + estimate_payload_size(tree_snapshot)
                              + len(log_payload) * self.config.path_size_bytes))

    def on_zk_snapshot(self, message: Message) -> None:
        payload = message.payload
        if payload["epoch"] < self.epoch:
            return  # stale snapshot from a deposed leadership
        self.snapshots_received += 1
        # Adopt the snapshot's leadership too: without this, a stale-epoch
        # receiver would install the state but keep epoch-guarding away all
        # current Zab traffic until a zk_leader_info happened by.
        if payload["epoch"] > self.epoch and payload.get("leader") \
                and payload["leader"] != self.name:
            self.epoch = payload["epoch"]
            self.become_follower(payload["leader"], self.ensemble)
            self._announced_epoch = self.epoch
            self._last_pong_ms = self.scheduler.now()
        self.tree.restore(payload["tree"])
        self.commit_log = CommitLog()
        self.commit_log.last_applied = payload["last_applied"]
        self.applied_log = [self._txn_from_payload(p) for p in payload["log"]]
        # Any origin bookkeeping beyond the snapshot point refers to a dead
        # leadership; clients recover via their own timeout/retry.
        self._drop_stale_origins()

    def _apply_synced(self, txn: Transaction) -> None:
        result = self._apply(txn)
        self.transactions_applied += 1
        self.applied_log.append(txn)
        self.commit_log.last_applied = txn.zxid
        self._last_progress_ms = self.scheduler.now()
        origin = self._origin_requests.pop(txn.zxid, None)
        if origin is not None:
            self._respond(origin["client"], origin["req_id"],
                          ok=result.get("ok", True),
                          result=result.get("result"),
                          error=result.get("error"))

    def recover(self) -> None:
        super().recover()
        if not self._failure_detection:
            return
        # Rejoin: a deposed leader (or stale follower) finds out who leads
        # now and follows; peers answer with zk_leader_info.
        self._last_pong_ms = self.scheduler.now()
        for peer in self._followers():
            self.send(peer, "zk_whois_leader", {"server": self.name},
                      size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)
        # If leadership never moved, zk_leader_info brings nothing new, so a
        # recovering follower also asks its (still-current) leader directly
        # for the commits it slept through.
        if not self.is_leader and self.leader_name is not None:
            self.send(self.leader_name, "zk_sync_req",
                      {"server": self.name,
                       "last_applied": self.commit_log.last_applied,
                       "epoch": self.epoch},
                      size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)

    # -- client requests -------------------------------------------------------
    def on_zk_request(self, message: Message) -> None:
        payload = message.payload
        self.process(self._handle_request, message.src, payload,
                     service_time_ms=self.config.request_service_ms)

    def _handle_request(self, client: str, payload: Dict[str, Any]) -> None:
        op = payload["op"]
        if op in READ_OPS:
            self._serve_read(client, payload)
            return
        if op not in WRITE_OPS:
            self._respond(client, payload["req_id"], ok=False,
                          error=f"unknown operation {op!r}")
            return
        if payload.get("icg"):
            self.process(self._send_preliminary, client, payload,
                         service_time_ms=self.config.simulation_service_ms)
        self._submit_write(client, payload)

    # -- local reads --------------------------------------------------------------
    def _serve_read(self, client: str, payload: Dict[str, Any]) -> None:
        self.reads_served += 1
        op = payload["op"]
        path = payload["path"]
        try:
            if op == "get":
                result = self.tree.get(path)
                size = (MESSAGE_HEADER_BYTES + self.config.ack_bytes
                        + self.config.element_size_bytes)
            elif op == "exists":
                result = self.tree.exists(path)
                size = MESSAGE_HEADER_BYTES + self.config.ack_bytes
            else:  # get_children
                result = self.tree.get_children(path)
                size = (MESSAGE_HEADER_BYTES + self.config.ack_bytes
                        + len(result) * self.config.child_name_bytes)
        except NoNodeError as exc:
            self._respond(client, payload["req_id"], ok=False,
                          error=f"NoNode: {exc}")
            return
        self._respond(client, payload["req_id"], ok=True, result=result,
                      size_bytes=size)

    # -- CZK preliminary (local simulation) -------------------------------------------
    def _send_preliminary(self, client: str, payload: Dict[str, Any]) -> None:
        result = self._simulate(payload)
        self.preliminaries_sent += 1
        self.send(client, "zk_preliminary",
                  {"req_id": payload["req_id"], "ok": True, "result": result},
                  size_bytes=(MESSAGE_HEADER_BYTES + self.config.ack_bytes
                              + self.config.element_size_bytes))

    def _simulate(self, payload: Dict[str, Any]) -> Any:
        """Apply the operation to the local state *tentatively*."""
        op = payload["op"]
        path = payload["path"]
        if op == "enqueue" or (op == "create" and payload.get("sequential")):
            queue_path = path if op == "enqueue" else path.rsplit("/", 1)[0]
            try:
                existing = self.tree.child_count(queue_path)
            except NoNodeError:
                existing = 0
            offset = self._simulated_created.get(queue_path, 0)
            self._simulated_created[queue_path] = offset + 1
            position = existing + offset
            return {"name": f"item-{position:010d}", "position": position}
        if op == "dequeue":
            try:
                children = self.tree.get_children(path)
            except NoNodeError:
                children = []
            available = [c for c in children
                         if f"{path}/{c}" not in self._simulated_removed]
            if not available:
                return {"item": None, "name": None, "remaining": 0}
            head = available[0]
            self._simulated_removed.add(f"{path}/{head}")
            return {"item": self.tree.get(f"{path}/{head}"),
                    "name": head,
                    "remaining": len(available) - 1}
        if op == "delete":
            self._simulated_removed.add(path)
            return {"deleted": path}
        if op in ("create", "set"):
            return {"path": path}
        return None

    # -- write path ----------------------------------------------------------------------
    def _submit_write(self, client: str, payload: Dict[str, Any]) -> None:
        request = {"client": client, "payload": payload}
        if self.is_leader:
            self._propose(origin_server=self.name, request=request)
        else:
            forward_id = self._next_forward_id
            self._next_forward_id += 1
            forwarded_payload = dict(payload)
            forwarded_payload["req_id"] = forward_id
            self.send(self.leader_name, "zk_forward",
                      {"origin": self.name, "payload": forwarded_payload},
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.path_size_bytes
                                  + self.config.element_size_bytes))
            self._forwarded[forward_id] = request

    def on_zk_forward(self, message: Message) -> None:
        payload = message.payload
        self.process(self._propose, payload["origin"],
                     {"client": None, "payload": payload["payload"]},
                     service_time_ms=self.config.proposal_service_ms)

    def _propose(self, origin_server: str, request: Dict[str, Any]) -> None:
        if not self.is_leader or self.tracker is None:
            # This server was deposed between receiving the request and
            # processing it: push the request to the current leader instead.
            if self.leader_name is None or self.leader_name == self.name:
                return
            if request["client"] is not None:
                self._submit_write(request["client"], request["payload"])
            else:
                self.send(self.leader_name, "zk_forward",
                          {"origin": origin_server,
                           "payload": request["payload"]},
                          size_bytes=(MESSAGE_HEADER_BYTES
                                      + self.config.path_size_bytes
                                      + self.config.element_size_bytes))
            return
        payload = request["payload"]
        # Leader-origin requests get an origin id from the same per-server
        # counter as forwarded requests, so ``origin_request`` lives in one
        # namespace per origin server (client req_ids would collide with
        # forward ids when orphaned proposals are re-proposed).
        origin_request = payload["req_id"]
        if origin_server == self.name and request["client"] is not None:
            origin_request = self._next_forward_id
            self._next_forward_id += 1
        txn = Transaction(
            zxid=self.tracker.next_zxid(),
            op="create" if payload["op"] == "enqueue" else payload["op"],
            path=(payload["path"] + "/item-" if payload["op"] == "enqueue"
                  else payload["path"]),
            data=payload.get("data"),
            sequential=(payload["op"] == "enqueue"
                        or bool(payload.get("sequential"))),
            origin_server=origin_server,
            origin_request=origin_request,
        )
        self.tracker.track(txn)
        self.commit_log.learn(txn)
        if origin_server == self.name and request["client"] is not None:
            self._origin_requests[txn.zxid] = {
                "client": request["client"], "req_id": payload["req_id"],
                "op": payload["op"], "origin_request": origin_request,
            }
        proposal_payload = self._txn_payload(txn)
        proposal_payload["epoch"] = self.epoch
        for follower in self._followers():
            self.send(follower, "zab_proposal", proposal_payload,
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.path_size_bytes
                                  + self.config.element_size_bytes))
        # The leader acknowledges its own proposal.
        if self.tracker.record_ack(txn.zxid, self.name):
            self._commit(txn.zxid)

    @staticmethod
    def _txn_payload(txn: Transaction) -> Dict[str, Any]:
        return {"zxid": txn.zxid, "op": txn.op, "path": txn.path,
                "data": txn.data, "sequential": txn.sequential,
                "origin_server": txn.origin_server,
                "origin_request": txn.origin_request}

    @staticmethod
    def _txn_from_payload(payload: Dict[str, Any]) -> Transaction:
        return Transaction(zxid=payload["zxid"], op=payload["op"],
                           path=payload["path"], data=payload["data"],
                           sequential=payload["sequential"],
                           origin_server=payload["origin_server"],
                           origin_request=payload["origin_request"])

    def on_zab_proposal(self, message: Message) -> None:
        payload = message.payload
        epoch = payload.get("epoch", self.epoch)
        if epoch != self.epoch:
            if epoch < self.epoch:
                # A deposed-but-alive leader (e.g. it was partitioned away
                # while an election happened) is still proposing: tell it
                # who leads now so it demotes itself and re-syncs.
                self._send_leader_info(message.src)
            return
        self.process(self._ack_proposal, payload,
                     service_time_ms=self.config.apply_service_ms)

    def _ack_proposal(self, payload: Dict[str, Any]) -> None:
        txn = self._txn_from_payload(payload)
        self.commit_log.learn(txn)
        # A follower that originated this request must answer its client once
        # the commit applies locally.
        if txn.origin_server == self.name:
            forwarded = self._forwarded.pop(txn.origin_request, None)
            if forwarded is not None:
                self._origin_requests[txn.zxid] = {
                    "client": forwarded["client"],
                    "req_id": forwarded["payload"]["req_id"],
                    "op": forwarded["payload"]["op"],
                    "origin_request": txn.origin_request,
                }
            else:
                # The original proposal died with a deposed leader and this
                # is the new leader's re-proposal: re-attach the client.
                orphan = self._orphan_origins.pop(txn.origin_request, None)
                if orphan is not None:
                    self._origin_requests[txn.zxid] = orphan
        self.send(self.leader_name, "zab_ack",
                  {"zxid": txn.zxid, "server": self.name,
                   "epoch": payload.get("epoch", self.epoch)},
                  size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)

    def on_zab_ack(self, message: Message) -> None:
        payload = message.payload
        if not self.is_leader or self.tracker is None:
            return  # late ack for a proposal of a previous leadership
        if payload.get("epoch", self.epoch) != self.epoch:
            return
        if self.tracker.record_ack(payload["zxid"], payload["server"]):
            self._commit(payload["zxid"])

    def _commit(self, zxid: int) -> None:
        if not self.is_leader or self.tracker is None:
            return
        for follower in self._followers():
            self.send(follower, "zab_commit",
                      {"zxid": zxid, "epoch": self.epoch},
                      size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)
        self._learn_commit(zxid)

    def on_zab_commit(self, message: Message) -> None:
        if message.payload.get("epoch", self.epoch) != self.epoch:
            return
        self.process(self._learn_commit, message.payload["zxid"],
                     service_time_ms=self.config.apply_service_ms)

    def _learn_commit(self, zxid: int) -> None:
        self.commit_log.mark_committed(zxid)
        for txn in self.commit_log.ready_transactions():
            result = self._apply(txn)
            self.transactions_applied += 1
            self.applied_log.append(txn)
            self._last_progress_ms = self.scheduler.now()
            origin = self._origin_requests.pop(txn.zxid, None)
            if origin is not None:
                self._respond(origin["client"], origin["req_id"],
                              ok=result.get("ok", True),
                              result=result.get("result"),
                              error=result.get("error"))

    # -- applying transactions -------------------------------------------------------------
    def _apply(self, txn: Transaction) -> Dict[str, Any]:
        try:
            if txn.op == "create":
                created = self.tree.create(txn.path, txn.data,
                                           sequential=txn.sequential)
                parent_path = txn.path.rsplit("/", 1)[0]
                pending = self._simulated_created.get(parent_path, 0)
                if pending > 0:
                    self._simulated_created[parent_path] = pending - 1
                parent = txn.path.rsplit("/", 1)[0] or "/"
                position = self.tree.child_count(parent) - 1
                return {"ok": True,
                        "result": {"path": created,
                                   "name": created.rsplit("/", 1)[1],
                                   "position": position}}
            if txn.op == "delete":
                self.tree.delete(txn.path)
                self._simulated_removed.discard(txn.path)
                return {"ok": True, "result": {"deleted": txn.path}}
            if txn.op == "set":
                self.tree.set(txn.path, txn.data)
                return {"ok": True, "result": {"path": txn.path}}
            if txn.op == "dequeue":
                children = self.tree.get_children(txn.path)
                if not children:
                    return {"ok": True,
                            "result": {"item": None, "name": None,
                                       "remaining": 0}}
                head = children[0]
                data = self.tree.get(f"{txn.path}/{head}")
                self.tree.delete(f"{txn.path}/{head}")
                self._simulated_removed.discard(f"{txn.path}/{head}")
                return {"ok": True,
                        "result": {"item": data, "name": head,
                                   "remaining": len(children) - 1}}
            return {"ok": False, "error": f"unknown txn op {txn.op!r}"}
        except (NoNodeError, NodeExistsError, ValueError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # -- responses ------------------------------------------------------------------------------
    def _respond(self, client: str, req_id: int, ok: bool,
                 result: Any = None, error: Optional[str] = None,
                 size_bytes: Optional[int] = None) -> None:
        if size_bytes is None:
            size_bytes = (MESSAGE_HEADER_BYTES + self.config.ack_bytes
                          + self.config.element_size_bytes)
        self.send(client, "zk_response",
                  {"req_id": req_id, "ok": ok, "result": result, "error": error},
                  size_bytes=size_bytes)
