"""Figure 16 (beyond the paper): distributed transactions under faults.

The Correctable abstraction promises more than fast reads: any operation
with a cheap-but-revocable early answer can surface it as a preliminary
view.  This harness applies that to multi-key **2PC transactions** — the
speculative ``PREPARED`` view fires when every participant voted yes, and
the final view carries the actual commit/abort outcome (see
:mod:`repro.txn`).  The grid crosses fault scenario × transaction size:

* **scenario** — ``baseline`` (no faults), ``coordinator-crash-mid-commit``
  (the active 2PC coordinator dies with decisions in flight; a standby must
  detect the silence, fence the participants with a higher epoch, read
  their logs, and drive every in-flight transaction to one outcome),
  ``participant-crash-after-prepare`` (a participant goes silent holding
  prepared transactions; the coordinator must block rather than presume
  abort, and redeliver the decision after restart), and ``wan-partition``
  (the coordinator loses a region of participants mid-protocol);
* **transaction size** — keys per transaction; more keys means more
  participants per transaction, more lock conflicts, and a wider blast
  radius per fault.

Reported per cell: commit throughput and latency, abort rate,
**prepared-view accuracy** (how often the speculative PREPARED view's
"will commit" turned out true), **time-to-recover** for coordinator
takeovers, and the retry/redirect/breaker traffic the fault provoked.

Every cell also runs the **atomicity audit**
(:meth:`repro.txn.TxnFabric.assert_atomic`): no transaction may be
committed on one participant and aborted on another, every client-acked
commit must be durably applied on every owner, aborted transactions must
touch no replica table, and a healed, drained run may leave no locks or
in-doubt transactions behind.  A violation fails the cell — the figure is
as much a correctness harness as a performance one.

Shapes to expect: the baseline row commits everything it doesn't abort for
lock conflicts, with prepared-view accuracy 100 %; coordinator-crash rows
show one takeover, a time-to-recover around the detection timeout plus a
probe round trip, a latency tail from transactions that waited out the
failover, and (rarely) a prepared→abort mismatch when the crash lands
inside the decision-log window; participant-crash rows trade aborts for
blocked time (the protocol refuses to guess); wan-partition rows abort the
transactions that straddle the cut until it heals.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.core.cluster_spec import ClusterSpec
from repro.faults import FaultInjector, get_scenario
from repro.metrics.summary import format_table
from repro.sim.rand import derive_rng
from repro.txn import TxnConfig, build_txn_fabric, txn_aliases

#: Default fault grid ("baseline" = no faults, for reference).
DEFAULT_SCENARIOS = ("baseline", "coordinator-crash-mid-commit",
                     "participant-crash-after-prepare", "wan-partition")
#: Keys per transaction (also the lock-conflict dial: more keys per
#: transaction over the same hot key range means more conflicts).
DEFAULT_TXN_SIZES = (1, 3)


def _p99(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = max(0, int(len(ordered) * 0.99 + 0.999999) - 1)
    return ordered[min(index, len(ordered) - 1)]


def run_fig16_point(point: SweepPoint) -> Dict:
    """Run one (scenario × txn size) cell of the Figure 16 grid."""
    record, _env = run_fig16_cell(**point.kwargs)
    return record


def run_fig16_cell(**kwargs: Any):
    """Run one cell and return ``(record, env)``.

    The environment rides along for callers that need more than the figure
    record — the perf harness counts its executed events.
    """
    scenario_name = kwargs["scenario"]
    keys_per_txn = kwargs["keys_per_txn"]
    seed = kwargs["seed"]
    label = f"fig16-{scenario_name}-k{keys_per_txn}"

    config = TxnConfig(decision_log_ms=kwargs["decision_log_ms"])
    built = ClusterSpec(nodes=kwargs["nodes"], seed=seed,
                        record_count=kwargs["record_count"],
                        client_regions=()).build()
    fabric = build_txn_fabric(built, config=config,
                              coordinator_count=kwargs["coordinators"])
    manager = fabric.manager

    description = "no faults (reference)"
    injector = None
    if scenario_name != "baseline":
        scenario = get_scenario(scenario_name,
                                at_ms=kwargs["fault_at_ms"],
                                duration_ms=kwargs["fault_duration_ms"])
        description = scenario.description
        injector = FaultInjector(built.env, schedule=scenario,
                                 aliases=txn_aliases(fabric))
        injector.arm(offset_ms=0.0)

    # Open-loop transaction arrivals at a fixed rate; each transaction
    # writes `keys_per_txn` distinct keys drawn from the dataset's hot
    # range.  Key choice and values come from a label-derived stream, so
    # the schedule is a pure function of the cell's kwargs.
    rng = derive_rng(seed, f"{label}:txns")
    interval_ms = 1000.0 / kwargs["rate_txn_s"]
    submissions = int(kwargs["duration_ms"] / interval_ms)
    keys = built.dataset.keys()

    def _submit() -> None:
        chosen = sorted(rng.sample(range(len(keys)), keys_per_txn))
        writes = {keys[i]: f"txn-val-{rng.randrange(1 << 30)}"
                  for i in chosen}
        manager.execute(writes)

    for i in range(submissions):
        built.env.scheduler.schedule_at(i * interval_ms, _submit)

    # Run past the fault window, the heal, and every transaction deadline,
    # so the audit inspects a settled fabric (decision redelivery included).
    horizon = (kwargs["duration_ms"]
               + kwargs["fault_at_ms"] + kwargs["fault_duration_ms"]
               + config.txn_deadline_ms + 30_000.0)
    built.env.run(until=horizon)

    stats = manager.stats
    committed = len(manager.acked_commits)
    aborted = len(manager.acked_aborts)
    resolved = committed + aborted
    commit_latencies = [info["latency_ms"]
                        for info in manager.acked_commits.values()]
    accuracy = stats.accuracy()
    recover_ms = fabric.time_to_recover_ms()

    # The correctness half of the figure: any atomicity violation (or
    # undrained lock / in-doubt transaction) fails the cell outright.
    try:
        fabric.assert_atomic()
    except AssertionError as exc:
        raise RuntimeError(f"{label}: {exc}") from None

    record = {
        "scenario": scenario_name,
        "keys_per_txn": keys_per_txn,
        "description": description,
        "submitted": manager.txns_submitted,
        "committed": committed,
        "aborted": aborted,
        "unresolved": manager.failed_requests,
        "abort_rate_pct": 100.0 * aborted / resolved if resolved else 0.0,
        "commit_mean_ms": (sum(commit_latencies) / len(commit_latencies)
                           if commit_latencies else 0.0),
        "commit_p99_ms": _p99(commit_latencies),
        "prepared_views": stats.prepared_views,
        "prepared_matched": stats.matched,
        "prepared_mismatched": stats.mismatched,
        "prepared_unresolved": stats.unresolved,
        "prepared_accuracy_pct": (100.0 * accuracy
                                  if accuracy is not None else 0.0),
        "takeovers": fabric.total_takeovers(),
        "time_to_recover_ms": recover_ms if recover_ms is not None else 0.0,
        "client_retries": manager.retries,
        "redirects": manager.redirects_followed,
        "breaker_opens": fabric.balancer.times_opened(),
        "lock_conflicts": sum(p.lock_conflicts
                              for p in fabric.participants.values()),
        "stale_epoch_rejections": sum(
            p.stale_epoch_rejections for p in fabric.participants.values()),
        "faults_applied": len(injector.log) if injector else 0,
        "final_epoch": max(c.epoch for c in fabric.coordinators),
    }
    return record, built.env


def build_fig16_points(scenarios: Sequence[str] = DEFAULT_SCENARIOS,
                       txn_sizes: Iterable[int] = DEFAULT_TXN_SIZES,
                       nodes: int = 6,
                       coordinators: int = 2,
                       rate_txn_s: float = 40.0,
                       duration_ms: float = 10_000.0,
                       fault_at_ms: float = 4_000.0,
                       fault_duration_ms: float = 4_000.0,
                       decision_log_ms: float = 2.0,
                       record_count: int = 200,
                       seed: int = 42) -> List[SweepPoint]:
    """The (fault scenario × transaction size) grid."""
    base = dict(nodes=nodes, coordinators=coordinators,
                rate_txn_s=rate_txn_s, duration_ms=duration_ms,
                fault_at_ms=fault_at_ms, fault_duration_ms=fault_duration_ms,
                decision_log_ms=decision_log_ms, record_count=record_count,
                seed=seed)
    cells: List = []
    for scenario_name in scenarios:
        for size in txn_sizes:
            cells.append((
                {"scenario": scenario_name, "keys_per_txn": size},
                dict(base, scenario=scenario_name, keys_per_txn=size)))
    return make_points("fig16", cells)


def run_fig16(scenarios: Sequence[str] = DEFAULT_SCENARIOS,
              txn_sizes: Iterable[int] = DEFAULT_TXN_SIZES,
              nodes: int = 6, coordinators: int = 2,
              rate_txn_s: float = 40.0, duration_ms: float = 10_000.0,
              fault_at_ms: float = 4_000.0, fault_duration_ms: float = 4_000.0,
              decision_log_ms: float = 2.0, record_count: int = 200,
              seed: int = 42, jobs: JobsSpec = 1) -> List[Dict]:
    """Regenerate the Figure 16 transaction series.

    Every cell uses the same topology, arrival schedule, and seed — only
    the fault script and transaction size differ — so rows are directly
    comparable, and the sweep engine's grid-order merge keeps the output
    byte-identical at any ``jobs`` count.
    """
    points = build_fig16_points(
        scenarios=scenarios, txn_sizes=txn_sizes, nodes=nodes,
        coordinators=coordinators, rate_txn_s=rate_txn_s,
        duration_ms=duration_ms, fault_at_ms=fault_at_ms,
        fault_duration_ms=fault_duration_ms, decision_log_ms=decision_log_ms,
        record_count=record_count, seed=seed)
    return run_sweep(points, run_fig16_point, jobs=jobs).records()


def format_fig16(records: List[Dict]) -> str:
    """Render the figure: outcome/latency table plus a robustness summary."""
    outcome_columns = ["scenario", "keys_per_txn", "submitted", "committed",
                       "aborted", "unresolved", "abort_rate_pct",
                       "commit_mean_ms", "commit_p99_ms",
                       "prepared_views", "prepared_mismatched",
                       "prepared_accuracy_pct"]
    outcome_headers = ["scenario", "keys/txn", "txns", "committed", "aborted",
                       "unresolved", "abort (%)", "commit mean (ms)",
                       "commit p99 (ms)", "prepared views", "mismatched",
                       "prepared accuracy (%)"]
    summary_columns = ["scenario", "keys_per_txn", "takeovers",
                       "time_to_recover_ms", "final_epoch", "client_retries",
                       "redirects", "breaker_opens", "lock_conflicts",
                       "stale_epoch_rejections", "faults_applied"]
    summary_headers = ["scenario", "keys/txn", "takeovers", "recover (ms)",
                       "epoch", "client retries", "redirects", "breaker opens",
                       "lock conflicts", "stale epoch", "faults"]
    lines = [
        format_table(
            outcome_headers,
            [[record[c] for c in outcome_columns] for record in records],
            title=("Figure 16 — 2PC transactions with speculative PREPARED "
                   "views under injected faults (open-loop arrivals, "
                   "scenario x keys per txn; every cell passed the "
                   "atomicity audit)")),
        "",
        format_table(
            summary_headers,
            [[record[c] for c in summary_columns] for record in records],
            title=("Figure 16 (cont.) — failover mechanics per cell; "
                   "takeovers move the epoch forward and 'recover (ms)' is "
                   "detection + participant-log reconstruction")),
    ]
    for record in records:
        if record["scenario"] != "baseline" and record["keys_per_txn"] == \
                min(r["keys_per_txn"] for r in records):
            lines.append(f"  {record['scenario']}: {record['description']}")
    return "\n".join(lines)
