"""Promises: single-value asynchronous placeholders.

Correctables descend from Promises (Liskov & Shrira, PLDI '88): a Promise is
either *blocked* or *ready* (or *failed*); callbacks registered with
:meth:`Promise.on_ready` fire when the value arrives, immediately if it is
already there.  :meth:`Promise.then` chains computations, which is enough to
express the monadic style modern Promise libraries provide.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, List, Optional

from repro.core.errors import InvalidStateError


class PromiseState(Enum):
    """Lifecycle of a :class:`Promise`."""

    BLOCKED = "blocked"
    READY = "ready"
    FAILED = "failed"


class Promise:
    """A placeholder for a single value that becomes available later."""

    def __init__(self) -> None:
        self._state = PromiseState.BLOCKED
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._ready_callbacks: List[Callable[[Any], None]] = []
        self._error_callbacks: List[Callable[[BaseException], None]] = []

    # -- state ------------------------------------------------------------
    @property
    def state(self) -> PromiseState:
        return self._state

    def is_ready(self) -> bool:
        return self._state is PromiseState.READY

    def is_failed(self) -> bool:
        return self._state is PromiseState.FAILED

    def is_done(self) -> bool:
        return self._state is not PromiseState.BLOCKED

    @property
    def value(self) -> Any:
        """The resolved value.

        Raises:
            InvalidStateError: if the promise is still blocked.
            The original exception: if the promise failed.
        """
        if self._state is PromiseState.BLOCKED:
            raise InvalidStateError("promise is still blocked")
        if self._state is PromiseState.FAILED:
            assert self._error is not None
            raise self._error
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    # -- resolution --------------------------------------------------------
    def resolve(self, value: Any) -> None:
        """Fulfil the promise with ``value`` and run ready callbacks."""
        if self._state is not PromiseState.BLOCKED:
            raise InvalidStateError(
                f"promise already {self._state.value}; cannot resolve")
        self._state = PromiseState.READY
        self._value = value
        callbacks, self._ready_callbacks = self._ready_callbacks, []
        self._error_callbacks = []
        for callback in callbacks:
            callback(value)

    def reject(self, error: BaseException) -> None:
        """Fail the promise with ``error`` and run error callbacks."""
        if self._state is not PromiseState.BLOCKED:
            raise InvalidStateError(
                f"promise already {self._state.value}; cannot reject")
        self._state = PromiseState.FAILED
        self._error = error
        callbacks, self._error_callbacks = self._error_callbacks, []
        self._ready_callbacks = []
        for callback in callbacks:
            callback(error)

    # -- observation -------------------------------------------------------
    def on_ready(self, callback: Callable[[Any], None]) -> "Promise":
        """Run ``callback(value)`` when (or if already) ready."""
        if self._state is PromiseState.READY:
            callback(self._value)
        elif self._state is PromiseState.BLOCKED:
            self._ready_callbacks.append(callback)
        return self

    def on_error(self, callback: Callable[[BaseException], None]) -> "Promise":
        """Run ``callback(error)`` when (or if already) failed."""
        if self._state is PromiseState.FAILED:
            assert self._error is not None
            callback(self._error)
        elif self._state is PromiseState.BLOCKED:
            self._error_callbacks.append(callback)
        return self

    def then(self, fn: Callable[[Any], Any]) -> "Promise":
        """Chain a computation; returns a new Promise for ``fn(value)``.

        If ``fn`` returns a Promise, the result is flattened (monadic bind).
        Exceptions raised by ``fn`` reject the returned Promise.
        """
        chained = Promise()

        def _run(value: Any) -> None:
            try:
                result = fn(value)
            except BaseException as exc:  # noqa: BLE001 - propagate to promise
                chained.reject(exc)
                return
            if isinstance(result, Promise):
                result.on_ready(chained.resolve)
                result.on_error(chained.reject)
            else:
                chained.resolve(result)

        self.on_ready(_run)
        self.on_error(chained.reject)
        return chained

    # -- combinators -------------------------------------------------------
    @staticmethod
    def resolved(value: Any) -> "Promise":
        """A promise that is already ready with ``value``."""
        promise = Promise()
        promise.resolve(value)
        return promise

    @staticmethod
    def failed(error: BaseException) -> "Promise":
        """A promise that is already failed with ``error``."""
        promise = Promise()
        promise.reject(error)
        return promise

    @staticmethod
    def all(promises: List["Promise"]) -> "Promise":
        """A promise for the list of all values; fails on the first failure."""
        combined = Promise()
        if not promises:
            combined.resolve([])
            return combined
        results: List[Any] = [None] * len(promises)
        remaining = [len(promises)]

        def _make_handler(index: int) -> Callable[[Any], None]:
            def _handler(value: Any) -> None:
                results[index] = value
                remaining[0] -= 1
                if remaining[0] == 0 and not combined.is_done():
                    combined.resolve(list(results))
            return _handler

        def _fail(error: BaseException) -> None:
            if not combined.is_done():
                combined.reject(error)

        for index, promise in enumerate(promises):
            promise.on_ready(_make_handler(index))
            promise.on_error(_fail)
        return combined
