"""Coordinator-side sessions for quorum reads and writes.

In Cassandra every replica can act as a coordinator for client requests.
These session objects track one in-flight client operation at its
coordinator: which replicas still owe a response, whether a preliminary view
was already flushed (Correctable Cassandra), and what to send back to the
client when the quorum completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cassandra_sim.versions import VersionedValue, resolve


@dataclass(slots=True)
class ReadSession:
    """One client read being coordinated."""

    session_id: int
    req_id: int
    client: str
    key: str
    r: int
    icg: bool
    started_at: float
    #: Replica name -> version it reported (None when the replica had no row).
    responses: Dict[str, Optional[VersionedValue]] = field(default_factory=dict)
    #: Value sent in the preliminary response (None until flushed).
    preliminary: Optional[VersionedValue] = None
    preliminary_sent: bool = False
    final_sent: bool = False
    #: Replicas the coordinator asked for data (including itself when local).
    contacted: List[str] = field(default_factory=list)
    #: Timeout handling: retries performed so far and the pending timeout
    #: event (a :class:`repro.sim.scheduler.Event`, cancellable).
    attempts: int = 0
    timeout_event: Optional[Any] = None

    def record(self, replica: str, version: Optional[VersionedValue]) -> None:
        self.responses[replica] = version

    def have_quorum(self) -> bool:
        return len(self.responses) >= self.r

    def resolved(self) -> Optional[VersionedValue]:
        """Newest version among the responses received so far (LWW)."""
        return resolve(self.responses.values())

    def stale_replicas(self) -> List[str]:
        """Replicas whose reported version is older than the resolved one."""
        newest = self.resolved()
        if newest is None:
            return []
        stale = []
        for replica, version in self.responses.items():
            if version is None or version.timestamp < newest.timestamp:
                stale.append(replica)
        return stale


@dataclass(slots=True)
class WriteSession:
    """One client write being coordinated."""

    session_id: int
    req_id: int
    client: str
    key: str
    w: int
    version: VersionedValue
    started_at: float
    acks: List[str] = field(default_factory=list)
    acked_client: bool = False
    attempts: int = 0
    timeout_event: Optional[Any] = None

    def record_ack(self, replica: str) -> None:
        if replica not in self.acks:
            self.acks.append(replica)

    def have_quorum(self) -> bool:
        return len(self.acks) >= self.w
