"""Declarative cluster construction: one spec for every experiment stack.

Historically each harness assembled its Cassandra deployment by hand —
``bench/common.build_cassandra_scenario`` for the closed-loop figures,
``fig14_open_loop.build_session_stack`` for the open-loop ones, ad-hoc
assembly in examples and tests, and ``CassandraCluster``'s implicit
one-node-per-region name derivation.  :class:`ClusterSpec` replaces those
surfaces with a single frozen description of a deployment — node count,
region placement, replication factor, virtual-node count, dataset shape,
clients, and the workload seed — and one :meth:`ClusterSpec.build` that
turns it into a wired :class:`BuiltCluster`.

The legacy entry points remain as thin shims over a spec, so every
committed figure table stays byte-identical: a default spec builds exactly
the historical 3-node FRK/IRL/VRG deployment, with the same node names
(``cassandra-{i}-{region}``), the same construction order (environment →
config → cluster → dataset → preload → clients), and the same RNG streams.

Determinism contract: everything a spec builds is a pure function of its
fields.  In particular the token ring layout depends only on the node names
and ``vnodes_per_node`` (see :mod:`repro.cassandra_sim.partitioner`), and
all randomness is derived from ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.cassandra_sim.client import CassandraClient
from repro.cassandra_sim.cluster import CassandraCluster
from repro.cassandra_sim.config import CassandraConfig
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region, round_robin_regions
from repro.workloads.records import Dataset

#: Client region -> contact (coordinator) region used by the load
#: experiments: every client connects to a *remote* replica, as in the
#: paper.  (Re-exported by :mod:`repro.bench.common` for compatibility.)
REMOTE_CONTACTS: Dict[str, str] = {
    Region.IRL: Region.FRK,
    Region.FRK: Region.VRG,
    Region.VRG: Region.IRL,
}


@dataclass
class BuiltCluster:
    """A wired-up deployment: environment, cluster, dataset, and clients.

    This is the object every harness drives (``bench.common`` re-exports it
    under its historical name ``CassandraScenario``).
    """

    env: SimEnvironment
    cluster: CassandraCluster
    dataset: Dataset
    clients: Dict[str, CassandraClient] = field(default_factory=dict)

    def client_in(self, region: str) -> CassandraClient:
        return self.clients[region]


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of a simulated Cassandra deployment.

    Defaults reproduce the paper's setup: three nodes, one per region in
    ``(FRK, IRL, VRG)``, replication factor 3, 8 vnodes per node, one
    client in Ireland contacting Frankfurt.
    """

    #: Number of storage nodes in the ring.
    nodes: int = 3
    #: Region cycle for node placement.  ``None`` uses the paper's
    #: ``(FRK, IRL, VRG)``.  With fewer entries than ``nodes`` the cycle
    #: repeats round-robin, so ``nodes=6`` puts two nodes in each region.
    regions: Optional[Tuple[str, ...]] = None
    #: Replicas per key.  ``None`` keeps the config's value (default 3).
    replication_factor: Optional[int] = None
    #: Virtual nodes per storage node.  ``None`` keeps the config's value
    #: (default 8).  The token layout is a pure function of node names and
    #: this count.
    vnodes_per_node: Optional[int] = None
    #: Base cluster configuration; ``None`` builds a default
    #: :class:`CassandraConfig` with ``value_size_bytes``.
    config: Optional[CassandraConfig] = None
    #: Workload seed: drives the environment (topology jitter) and, via the
    #: harnesses' label-derived streams, every generator built on top.
    seed: int = 0
    #: Dataset shape preloaded onto the ring.
    record_count: int = 1000
    value_size_bytes: int = 100
    key_prefix: str = "user"
    #: One client per region listed here (named ``ycsb-client-{region}``).
    client_regions: Tuple[str, ...] = (Region.IRL,)
    #: Client region -> coordinator region; ``None`` uses
    #: :data:`REMOTE_CONTACTS` (clients contact a remote replica).
    contacts: Optional[Mapping[str, str]] = None
    #: Hand every client the remaining replicas as backup coordinators.
    client_fallbacks: bool = False
    #: Whether to install the dataset on the ring before the run.
    preload: bool = True

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError("a cluster needs at least one node")
        if self.regions is not None and not self.regions:
            raise ValueError("regions must be None or non-empty")
        if self.replication_factor is not None and self.replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        if self.replication_factor is not None \
                and self.replication_factor > self.nodes:
            raise ValueError(
                f"replication factor {self.replication_factor} exceeds "
                f"cluster size {self.nodes}")
        if self.vnodes_per_node is not None and self.vnodes_per_node <= 0:
            raise ValueError("vnodes_per_node must be positive")

    # -- derived layout -------------------------------------------------------
    def node_regions(self) -> Tuple[str, ...]:
        """Region of every node, round-robin over the region cycle."""
        return round_robin_regions(self.nodes, self.regions)

    def members(self) -> Tuple[Tuple[str, str], ...]:
        """``(name, region)`` for every node: ``cassandra-{i}-{region}``."""
        return tuple((f"cassandra-{i}-{region}", region)
                     for i, region in enumerate(self.node_regions()))

    def effective_config(self) -> CassandraConfig:
        """The cluster config with the spec's RF/vnode overrides applied.

        When no override differs, the caller's config object is returned
        unchanged (identity preserved), so legacy call sites keep the exact
        object they passed in.
        """
        config = self.config
        if config is None:
            config = CassandraConfig(value_size_bytes=self.value_size_bytes)
            if self.replication_factor is not None:
                config = replace(config,
                                 replication_factor=self.replication_factor)
            if self.vnodes_per_node is not None:
                config = replace(config, vnodes_per_node=self.vnodes_per_node)
            return config
        overrides = {}
        if self.replication_factor is not None \
                and self.replication_factor != config.replication_factor:
            overrides["replication_factor"] = self.replication_factor
        if self.vnodes_per_node is not None \
                and self.vnodes_per_node != config.vnodes_per_node:
            overrides["vnodes_per_node"] = self.vnodes_per_node
        return replace(config, **overrides) if overrides else config

    # -- construction ---------------------------------------------------------
    def build(self) -> BuiltCluster:
        """Wire up the deployment: env → config → cluster → dataset → clients.

        The construction order is load-bearing: it fixes the sequence of RNG
        derivations and node registrations, which the committed figure
        tables (and the golden event-trace hashes) depend on.
        """
        env = SimEnvironment(seed=self.seed)
        config = self.effective_config()
        cluster = CassandraCluster(env, config, nodes=self.members())
        dataset = Dataset(record_count=self.record_count,
                          value_size_bytes=self.value_size_bytes,
                          key_prefix=self.key_prefix, seed=self.seed)
        if self.preload:
            cluster.preload(dataset.initial_items())
        contacts = self.contacts if self.contacts is not None \
            else REMOTE_CONTACTS
        built = BuiltCluster(env=env, cluster=cluster, dataset=dataset)
        for region in self.client_regions:
            contact_region = contacts.get(region, Region.FRK)
            client = cluster.add_client(
                f"ycsb-client-{region}", region=region,
                contact_region=contact_region,
                fallbacks=self.client_fallbacks)
            built.clients[region] = client
        return built
