"""Shared robustness policies: retry/backoff, deadlines, circuit breakers.

Every stack in the reproduction retries: the Cassandra client fails a timed
out request over to its next contact, the ZooKeeper client re-submits to the
next server of the ensemble, and the transaction layer re-drives prepares
and commit decisions through coordinator failover.  Before this module each
loop hand-rolled its own attempt counting; now they share one policy object
so retry budgets, backoff shapes, and jitter determinism cannot drift apart.

Three pieces:

* :class:`RetryPolicy` — bounded attempts with capped exponential backoff
  and *deterministic* seeded jitter (a jitter stream is derived from a seed
  and a label, so two runs of the same experiment draw the same delays).
* :class:`Deadline` — an absolute point in simulated time carried along a
  request chain (client → coordinator → participant) so every hop can stop
  retrying work whose caller has already given up.
* :class:`CircuitBreaker` — the classic closed / open / half-open automaton
  used by the transaction load balancer to route around unhealthy nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.rand import derive_rng


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded-retry policy with capped exponential backoff.

    ``max_retries`` counts *re-sends*: a policy with ``max_retries=2`` allows
    an original attempt plus two retries.  Backoff for retry ``attempt``
    (1-based) is ``min(cap, base * multiplier**(attempt-1))`` plus jitter
    drawn uniformly from ``[0, jitter_ms]``.  With ``base_delay_ms=0`` (the
    default) the policy degenerates to the historical immediate-retry loops,
    which is what keeps the committed figure tables byte-identical.

    Jitter is deterministic: it is drawn from a stream derived via
    :func:`~repro.sim.rand.derive_rng` from ``(seed, label)``, so the policy
    is safe to use inside the simulator's determinism contract.
    """

    max_retries: int = 2
    base_delay_ms: float = 0.0
    multiplier: float = 2.0
    cap_ms: float = 1_000.0
    jitter_ms: float = 0.0
    #: Seed/label for the jitter stream; only consulted when jitter_ms > 0.
    seed: int = 0
    label: str = "retry"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_ms < 0 or self.cap_ms < 0 or self.jitter_ms < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter_ms > 0:
            # One private stream per policy instance: drawing jitter never
            # perturbs any other consumer of the experiment seed.
            object.__setattr__(self, "_jitter_rng",
                               derive_rng(self.seed, f"jitter:{self.label}"))

    def should_retry(self, attempts: int) -> bool:
        """Whether a request that already made ``attempts`` retries may retry."""
        return attempts < self.max_retries

    def backoff_ms(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based).

        Returns 0.0 for an immediate-retry policy; callers treat a zero
        delay as "re-send synchronously" so no extra scheduler event is
        created (preserving historical event traces).
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        if self.base_delay_ms <= 0 and self.jitter_ms <= 0:
            return 0.0
        delay = 0.0
        if self.base_delay_ms > 0:
            delay = min(self.cap_ms,
                        self.base_delay_ms * self.multiplier ** (attempt - 1))
        if self.jitter_ms > 0:
            delay += self._jitter_rng.uniform(0.0, self.jitter_ms)  # type: ignore[attr-defined]
        return delay

    def total_budget_ms(self, timeout_ms: float) -> float:
        """Worst-case time a request governed by this policy can occupy:
        every attempt times out and every backoff runs to its maximum."""
        attempts = self.max_retries + 1
        budget = attempts * timeout_ms
        for attempt in range(1, self.max_retries + 1):
            budget += self.backoff_upper_bound_ms(attempt)
        return budget

    def backoff_upper_bound_ms(self, attempt: int) -> float:
        """The largest delay :meth:`backoff_ms` can return for ``attempt``."""
        if self.base_delay_ms <= 0 and self.jitter_ms <= 0:
            return 0.0
        delay = 0.0
        if self.base_delay_ms > 0:
            delay = min(self.cap_ms,
                        self.base_delay_ms * self.multiplier ** (attempt - 1))
        return delay + self.jitter_ms

    @classmethod
    def immediate(cls, max_retries: int) -> "RetryPolicy":
        """The historical policy: bounded attempts, zero backoff."""
        return cls(max_retries=max_retries)


@dataclass(frozen=True)
class Deadline:
    """An absolute give-up time propagated along a request chain.

    Deadlines travel in message payloads as plain floats (absolute simulated
    milliseconds), so a participant can honour the transaction client's
    budget without knowing anything about the hops in between.  ``None``
    budgets produce an infinite deadline that never expires.
    """

    expires_at_ms: float = math.inf

    @classmethod
    def after(cls, now_ms: float, budget_ms: Optional[float]) -> "Deadline":
        """The deadline ``budget_ms`` from ``now_ms`` (infinite if None)."""
        if budget_ms is None:
            return cls()
        if budget_ms < 0:
            raise ValueError("budget must be non-negative")
        return cls(expires_at_ms=now_ms + budget_ms)

    def remaining_ms(self, now_ms: float) -> float:
        """Budget left at ``now_ms`` (never negative; inf when unbounded)."""
        return max(0.0, self.expires_at_ms - now_ms)

    def expired(self, now_ms: float) -> bool:
        return now_ms >= self.expires_at_ms

    def clamp_timeout(self, now_ms: float, timeout_ms: float) -> float:
        """``timeout_ms`` shortened so it never overruns the deadline."""
        return min(timeout_ms, self.remaining_ms(now_ms))


class BreakerState:
    """States of a :class:`CircuitBreaker` (string constants, not an Enum,
    so records and tables can carry them without conversion)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Per-node health automaton: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open the breaker; after
    ``reset_timeout_ms`` it half-opens and admits a single probe.  A probe
    success closes it (clearing the failure count), a probe failure re-opens
    it for another full timeout.
    """

    failure_threshold: int = 3
    reset_timeout_ms: float = 1_000.0
    state: str = BreakerState.CLOSED
    failures: int = 0
    opened_at_ms: float = 0.0
    #: Lifetime counters for health reporting.
    times_opened: int = 0
    probes_sent: int = 0
    probes_succeeded: int = 0
    _probe_in_flight: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if self.reset_timeout_ms < 0:
            raise ValueError("reset_timeout_ms must be non-negative")

    def allow(self, now_ms: float) -> bool:
        """Whether a request may be routed to this node right now.

        In the half-open state exactly one probe is admitted per window;
        the answer for that probe also increments :attr:`probes_sent`.
        """
        if self.state == BreakerState.CLOSED:
            return True
        if self.state == BreakerState.OPEN:
            if now_ms - self.opened_at_ms >= self.reset_timeout_ms:
                self.state = BreakerState.HALF_OPEN
                self._probe_in_flight = False
            else:
                return False
        # Half-open: admit a single probe at a time.
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        self.probes_sent += 1
        return True

    def record_success(self) -> None:
        """A routed request completed: close the breaker."""
        if self.state == BreakerState.HALF_OPEN:
            self.probes_succeeded += 1
        self.state = BreakerState.CLOSED
        self.failures = 0
        self._probe_in_flight = False

    def record_failure(self, now_ms: float) -> None:
        """A routed request failed or timed out: count toward opening."""
        if self.state == BreakerState.HALF_OPEN:
            # The probe failed: straight back to open for a fresh window.
            self.state = BreakerState.OPEN
            self.opened_at_ms = now_ms
            self.times_opened += 1
            self._probe_in_flight = False
            return
        self.failures += 1
        if self.state == BreakerState.CLOSED \
                and self.failures >= self.failure_threshold:
            self.state = BreakerState.OPEN
            self.opened_at_ms = now_ms
            self.times_opened += 1

    def is_open(self, now_ms: float) -> bool:
        """True while the breaker refuses traffic (open and not yet due)."""
        return self.state == BreakerState.OPEN \
            and now_ms - self.opened_at_ms < self.reset_timeout_ms
