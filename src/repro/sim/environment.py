"""Convenience bundle wiring scheduler, topology and network together.

Every experiment builds a :class:`SimEnvironment` from a seed, then
constructs its cluster(s) and clients on top of it.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.network import Network
from repro.sim.rand import derive_rng
from repro.sim.scheduler import Scheduler
from repro.sim.topology import Topology, ec2_topology


class SimEnvironment:
    """A complete simulation context: clock, scheduler, topology, network."""

    def __init__(self, seed: int = 0,
                 topology: Optional[Topology] = None,
                 jitter_fraction: float = 0.05) -> None:
        self.seed = seed
        self.scheduler = Scheduler()
        if topology is None:
            topology = ec2_topology(rng=derive_rng(seed, "topology"),
                                    jitter_fraction=jitter_fraction)
        self.topology = topology
        self.network = Network(self.scheduler, self.topology)

    def now(self) -> float:
        return self.scheduler.now()

    def rng(self, name: str):
        """A random stream derived from the environment seed and ``name``."""
        return derive_rng(self.seed, name)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        self.scheduler.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        self.scheduler.run_until_idle(max_events=max_events)
