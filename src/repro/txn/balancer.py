"""Health-aware routing of transaction traffic to the coordinator group.

The :class:`LoadBalancer` composes one
:class:`~repro.core.retry.CircuitBreaker` per coordinator: timeouts and
fault signals count toward opening a node's breaker (marking it degraded),
an open breaker routes traffic elsewhere, and after the reset window a
single probe request is admitted — success marks the node recovered.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.retry import BreakerState, CircuitBreaker


class LoadBalancer:
    """Round-robin over healthy nodes, with circuit-breaker health tracking."""

    def __init__(self, nodes: Sequence[str], failure_threshold: int = 2,
                 reset_timeout_ms: float = 800.0) -> None:
        if not nodes:
            raise ValueError("a load balancer needs at least one node")
        self.nodes: List[str] = list(nodes)
        self.breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(failure_threshold=failure_threshold,
                                 reset_timeout_ms=reset_timeout_ms)
            for name in self.nodes}
        self._rr = 0
        # Instrumentation.
        self.picks = 0
        self.skipped_unhealthy = 0
        self.fail_open_picks = 0

    def pick(self, now_ms: float, preferred: Optional[str] = None,
             avoid: Optional[str] = None) -> str:
        """Choose the next node to route to.

        ``preferred`` (e.g. a redirect hint naming the active coordinator)
        wins if its breaker admits traffic; otherwise round-robin over nodes
        whose breakers allow a request, skipping ``avoid`` (the node that
        just failed) when any alternative exists.  If every breaker refuses,
        fail open: routing nowhere is strictly worse than probing a node
        that might have recovered.
        """
        self.picks += 1
        if preferred is not None and preferred in self.breakers \
                and self.breakers[preferred].allow(now_ms):
            return preferred
        count = len(self.nodes)
        for offset in range(count):
            name = self.nodes[(self._rr + offset) % count]
            if name == avoid and count > 1:
                continue
            if self.breakers[name].allow(now_ms):
                self._rr = (self._rr + offset + 1) % count
                return name
            self.skipped_unhealthy += 1
        self.fail_open_picks += 1
        name = self.nodes[self._rr % count]
        self._rr = (self._rr + 1) % count
        return name

    def record_failure(self, name: str, now_ms: float) -> None:
        """A request to ``name`` timed out or errored."""
        breaker = self.breakers.get(name)
        if breaker is not None:
            breaker.record_failure(now_ms)

    def record_success(self, name: str) -> None:
        """A request to ``name`` completed; closes its breaker if open."""
        breaker = self.breakers.get(name)
        if breaker is not None:
            breaker.record_success()

    # -- health reporting ---------------------------------------------------
    def health(self) -> Dict[str, str]:
        return {name: breaker.state for name, breaker in self.breakers.items()}

    def degraded_nodes(self) -> List[str]:
        return [name for name, breaker in self.breakers.items()
                if breaker.state != BreakerState.CLOSED]

    def times_opened(self) -> int:
        return sum(b.times_opened for b in self.breakers.values())

    def probes_succeeded(self) -> int:
        return sum(b.probes_succeeded for b in self.breakers.values())
