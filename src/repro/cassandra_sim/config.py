"""Configuration knobs for the simulated Cassandra cluster."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CassandraConfig:
    """Cluster-wide configuration.

    Service times model the CPU cost of handling a request at a replica; the
    coordinator pays ``preliminary_flush_ms`` extra for every ICG read, which
    is what produces Correctable Cassandra's throughput drop in Figure 6.
    """

    #: Number of replicas holding each key.
    replication_factor: int = 3
    #: Virtual nodes (tokens) each storage node places on the ring.  More
    #: vnodes smooth per-node load and shrink the ranges a membership change
    #: moves.  Determinism contract: the token layout is a pure function of
    #: the node names and this count (``md5(f"{name}#{vnode}")``), so a given
    #: membership always yields the same ring regardless of seeds or history.
    vnodes_per_node: int = 8
    #: CPU time a replica spends serving one read (ms).
    read_service_ms: float = 1.5
    #: CPU time a replica spends applying one write (ms).
    write_service_ms: float = 1.0
    #: Extra coordinator CPU time for flushing a preliminary response (ms).
    preliminary_flush_ms: float = 0.6
    #: Size of a full record returned by a read (bytes).  The single-request
    #: microbenchmark uses 100 B objects; the YCSB load/bandwidth experiments
    #: use the YCSB default of 10 fields × 100 B = 1000 B records.
    value_size_bytes: int = 100
    #: Size of a key on the wire (bytes).
    key_size_bytes: int = 20
    #: Per-response metadata overhead (bytes).
    response_overhead_bytes: int = 40
    #: Size of a confirmation message body (bytes), for the *CC optimization.
    confirmation_bytes: int = 10
    #: Whether final views identical to the preliminary are replaced by a
    #: small confirmation message (the ``*CC`` optimization of Section 5.2).
    confirmation_optimization: bool = False
    #: Whether quorum reads repair stale replicas afterwards.
    read_repair: bool = False
    #: Coordinator-side timeout for assembling a read quorum (ms); 0 disables
    #: timeouts entirely, which is the fault-free behaviour the paper's
    #: happy-path figures assume.
    read_timeout_ms: float = 0.0
    #: Coordinator-side timeout for assembling a write quorum (ms); 0 disables.
    write_timeout_ms: float = 0.0
    #: How many times the coordinator re-solicits missing replicas before
    #: giving up on the requested quorum.
    coordinator_retries: int = 1
    #: After the retries are exhausted, whether to answer the client with the
    #: responses gathered so far (a *downgraded* quorum) instead of an error.
    downgrade_on_timeout: bool = True
    #: Client-side timeout for one request (ms); 0 disables.  On expiry the
    #: client re-issues the request to a fallback coordinator (if it has any)
    #: and eventually reports an error.
    client_timeout_ms: float = 0.0
    #: How many times the client re-issues a timed-out request.
    client_retries: int = 2
    #: Backoff before a client re-issue (ms); 0 keeps the historical
    #: immediate-retry behaviour (and adds no scheduler events).  Positive
    #: values grow exponentially per attempt via the shared
    #: :class:`~repro.core.retry.RetryPolicy` (capped, with deterministic
    #: seeded jitter from ``client_backoff_jitter_ms``).
    client_backoff_base_ms: float = 0.0
    client_backoff_multiplier: float = 2.0
    client_backoff_cap_ms: float = 1_000.0
    client_backoff_jitter_ms: float = 0.0
    #: Storage backend selection: clusters whose preload installs at least
    #: ``columnar_threshold_keys`` records switch every replica to the
    #: column-oriented table (:class:`~repro.cassandra_sim.storage.
    #: ColumnarTable`), and nodes joining such a ring start columnar too.
    #: ``columnar_storage=False`` is the kill-switch — always use the
    #: row-object :class:`~repro.cassandra_sim.storage.LocalTable`.  Both
    #: backends are observationally identical (exact LWW), so this only
    #: changes memory footprint, never results.
    columnar_storage: bool = True
    columnar_threshold_keys: int = 100_000
    #: Range streaming (ring rebalancing): items shipped per stream batch.
    #: Batches are stop-and-wait (next batch leaves when the previous one is
    #: acknowledged), so smaller batches stretch a rebalance over more time.
    stream_batch_items: int = 64
    #: Service time the stream source pays to scan its table for one task's
    #: key range (ms).
    stream_scan_ms: float = 2.0
    #: Service time the stream source pays to assemble one batch (ms).
    stream_batch_ms: float = 0.5
    #: Service time the stream target pays to apply one streamed item (ms).
    stream_apply_ms_per_item: float = 0.05

    def __post_init__(self) -> None:
        if self.replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        if self.vnodes_per_node <= 0:
            raise ValueError("vnodes_per_node must be positive")
        if self.stream_batch_items <= 0:
            raise ValueError("stream_batch_items must be positive")

    def quorum(self) -> int:
        """Majority quorum size for this replication factor."""
        return self.replication_factor // 2 + 1

    @classmethod
    def fault_tolerant(cls, **overrides) -> "CassandraConfig":
        """A configuration with the recovery paths enabled.

        Used by the fault experiments: coordinator timeouts with one retry
        then downgrade, client-side failover, and read repair so replicas
        reconverge after a crash or partition heals.
        """
        defaults = dict(
            read_repair=True,
            read_timeout_ms=250.0,
            write_timeout_ms=250.0,
            coordinator_retries=1,
            downgrade_on_timeout=True,
            client_timeout_ms=1_000.0,
            client_retries=2,
        )
        defaults.update(overrides)
        return cls(**defaults)
