"""Latency recording with averages and percentiles."""

from __future__ import annotations

import math
from typing import Iterable, List, Optional


class LatencyRecorder:
    """Collects latency samples (milliseconds) and summarizes them."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, latency_ms: float) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative latency: {latency_ms}")
        self._samples.append(latency_ms)
        self._sorted = None

    def extend(self, latencies: Iterable[float]) -> None:
        for value in latencies:
            self.record(value)

    def merge(self, other: "LatencyRecorder") -> None:
        self._samples.extend(other._samples)
        self._sorted = None

    # -- summaries ---------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._samples)

    def samples(self) -> List[float]:
        return list(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def minimum(self) -> float:
        return min(self._samples) if self._samples else 0.0

    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def stddev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mu = self.mean()
        variance = sum((x - mu) ** 2 for x in self._samples) / (len(self._samples) - 1)
        return math.sqrt(variance)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 < p <= 100) using linear interpolation."""
        if not self._samples:
            return 0.0
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        data = self._sorted
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        fraction = rank - low
        return data[low] + (data[high] - data[low]) * fraction

    def p50(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> dict:
        """Mean / p50 / p99 / min / max / count in one dictionary."""
        return {
            "name": self.name,
            "count": self.count,
            "mean_ms": self.mean(),
            "p50_ms": self.p50(),
            "p99_ms": self.p99(),
            "min_ms": self.minimum(),
            "max_ms": self.maximum(),
        }
