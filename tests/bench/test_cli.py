"""Tests for the figure-regeneration command line."""

import pytest

from repro.bench.cli import (
    build_parser,
    figure_names,
    figure_supports_histograms,
    main,
    run_figure,
)


class TestParser:
    def test_accepts_every_figure(self):
        parser = build_parser()
        for name in figure_names():
            args = parser.parse_args([name, "--quick"])
            assert args.figure == name and args.quick

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_seed_parsed(self):
        args = build_parser().parse_args(["fig12", "--seed", "7"])
        assert args.seed == 7

    def test_perf_options_parsed(self):
        args = build_parser().parse_args(
            ["perf", "--quick", "--profile", "10", "--repeats", "2",
             "--label", "x", "--perf-scenario", "fig09-zk-queue",
             "--no-save", "--check-regression"])
        assert args.figure == "perf" and args.quick
        assert args.profile == 10 and args.repeats == 2
        assert args.label == "x"
        assert args.perf_scenarios == ["fig09-zk-queue"]
        assert args.no_save and args.check_regression

    def test_jobs_and_histograms_parsed(self):
        args = build_parser().parse_args(
            ["fig06", "--quick", "--jobs", "4", "--histograms"])
        assert args.jobs == "4" and args.histograms
        assert build_parser().parse_args(["fig06", "--jobs", "auto"]).jobs \
            == "auto"
        assert build_parser().parse_args(["fig06"]).jobs == "1"


class TestRunFigure:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_figure("fig99")

    def test_quick_fig09_produces_report(self):
        report = run_figure("fig09", quick=True)
        assert "Figure 9" in report
        assert "leader" in report

    def test_quick_fig12_with_seed(self):
        report = run_figure("fig12", quick=True, seed=9)
        assert "Figure 12" in report

    def test_main_prints_report(self, capsys):
        assert main(["fig09", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out

    def test_parallel_report_matches_serial(self):
        assert run_figure("fig09", quick=True, jobs=2) == \
            run_figure("fig09", quick=True)

    def test_bad_jobs_value_rejected(self):
        with pytest.raises(ValueError):
            run_figure("fig09", quick=True, jobs="warp")

    def test_main_reports_bad_jobs_cleanly(self, capsys):
        assert main(["fig09", "--quick", "--jobs", "warp"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_histograms_rejected_for_unsupported_figure(self, capsys):
        with pytest.raises(ValueError):
            run_figure("fig09", quick=True, use_histograms=True)
        assert main(["fig09", "--quick", "--histograms"]) == 2
        assert "histograms" in capsys.readouterr().err

    def test_histograms_supported_for_fig06(self):
        report = run_figure("fig06", quick=True, use_histograms=True)
        assert "Figure 6" in report

    def test_histogram_capability_lookup(self):
        # 'all --histograms' composes by applying the flag only where
        # supported, which relies on this capability probe.
        assert figure_supports_histograms("fig06")
        assert not figure_supports_histograms("fig09")
        with pytest.raises(KeyError):
            figure_supports_histograms("fig99")
