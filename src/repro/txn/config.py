"""Configuration knobs for the transaction layer."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TxnConfig:
    """Tuning for the 2PC coordinator group, participants, and clients.

    The defaults are sized for the fault benchmarks' multi-second runs:
    prepare/decision timeouts well above a WAN round trip, heartbeat-driven
    coordinator failure detection inside a second, and client retry budgets
    that survive one coordinator takeover.
    """

    #: Coordinator-side timeout for collecting prepare votes (ms).
    prepare_timeout_ms: float = 400.0
    #: Simulated durable-decision write at the coordinator (ms).  The window
    #: between the speculative PREPARED notice and the decision becoming
    #: durable — a coordinator crash inside it loses the decision, which is
    #: exactly when the speculative view turns out wrong.
    decision_log_ms: float = 2.0
    #: Redelivery period for commit/abort decisions not yet acked by every
    #: participant (ms); covers participants that were crashed or partitioned
    #: away when the decision first went out.
    decision_retry_ms: float = 300.0
    #: Active-coordinator heartbeat period (ms); 0 disables failure detection
    #: (and with it coordinator failover).
    heartbeat_interval_ms: float = 100.0
    #: A standby that has heard no active-coordinator heartbeat for this long
    #: suspects a crash.  Standbys stagger by rank so exactly one survivor
    #: takes over: standby ``r`` fires after ``(1 + r)`` multiples of this.
    coordinator_timeout_ms: float = 450.0
    #: Re-probe period for participants that have not answered a takeover
    #: state request (ms); recovery blocks on every participant, so probes
    #: continue until crashed participants come back.
    takeover_probe_ms: float = 250.0
    #: Client-side timeout for one transaction attempt (ms); 0 disables.
    client_timeout_ms: float = 1_200.0
    #: How many times the client re-submits a timed-out transaction.
    client_retries: int = 3
    #: Client re-submit backoff (shared RetryPolicy semantics): capped
    #: exponential, deterministic.  Non-zero by default — unlike the storage
    #: clients there is no historical trace to preserve, and backoff keeps a
    #: failed-over coordinator from being hammered during its recovery.
    client_backoff_base_ms: float = 25.0
    client_backoff_multiplier: float = 2.0
    client_backoff_cap_ms: float = 400.0
    client_backoff_jitter_ms: float = 0.0
    #: End-to-end transaction budget (ms): the absolute deadline carried in
    #: every message of the transaction (client → coordinator → participant),
    #: after which any hop refuses further work on it.
    txn_deadline_ms: float = 6_000.0
    #: Load-balancer circuit breakers: consecutive failures to open, and how
    #: long an open breaker rejects before half-opening a probe.
    breaker_failure_threshold: int = 2
    breaker_reset_ms: float = 800.0
    #: CPU time a participant spends validating + logging one prepare (ms).
    prepare_service_ms: float = 0.4
    #: CPU time a participant spends applying one commit (ms).
    commit_service_ms: float = 0.5
    #: CPU time the coordinator spends per protocol step (ms).
    coordinator_service_ms: float = 0.3
    #: Wire sizing (bytes).
    key_size_bytes: int = 20
    value_size_bytes: int = 100

    def __post_init__(self) -> None:
        if self.prepare_timeout_ms <= 0:
            raise ValueError("prepare_timeout_ms must be positive")
        if self.client_retries < 0:
            raise ValueError("client_retries must be non-negative")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be positive")
