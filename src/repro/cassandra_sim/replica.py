"""A Cassandra replica node (which also acts as a coordinator).

Message kinds handled:

* ``client_read`` / ``client_write`` — requests from a client node; this
  replica becomes the coordinator for the operation;
* ``read_req`` / ``read_resp`` — coordinator ↔ replica data reads;
* ``write_req`` / ``write_ack`` — coordinator ↔ replica write application
  (write_req is also how asynchronous replication beyond W happens);
* responses to clients: ``read_preliminary``, ``read_final``,
  ``write_ack_client``;
* ``stream_data`` / ``stream_ack`` — range streaming during a ring
  rebalance (stop-and-wait batches from the range's source to its gainer).

Ring membership: every replica carries a ``ring_state`` (``serving``,
``bootstrapping`` while joining, ``retired`` after leaving).  Coordinator ↔
replica messages are stamped with the ring epoch
(:attr:`RingPartitioner.version`); a replica that no longer owns a key —
because the range streamed away in a committed rebalance — rejects the
request with ``stale_epoch`` and the coordinator retries against the
post-rebalance preference list.  While a change is in flight, coordinators
forward writes to the nodes gaining the key's range (without counting them
towards the write quorum), which is what makes acknowledged writes survive
any join/decommission.

Correctable Cassandra behaviour (Section 5.2): when a client read carries the
``icg`` flag, the coordinator performs *preliminary flushing* — an extra job
on its processing queue that sends the first locally available version to the
client before the quorum completes — and, if the confirmation optimization is
enabled, replaces an identical final response with a small confirmation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cassandra_sim.config import CassandraConfig
from repro.cassandra_sim.coordinator import (FusedRead, FusedWrite,
                                             ReadSession, WriteSession)
from repro.cassandra_sim.partitioner import RingPartitioner, StreamTask
from repro.cassandra_sim.storage import LocalTable
from repro.cassandra_sim.versions import VersionedValue
from repro.sim.network import (LinkStats, MESSAGE_HEADER_BYTES, Message,
                               Network, estimate_payload_size)
from repro.sim.node import Node

#: Wire size of the small fixed acknowledgements (write_ack and friends).
_ACK_BYTES = MESSAGE_HEADER_BYTES + 10


@dataclass(slots=True)
class _StreamState:
    """Source-side progress of one range-transfer task."""

    stream_id: int
    task: StreamTask
    on_complete: Callable[[StreamTask], None]
    keys: Tuple[str, ...] = ()
    cursor: int = 0


class CassandraReplica(Node):
    """One storage node: local LWW table plus coordinator logic."""

    def __init__(self, name: str, region: str, network: Network,
                 config: CassandraConfig, partitioner: RingPartitioner) -> None:
        super().__init__(name, region, network)
        self.config = config
        # Message-size bases, precomputed once: every fused hop charges one
        # of these, and the config fields never change after construction.
        self._req_base = MESSAGE_HEADER_BYTES + config.key_size_bytes
        self._resp_base = MESSAGE_HEADER_BYTES + config.response_overhead_bytes
        self._conf_base = MESSAGE_HEADER_BYTES + config.confirmation_bytes
        self.partitioner = partitioner
        self.table = LocalTable()
        #: Ring membership state: ``serving`` (normal), ``bootstrapping``
        #: (joining: applies forwarded writes and streamed data, serves no
        #: client traffic yet), ``retired`` (left the ring: rejects
        #: everything with ``stale_epoch`` so coordinators re-route).
        self.ring_state = "serving"
        self._distance_cache: Dict[str, List[str]] = {}
        #: Ring epoch the distance cache was built against.
        self._distance_version = partitioner.version
        self._session_ids = itertools.count(1)
        self._stream_ids = itertools.count(1)
        self._streams: Dict[int, _StreamState] = {}
        self._write_seq = itertools.count(1)
        self._read_sessions: Dict[int, ReadSession] = {}
        self._write_sessions: Dict[int, WriteSession] = {}
        #: key -> (local_participant, fused fan-out targets); see _fused_plan.
        self._fused_plans: Dict[str, tuple] = {}
        self._fused_plan_stamp = (-1, -1)
        # Instrumentation used by the benchmarks.
        self.reads_coordinated = 0
        self.writes_coordinated = 0
        self.preliminaries_flushed = 0
        self.confirmations_sent = 0
        # Fault-path instrumentation (stays zero with timeouts disabled).
        self.read_retries = 0
        self.write_retries = 0
        self.reads_downgraded = 0
        self.writes_downgraded = 0
        self.reads_failed = 0
        self.writes_failed = 0
        # Rebalance instrumentation (stays zero on a static ring).
        self.stale_rejections = 0
        self.stale_epoch_retries = 0
        self.writes_forwarded = 0
        self.keys_streamed_out = 0
        self.keys_streamed_in = 0
        # Fused continuations, bound once: every fused send passes one of
        # these as its delivery callback, and an instance-attribute load
        # here avoids materializing a fresh bound method per hop.
        self._fused_client_read = self._fused_client_read
        self._fused_client_write = self._fused_client_write
        self._fused_read_req = self._fused_read_req
        self._fused_write_req = self._fused_write_req
        self._fused_read_resp = self._fused_read_resp
        self._fused_on_write_ack = self._fused_on_write_ack
        self._fused_read_stale = self._fused_read_stale
        self._fused_write_stale = self._fused_write_stale
        self._fused_coordinate_read = self._fused_coordinate_read
        self._fused_coordinate_write = self._fused_coordinate_write
        self._fused_serve_read = self._fused_serve_read
        self._fused_apply_write = self._fused_apply_write
        self._fused_flush_preliminary = self._fused_flush_preliminary

    # -- helpers --------------------------------------------------------------
    def _other_replicas_by_distance(self, key: str) -> List[str]:
        """Replicas for ``key`` other than this node, closest first.

        Cached per key and invalidated by ring epoch: node regions and the
        RTT matrix are fixed, but a committed membership change re-routes
        keys, so the cache is dropped whenever the partitioner version moves.
        The returned list is shared — treat it as read-only.
        """
        if self._distance_version != self.partitioner.version:
            self._distance_cache.clear()
            self._distance_version = self.partitioner.version
        cached = self._distance_cache.get(key)
        if cached is not None:
            return cached
        replicas = [r for r in self.partitioner.replicas_for(key) if r != self.name]
        topology = self.network.topology

        def _distance(name: str) -> float:
            other = self.network.node(name)
            return topology.rtt(self.region, other.region)

        ordered = sorted(replicas, key=lambda name: (_distance(name), name))
        if len(self._distance_cache) >= 65536:
            self._distance_cache.clear()
        self._distance_cache[key] = ordered
        return ordered

    def _value_bytes(self, version: Optional[VersionedValue]) -> int:
        if version is None:
            return 8
        value = version.value
        # Stored values are ASCII strings in every workload; size them with
        # ``len`` and only fall back to the generic payload walker otherwise.
        if type(value) is str and value.isascii():
            size = len(value)
        else:
            size = estimate_payload_size(value)
        return max(self.config.value_size_bytes, size)

    # -- client read path -------------------------------------------------------
    def on_client_read(self, message: Message) -> None:
        payload = message.payload
        if self.ring_state != "serving":
            # A retired (or still bootstrapping) node no longer coordinates:
            # the client rotates to its next contact.
            self.stale_rejections += 1
            self.send(message.src, "read_error",
                      {"req_id": payload["req_id"],
                       "error": f"coordinator {self.name} left the ring",
                       "retryable": True},
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.response_overhead_bytes))
            return
        self.reads_coordinated += 1
        session = ReadSession(
            session_id=next(self._session_ids),
            req_id=payload["req_id"],
            client=message.src,
            key=payload["key"],
            r=int(payload["r"]),
            icg=bool(payload.get("icg", False)),
            started_at=self.scheduler.now(),
        )
        self._read_sessions[session.session_id] = session
        self.process(self._coordinate_read, session,
                     service_time_ms=self.config.read_service_ms)

    def _coordinate_read(self, session: ReadSession) -> None:
        key = session.key
        replicas = self.partitioner.replicas_for(key)
        local_participant = self.name in replicas

        if local_participant:
            version = self.table.read(key)
            session.record(self.name, version)
            session.contacted.append(self.name)
            if session.icg:
                # Preliminary flushing: extra coordinator work, then leak the
                # local version to the client before the quorum completes.
                self.process(self._flush_preliminary, session,
                             service_time_ms=self.config.preliminary_flush_ms)

        remote_needed = session.r - (1 if local_participant else 0)
        targets = self._other_replicas_by_distance(key)[:max(0, remote_needed)]
        if targets:
            size = MESSAGE_HEADER_BYTES + self.config.key_size_bytes
            session_id = session.session_id
            epoch = self.partitioner.version
            session.contacted.extend(targets)
            self.send_many([(replica_name, "read_req",
                             {"session_id": session_id, "key": key,
                              "epoch": epoch}, size)
                            for replica_name in targets])

        self._maybe_finish_read(session)
        if not session.final_sent:
            self._arm_read_timeout(session)

    def _flush_preliminary(self, session: ReadSession) -> None:
        if session.final_sent or session.preliminary_sent:
            return
        version = session.responses.get(self.name)
        if version is None and self.name not in session.responses:
            return
        session.preliminary = version
        session.preliminary_sent = True
        self.preliminaries_flushed += 1
        self.send(session.client, "read_preliminary",
                  {"req_id": session.req_id,
                   "found": version is not None,
                   "value": version.value if version else None,
                   "timestamp": version.timestamp if version else None,
                   "replica": self.name},
                  size_bytes=(MESSAGE_HEADER_BYTES
                              + self.config.response_overhead_bytes
                              + self._value_bytes(version)))

    def on_read_req(self, message: Message) -> None:
        payload = message.payload
        self.process(self._serve_read_req, message.src,
                     payload["session_id"], payload["key"],
                     service_time_ms=self.config.read_service_ms)

    def _serve_read_req(self, coordinator: str, session_id: int, key: str) -> None:
        if self.ring_state != "serving" \
                or not self.partitioner.is_replica(self.name, key):
            # The key's range streamed away (or this node left the ring)
            # after the coordinator picked its preference list: reject so it
            # retries against the post-rebalance owners.
            self.stale_rejections += 1
            self.send(coordinator, "read_resp",
                      {"session_id": session_id,
                       "replica": self.name,
                       "stale_epoch": True,
                       "epoch": self.partitioner.version,
                       "found": False, "value": None, "timestamp": None},
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.response_overhead_bytes))
            return
        version = self.table.read(key)
        self.send(coordinator, "read_resp",
                  {"session_id": session_id,
                   "replica": self.name,
                   "found": version is not None,
                   "value": version.value if version else None,
                   "timestamp": version.timestamp if version else None},
                  size_bytes=(MESSAGE_HEADER_BYTES
                              + self.config.response_overhead_bytes
                              + self._value_bytes(version)))

    def on_read_resp(self, message: Message) -> None:
        payload = message.payload
        session = self._read_sessions.get(payload["session_id"])
        if session is None or session.final_sent:
            return
        if payload.get("stale_epoch"):
            self._retry_read_after_stale_epoch(session)
            return
        version = None
        if payload["found"]:
            version = VersionedValue(payload["value"], tuple(payload["timestamp"]))
        session.record(payload["replica"], version)
        # A coordinator that is not a replica for the key flushes the first
        # remote response as the preliminary view.
        if session.icg and not session.preliminary_sent \
                and self.name not in session.responses:
            session.preliminary = version
            session.preliminary_sent = True
            self.preliminaries_flushed += 1
            self.send(session.client, "read_preliminary",
                      {"req_id": session.req_id,
                       "found": version is not None,
                       "value": version.value if version else None,
                       "timestamp": version.timestamp if version else None,
                       "replica": payload["replica"]},
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.response_overhead_bytes
                                  + self._value_bytes(version)))
        self._maybe_finish_read(session)

    def _retry_read_after_stale_epoch(self, session: ReadSession) -> None:
        """Re-solicit a rejected read from the post-rebalance owners.

        The rejecting replica streamed the key's range away (or left the
        ring); the distance cache was invalidated by the epoch bump, so this
        walk sees the fresh preference list.
        """
        self.stale_epoch_retries += 1
        needed = session.r - len(session.responses)
        for replica_name in self._other_replicas_by_distance(session.key):
            if needed <= 0:
                break
            if replica_name in session.responses \
                    or replica_name in session.contacted:
                continue
            needed -= 1
            session.contacted.append(replica_name)
            self.send(replica_name, "read_req",
                      {"session_id": session.session_id, "key": session.key,
                       "epoch": self.partitioner.version},
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.key_size_bytes))
        # If this node became an owner in the new epoch (possible when the
        # rejected range moved here), answer from the local table directly.
        if self.name not in session.responses \
                and self.partitioner.is_replica(self.name, session.key):
            session.record(self.name, self.table.read(session.key))
            if self.name not in session.contacted:
                session.contacted.append(self.name)
            self._maybe_finish_read(session)

    # -- read timeouts (retry / downgrade) -------------------------------------
    def _arm_read_timeout(self, session: ReadSession) -> None:
        if self.config.read_timeout_ms <= 0:
            return
        session.timeout_event = self.scheduler.schedule(
            self.config.read_timeout_ms, self._on_read_timeout,
            session.session_id)

    def _on_read_timeout(self, session_id: int) -> None:
        session = self._read_sessions.get(session_id)
        if session is None or session.final_sent or not self.alive:
            return
        session.timeout_event = None
        if session.attempts < self.config.coordinator_retries:
            session.attempts += 1
            self.read_retries += 1
            # Re-solicit every replica that has not answered yet — including
            # ones beyond the original quorum fan-out, so the read can route
            # around a crashed or partitioned replica.
            for replica_name in self._other_replicas_by_distance(session.key):
                if replica_name in session.responses:
                    continue
                if replica_name not in session.contacted:
                    session.contacted.append(replica_name)
                self.send(replica_name, "read_req",
                          {"session_id": session.session_id, "key": session.key,
                           "epoch": self.partitioner.version},
                          size_bytes=(MESSAGE_HEADER_BYTES
                                      + self.config.key_size_bytes))
            self._arm_read_timeout(session)
            return
        # Retries exhausted: downgrade to the responses gathered so far, or
        # report the failure to the client.
        if self.config.downgrade_on_timeout and session.responses:
            self.reads_downgraded += 1
            self._finish_read(session, degraded=True)
            return
        self.reads_failed += 1
        session.final_sent = True
        self.send(session.client, "read_error",
                  {"req_id": session.req_id,
                   "error": "read timeout: no replica responded"},
                  size_bytes=(MESSAGE_HEADER_BYTES
                              + self.config.response_overhead_bytes))
        del self._read_sessions[session.session_id]

    def _maybe_finish_read(self, session: ReadSession) -> None:
        if session.final_sent or not session.have_quorum():
            return
        self._finish_read(session, degraded=False)

    def _finish_read(self, session: ReadSession, degraded: bool) -> None:
        if session.timeout_event is not None:
            session.timeout_event.cancel()
            session.timeout_event = None
        session.final_sent = True
        newest = session.resolved()
        matches_preliminary = (
            session.preliminary_sent
            and ((newest is None and session.preliminary is None)
                 or (newest is not None and session.preliminary is not None
                     and newest.value == session.preliminary.value))
        )
        use_confirmation = (session.icg and self.config.confirmation_optimization
                            and matches_preliminary)
        if use_confirmation:
            self.confirmations_sent += 1
            size = MESSAGE_HEADER_BYTES + self.config.confirmation_bytes
            payload = {"req_id": session.req_id,
                       "is_confirmation": True,
                       "found": newest is not None,
                       "value": None,
                       "timestamp": newest.timestamp if newest else None,
                       "matches_preliminary": True,
                       "degraded": degraded}
        else:
            size = (MESSAGE_HEADER_BYTES + self.config.response_overhead_bytes
                    + self._value_bytes(newest))
            payload = {"req_id": session.req_id,
                       "is_confirmation": False,
                       "found": newest is not None,
                       "value": newest.value if newest else None,
                       "timestamp": newest.timestamp if newest else None,
                       "matches_preliminary": matches_preliminary,
                       "degraded": degraded}
        self.send(session.client, "read_final", payload, size_bytes=size)

        if self.config.read_repair and newest is not None:
            for replica_name in session.stale_replicas():
                if replica_name == self.name:
                    self.table.apply(session.key, newest)
                    continue
                self.send(replica_name, "write_req",
                          {"key": session.key, "value": newest.value,
                           "timestamp": newest.timestamp, "session_id": None},
                          size_bytes=(MESSAGE_HEADER_BYTES
                                      + self.config.key_size_bytes
                                      + self._value_bytes(newest)))
        del self._read_sessions[session.session_id]

    # -- client write path --------------------------------------------------------
    def on_client_write(self, message: Message) -> None:
        payload = message.payload
        if self.ring_state != "serving":
            self.stale_rejections += 1
            self.send(message.src, "write_error",
                      {"req_id": payload["req_id"],
                       "error": f"coordinator {self.name} left the ring",
                       "retryable": True},
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.response_overhead_bytes))
            return
        self.writes_coordinated += 1
        timestamp = (self.scheduler.now(), self.name, next(self._write_seq))
        session = WriteSession(
            session_id=next(self._session_ids),
            req_id=payload["req_id"],
            client=message.src,
            key=payload["key"],
            w=int(payload["w"]),
            version=VersionedValue(payload["value"], timestamp),
            started_at=self.scheduler.now(),
        )
        self._write_sessions[session.session_id] = session
        self.process(self._coordinate_write, session,
                     service_time_ms=self.config.write_service_ms)

    def _coordinate_write(self, session: WriteSession) -> None:
        key = session.key
        replicas = self.partitioner.replicas_for(key)
        if self.name in replicas:
            self.table.apply(key, session.version)
            session.record_ack(self.name)
        # Send the write to every other replica: the ones beyond W make up
        # the asynchronous (eventual) replication path.
        others = self._other_replicas_by_distance(key)
        if others:
            value = session.version.value
            timestamp = session.version.timestamp
            session_id = session.session_id
            epoch = self.partitioner.version
            size = (MESSAGE_HEADER_BYTES + self.config.key_size_bytes
                    + self._value_bytes(session.version))
            self.send_many([(replica_name, "write_req",
                             {"key": key, "value": value,
                              "timestamp": timestamp,
                              "session_id": session_id,
                              "epoch": epoch}, size)
                            for replica_name in others])
        # While a membership change is in flight, also forward the write to
        # the nodes gaining this key's range (``session_id=None``: forwarded
        # copies never count towards the quorum), so no acknowledged write
        # can be lost to an in-progress stream.
        for replica_name in self.partitioner.pending_replicas_for(key):
            if replica_name == self.name:
                continue
            self.writes_forwarded += 1
            self.send(replica_name, "write_req",
                      {"key": key,
                       "value": session.version.value,
                       "timestamp": session.version.timestamp,
                       "session_id": None,
                       "epoch": self.partitioner.version},
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.key_size_bytes
                                  + self._value_bytes(session.version)))
        self._maybe_finish_write(session)
        if not session.acked_client:
            self._arm_write_timeout(session)

    def on_write_req(self, message: Message) -> None:
        payload = message.payload
        self.process(self._apply_remote_write, message.src, payload,
                     service_time_ms=self.config.write_service_ms)

    def _apply_remote_write(self, coordinator: str, payload: dict) -> None:
        if self.ring_state == "retired":
            # This node streamed its data away and left the ring; reject so
            # the coordinator re-replicates to the post-rebalance owners.
            self.stale_rejections += 1
            if payload.get("session_id") is not None:
                self.send(coordinator, "write_ack",
                          {"session_id": payload["session_id"],
                           "replica": self.name,
                           "stale_epoch": True,
                           "epoch": self.partitioner.version},
                          size_bytes=MESSAGE_HEADER_BYTES + 10)
            return
        version = VersionedValue(payload["value"], tuple(payload["timestamp"]))
        self.table.apply(payload["key"], version)
        if payload.get("session_id") is not None:
            self.send(coordinator, "write_ack",
                      {"session_id": payload["session_id"], "replica": self.name},
                      size_bytes=MESSAGE_HEADER_BYTES + 10)

    def on_write_ack(self, message: Message) -> None:
        payload = message.payload
        session = self._write_sessions.get(payload["session_id"])
        if session is None:
            return
        if payload.get("stale_epoch"):
            self._retry_write_after_stale_epoch(session)
            return
        session.record_ack(payload["replica"])
        self._maybe_finish_write(session)

    def _retry_write_after_stale_epoch(self, session: WriteSession) -> None:
        """Re-replicate a rejected write to the post-rebalance owners."""
        self.stale_epoch_retries += 1
        for replica_name in self._other_replicas_by_distance(session.key):
            if replica_name in session.acks:
                continue
            self.send(replica_name, "write_req",
                      {"key": session.key,
                       "value": session.version.value,
                       "timestamp": session.version.timestamp,
                       "session_id": session.session_id,
                       "epoch": self.partitioner.version},
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.key_size_bytes
                                  + self._value_bytes(session.version)))

    # -- write timeouts (retry / downgrade) ----------------------------------
    def _arm_write_timeout(self, session: WriteSession) -> None:
        if self.config.write_timeout_ms <= 0:
            return
        session.timeout_event = self.scheduler.schedule(
            self.config.write_timeout_ms, self._on_write_timeout,
            session.session_id)

    def _on_write_timeout(self, session_id: int) -> None:
        session = self._write_sessions.get(session_id)
        if session is None or session.acked_client or not self.alive:
            return
        session.timeout_event = None
        if session.attempts < self.config.coordinator_retries:
            session.attempts += 1
            self.write_retries += 1
            for replica_name in self._other_replicas_by_distance(session.key):
                if replica_name in session.acks:
                    continue
                self.send(replica_name, "write_req",
                          {"key": session.key,
                           "value": session.version.value,
                           "timestamp": session.version.timestamp,
                           "session_id": session.session_id},
                          size_bytes=(MESSAGE_HEADER_BYTES
                                      + self.config.key_size_bytes
                                      + self._value_bytes(session.version)))
            self._arm_write_timeout(session)
            return
        if self.config.downgrade_on_timeout and session.acks:
            self.writes_downgraded += 1
            self._ack_write(session, degraded=True)
            del self._write_sessions[session.session_id]
            return
        self.writes_failed += 1
        session.acked_client = True
        self.send(session.client, "write_error",
                  {"req_id": session.req_id,
                   "error": "write timeout: no replica acknowledged"},
                  size_bytes=(MESSAGE_HEADER_BYTES
                              + self.config.response_overhead_bytes))
        del self._write_sessions[session.session_id]

    def _maybe_finish_write(self, session: WriteSession) -> None:
        if session.acked_client or not session.have_quorum():
            return
        self._ack_write(session, degraded=False)
        # Keep the session until all replicas ack so late acks are absorbed,
        # unless every replica already answered.
        if len(session.acks) >= self.config.replication_factor:
            del self._write_sessions[session.session_id]

    def _ack_write(self, session: WriteSession, degraded: bool) -> None:
        if session.timeout_event is not None:
            session.timeout_event.cancel()
            session.timeout_event = None
        session.acked_client = True
        self.send(session.client, "write_ack_client",
                  {"req_id": session.req_id,
                   "timestamp": session.version.timestamp,
                   "degraded": degraded},
                  size_bytes=MESSAGE_HEADER_BYTES + 10)

    # -- fused fast path -------------------------------------------------------
    # The zero-fault request path: one pooled record (FusedRead/FusedWrite)
    # carries the operation through pre-bound continuations instead of
    # per-hop Messages and payload dicts.  Every network continuation below
    # starts with the delivery preamble (_deliver's alive check and
    # delivered/dropped counters); queue jobs go through Node._enqueue.
    # Accounting, jitter draws, service charging and the (time, seq) event
    # order are bit-identical to the message path — the determinism suite
    # runs fig06/fig13/fig16 slices both ways to prove it.

    def _fused_plan(self, key: str) -> tuple:
        """``(local_participant, targets)`` for ``key`` on the fused path.

        ``targets`` holds ``(node, route, read_req, write_req)`` per other
        replica in distance order: the endpoint object, its cached network
        route, and the pre-bound delivery continuations.  Invalidated by
        ring-epoch bumps and network route invalidation.
        """
        network = self.network
        # Network.fused_epoch, inlined (this runs once per coordinated op).
        if network.topology._version != network._topo_version:
            network._sync_topology()
        stamp = (self.partitioner.version, network._route_epoch)
        if self._fused_plan_stamp != stamp:
            self._fused_plans.clear()
            self._fused_plan_stamp = stamp
        plan = self._fused_plans.get(key)
        if plan is None:
            local = self.name in self.partitioner.replicas_for(key)
            targets = tuple(
                (node, network.fused_route(self.name, node.name),
                 node._fused_read_req, node._fused_write_req)
                for node in map(network.node,
                                self._other_replicas_by_distance(key)))
            if len(self._fused_plans) >= 65536:
                self._fused_plans.clear()
            plan = self._fused_plans[key] = (local, targets)
        return plan

    # -- fused read path -------------------------------------------------------
    def _fused_client_read(self, rec: FusedRead) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        if self.ring_state != "serving":
            self.stale_rejections += 1
            client = rec.client
            net.fused_send_to(
                self, client.name,
                MESSAGE_HEADER_BYTES + self.config.response_overhead_bytes,
                client._fused_read_error,
                (rec, f"coordinator {self.name} left the ring"))
            return
        self.reads_coordinated += 1
        # Node._enqueue, inlined: service charge plus scheduler insert with
        # no intermediate frames — this preamble runs once per fused read.
        cost = self.config.read_service_ms * self.slowdown_factor
        queue = self.queue
        scheduler = queue._scheduler
        now = scheduler.clock._now
        busy = queue._busy_until
        start = now if now > busy else busy
        finish = start + cost
        queue._busy_until = finish
        queue.jobs_processed += 1
        queue.busy_time += cost
        seq = scheduler._seq
        scheduler._seq = seq + 1
        scheduler._live += 1
        entry = (finish, seq, self._fused_coordinate_read, rec.args, None, None)
        if finish < scheduler._horizon:
            tick = int(finish * scheduler._wheel_inv)
            if tick == scheduler._cursor:
                heapq.heappush(
                    scheduler._slots[tick & scheduler._wheel_mask], entry)
            else:
                scheduler._slots[tick & scheduler._wheel_mask].append(entry)
                scheduler._wheel_count += 1
        else:
            heapq.heappush(scheduler._heap, entry)

    def _fused_coordinate_read(self, rec: FusedRead) -> None:
        key = rec.key
        config = self.config
        # _fused_plan, inlined down to the stamp check + dict probe (the
        # builder in _fused_plan stays the miss path).
        network = self.network
        if network.topology._version != network._topo_version:
            network._sync_topology()
        stamp = (self.partitioner.version, network._route_epoch)
        if self._fused_plan_stamp != stamp:
            self._fused_plans.clear()
            self._fused_plan_stamp = stamp
        plan = self._fused_plans.get(key)
        if plan is None:
            plan = self._fused_plan(key)
        local, targets = plan
        if local:
            version = self.table.read(key)
            rec.local = True
            rec.local_version = version
            rec.count = 1
            if version is not None:
                rec.best = version
            rec.contacted.append(self.name)
            if rec.icg:
                rec.flush_pending = True
                # Node._enqueue, inlined: the flush job runs once per ICG
                # read, right on the hot path.
                cost = config.preliminary_flush_ms * self.slowdown_factor
                queue = self.queue
                scheduler = queue._scheduler
                now = scheduler.clock._now
                busy = queue._busy_until
                begin = now if now > busy else busy
                finish = begin + cost
                queue._busy_until = finish
                queue.jobs_processed += 1
                queue.busy_time += cost
                seq = scheduler._seq
                scheduler._seq = seq + 1
                scheduler._live += 1
                entry = (finish, seq, self._fused_flush_preliminary,
                         rec.args, None, None)
                if finish < scheduler._horizon:
                    tick = int(finish * scheduler._wheel_inv)
                    if tick == scheduler._cursor:
                        heapq.heappush(
                            scheduler._slots[tick & scheduler._wheel_mask],
                            entry)
                    else:
                        scheduler._slots[tick & scheduler._wheel_mask].append(
                            entry)
                        scheduler._wheel_count += 1
                else:
                    heapq.heappush(scheduler._heap, entry)
        remote_needed = rec.r - rec.count
        if remote_needed > 0 and targets:
            if remote_needed < len(targets):
                targets = targets[:remote_needed]
            size = self._req_base
            # Network.fused_send, inlined per target minus its topology
            # recheck — the plan probe above synced topology in this very
            # event, so the plan routes cannot be stale here.  A singleton
            # entry consumes the same (time, seq) as a direct insert.
            net = network
            scheduler = net.scheduler
            clock = scheduler.clock
            jitter_fraction = net._jitter_fraction
            contacted = rec.contacted
            for node, route, read_req, _ in targets:
                contacted.append(node.name)
                src_node, dst_node, stats, base, src_cell, dst_cell = route
                if not src_node.alive:
                    net.messages_dropped += 1
                    continue
                net.messages_sent += 1
                if stats is None:
                    lkey = (src_node.name, dst_node.name)
                    stats = net._links.get(lkey)
                    if stats is None:
                        stats = net._links[lkey] = LinkStats()
                    route[2] = stats
                stats.messages += 1
                stats.bytes += size
                src_cell[0] += size
                if dst_cell is not None:
                    dst_cell[0] += size
                if net._partitioned or net._partitioned_regions:
                    if net.is_partitioned(src_node.name, dst_node.name):
                        net.messages_dropped += 1
                        continue
                if not dst_node.alive:
                    net.messages_dropped += 1
                    continue
                if jitter_fraction > 0:
                    delay = base + jitter_fraction * net._rand() * base
                else:
                    delay = base
                if net._link_extra_ms:
                    delay += net.link_extra_ms(src_node.name, dst_node.name)
                seq = scheduler._seq
                scheduler._seq = seq + 1
                scheduler._live += 1
                timestamp = clock._now + delay
                entry = (timestamp, seq, read_req, rec.args, None, None)
                if timestamp < scheduler._horizon:
                    tick = int(timestamp * scheduler._wheel_inv)
                    if tick == scheduler._cursor:
                        heapq.heappush(
                            scheduler._slots[tick & scheduler._wheel_mask],
                            entry)
                    else:
                        scheduler._slots[tick & scheduler._wheel_mask].append(
                            entry)
                        scheduler._wheel_count += 1
                else:
                    heapq.heappush(scheduler._heap, entry)
        if rec.count >= rec.r and not rec.final_sent:
            self._fused_finish_read(rec)

    def _fused_flush_preliminary(self, rec: FusedRead) -> None:
        rec.flush_pending = False
        if rec.final_sent or rec.preliminary_sent:
            # The final overtook this job (queue backlog at the coordinator).
            # The client defers recycling while a flush job is outstanding,
            # so when it already processed the final this job holds the last
            # live reference and must hand the record back itself.
            if rec.final_done and (not rec.preliminary_sent or rec.prelim_seen):
                FusedRead.release(rec)
            return
        # The *local* version, not the best-so-far: a remote response that
        # beat this flush job must not leak into the preliminary view.
        version = rec.local_version
        rec.preliminary = version
        rec.preliminary_sent = True
        self.preliminaries_flushed += 1
        client = rec.client
        config = self.config
        # _value_bytes, inlined (one preliminary flush per local ICG read).
        if version is None:
            vbytes = 8
        else:
            value = version.value
            vbytes = (len(value) if type(value) is str and value.isascii()
                      else estimate_payload_size(value))
            if vbytes < config.value_size_bytes:
                vbytes = config.value_size_bytes
        self.network.fused_send_to(
            self, client.name,
            self._resp_base + vbytes,
            client._fused_read_preliminary, (rec, self.name))

    def _fused_read_req(self, rec: FusedRead) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        # Node._enqueue, inlined (see _fused_client_read).
        cost = self.config.read_service_ms * self.slowdown_factor
        queue = self.queue
        scheduler = queue._scheduler
        now = scheduler.clock._now
        busy = queue._busy_until
        start = now if now > busy else busy
        finish = start + cost
        queue._busy_until = finish
        queue.jobs_processed += 1
        queue.busy_time += cost
        seq = scheduler._seq
        scheduler._seq = seq + 1
        scheduler._live += 1
        entry = (finish, seq, self._fused_serve_read, rec.args, None, None)
        if finish < scheduler._horizon:
            tick = int(finish * scheduler._wheel_inv)
            if tick == scheduler._cursor:
                heapq.heappush(
                    scheduler._slots[tick & scheduler._wheel_mask], entry)
            else:
                scheduler._slots[tick & scheduler._wheel_mask].append(entry)
                scheduler._wheel_count += 1
        else:
            heapq.heappush(scheduler._heap, entry)

    def _fused_serve_read(self, rec: FusedRead) -> None:
        config = self.config
        coordinator = rec.coordinator
        if self.ring_state != "serving" \
                or not self.partitioner.is_replica(self.name, rec.key):
            self.stale_rejections += 1
            self.network.fused_send_to(
                self, coordinator.name,
                self._resp_base,
                coordinator._fused_read_stale, rec.args)
            return
        version = self.table.read(rec.key)
        # _value_bytes, inlined (one remote response per contacted replica).
        if version is None:
            vbytes = 8
        else:
            value = version.value
            vbytes = (len(value) if type(value) is str and value.isascii()
                      else estimate_payload_size(value))
            if vbytes < config.value_size_bytes:
                vbytes = config.value_size_bytes
        self.network.fused_send_to(
            self, coordinator.name,
            self._resp_base + vbytes,
            coordinator._fused_read_resp, (rec, version, self.name))

    def _fused_read_resp(self, rec: FusedRead,
                         version: Optional[VersionedValue],
                         replica: str) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        if rec.final_sent:
            return
        rec.count += 1
        best = rec.best
        if version is not None and (best is None
                                    or version.timestamp > best.timestamp):
            rec.best = version
        # A coordinator that is not a replica for the key flushes the first
        # remote response as the preliminary view.
        if rec.icg and not rec.preliminary_sent and not rec.local:
            rec.preliminary = version
            rec.preliminary_sent = True
            self.preliminaries_flushed += 1
            client = rec.client
            config = self.config
            # _value_bytes, inlined (first remote response, non-local ICG).
            if version is None:
                vbytes = 8
            else:
                value = version.value
                vbytes = (len(value)
                          if type(value) is str and value.isascii()
                          else estimate_payload_size(value))
                if vbytes < config.value_size_bytes:
                    vbytes = config.value_size_bytes
            net.fused_send_to(
                self, client.name,
                self._resp_base + vbytes,
                client._fused_read_preliminary, (rec, replica))
        if rec.count >= rec.r:
            self._fused_finish_read(rec)

    def _fused_finish_read(self, rec: FusedRead) -> None:
        rec.final_sent = True
        config = self.config
        newest = rec.best
        matches_preliminary = (
            rec.preliminary_sent
            and ((newest is None and rec.preliminary is None)
                 or (newest is not None and rec.preliminary is not None
                     and newest.value == rec.preliminary.value))
        )
        use_confirmation = (rec.icg and config.confirmation_optimization
                            and matches_preliminary)
        if use_confirmation:
            self.confirmations_sent += 1
            size = self._conf_base
        else:
            # _value_bytes, inlined (one final response per read).
            if newest is None:
                vbytes = 8
            else:
                value = newest.value
                vbytes = (len(value) if type(value) is str and value.isascii()
                          else estimate_payload_size(value))
                if vbytes < config.value_size_bytes:
                    vbytes = config.value_size_bytes
            size = self._resp_base + vbytes
        client = rec.client
        self.network.fused_send_to(
            self, client.name, size,
            client._fused_read_final,
            (rec, use_confirmation, matches_preliminary))

    def _fused_read_stale(self, rec: FusedRead) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        if rec.final_sent:
            return
        # Mirrors _retry_read_after_stale_epoch; the record leaves the pool
        # (recyclable=False) since rescue sends hold untracked references.
        rec.recyclable = False
        self.stale_epoch_retries += 1
        size = MESSAGE_HEADER_BYTES + self.config.key_size_bytes
        needed = rec.r - rec.count
        contacted = rec.contacted
        for name in self._other_replicas_by_distance(rec.key):
            if needed <= 0:
                break
            if name in contacted:
                continue
            needed -= 1
            contacted.append(name)
            node = net.node(name)
            net.fused_send_to(self, name, size,
                              node._fused_read_req, rec.args)
        if not rec.local and self.partitioner.is_replica(self.name, rec.key):
            version = self.table.read(rec.key)
            rec.local = True
            rec.local_version = version
            rec.count += 1
            best = rec.best
            if version is not None and (best is None
                                        or version.timestamp > best.timestamp):
                rec.best = version
            if self.name not in contacted:
                contacted.append(self.name)
            if rec.count >= rec.r:
                self._fused_finish_read(rec)

    # -- fused write path ------------------------------------------------------
    def _fused_client_write(self, rec: FusedWrite) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        if self.ring_state != "serving":
            self.stale_rejections += 1
            client = rec.client
            net.fused_send_to(
                self, client.name,
                MESSAGE_HEADER_BYTES + self.config.response_overhead_bytes,
                client._fused_write_error,
                (rec, f"coordinator {self.name} left the ring"))
            return
        self.writes_coordinated += 1
        rec.version = VersionedValue(
            rec.value,
            (self.scheduler.clock._now, self.name, next(self._write_seq)))
        # Node._enqueue, inlined (see _fused_client_read).
        cost = self.config.write_service_ms * self.slowdown_factor
        queue = self.queue
        scheduler = queue._scheduler
        now = scheduler.clock._now
        busy = queue._busy_until
        start = now if now > busy else busy
        finish = start + cost
        queue._busy_until = finish
        queue.jobs_processed += 1
        queue.busy_time += cost
        seq = scheduler._seq
        scheduler._seq = seq + 1
        scheduler._live += 1
        entry = (finish, seq, self._fused_coordinate_write, rec.args, None, None)
        if finish < scheduler._horizon:
            tick = int(finish * scheduler._wheel_inv)
            if tick == scheduler._cursor:
                heapq.heappush(
                    scheduler._slots[tick & scheduler._wheel_mask], entry)
            else:
                scheduler._slots[tick & scheduler._wheel_mask].append(entry)
                scheduler._wheel_count += 1
        else:
            heapq.heappush(scheduler._heap, entry)

    def _fused_coordinate_write(self, rec: FusedWrite) -> None:
        key = rec.key
        config = self.config
        net = self.network
        # _fused_plan, inlined (see _fused_coordinate_read).
        if net.topology._version != net._topo_version:
            net._sync_topology()
        stamp = (self.partitioner.version, net._route_epoch)
        if self._fused_plan_stamp != stamp:
            self._fused_plans.clear()
            self._fused_plan_stamp = stamp
        plan = self._fused_plans.get(key)
        if plan is None:
            plan = self._fused_plan(key)
        local, targets = plan
        version = rec.version
        acks_expected = 0
        if local:
            self.table.apply(key, version)
            rec.acks.append(self.name)
            rec.ack_count = 1
            acks_expected = 1
        # _value_bytes, inlined (updates write one ASCII field).
        value = version.value
        vbytes = (len(value) if type(value) is str and value.isascii()
                  else estimate_payload_size(value))
        if vbytes < config.value_size_bytes:
            vbytes = config.value_size_bytes
        size = self._req_base + vbytes
        if targets:
            # Network.fused_send, inlined per target minus its topology
            # recheck (the plan probe above synced topology in this event).
            # Only sends that were actually scheduled can ever ack; the
            # record is released once all of them (plus the local apply)
            # have, so absorbed late acks keep pool accounting exact.
            scheduler = net.scheduler
            clock = scheduler.clock
            jitter_fraction = net._jitter_fraction
            for node, route, _, write_req in targets:
                src_node, dst_node, stats, base, src_cell, dst_cell = route
                if not src_node.alive:
                    net.messages_dropped += 1
                    continue
                net.messages_sent += 1
                if stats is None:
                    lkey = (src_node.name, dst_node.name)
                    stats = net._links.get(lkey)
                    if stats is None:
                        stats = net._links[lkey] = LinkStats()
                    route[2] = stats
                stats.messages += 1
                stats.bytes += size
                src_cell[0] += size
                if dst_cell is not None:
                    dst_cell[0] += size
                if net._partitioned or net._partitioned_regions:
                    if net.is_partitioned(src_node.name, dst_node.name):
                        net.messages_dropped += 1
                        continue
                if not dst_node.alive:
                    net.messages_dropped += 1
                    continue
                if jitter_fraction > 0:
                    delay = base + jitter_fraction * net._rand() * base
                else:
                    delay = base
                if net._link_extra_ms:
                    delay += net.link_extra_ms(src_node.name, dst_node.name)
                seq = scheduler._seq
                scheduler._seq = seq + 1
                scheduler._live += 1
                timestamp = clock._now + delay
                entry = (timestamp, seq, write_req, (rec, True), None, None)
                if timestamp < scheduler._horizon:
                    tick = int(timestamp * scheduler._wheel_inv)
                    if tick == scheduler._cursor:
                        heapq.heappush(
                            scheduler._slots[tick & scheduler._wheel_mask],
                            entry)
                    else:
                        scheduler._slots[tick & scheduler._wheel_mask].append(
                            entry)
                        scheduler._wheel_count += 1
                else:
                    heapq.heappush(scheduler._heap, entry)
                acks_expected += 1
        rec.acks_expected = acks_expected
        pending = self.partitioner.pending_replicas_for(key)
        if pending:
            for name in pending:
                if name == self.name:
                    continue
                self.writes_forwarded += 1
                rec.recyclable = False
                node = net.node(name)
                net.fused_send_to(self, name, size,
                                  node._fused_write_req, (rec, False))
        if rec.ack_count >= rec.w:
            self._fused_ack_client(rec)

    def _fused_write_req(self, rec: FusedWrite, ack: bool) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        # Node._enqueue, inlined (see _fused_client_read).
        cost = self.config.write_service_ms * self.slowdown_factor
        queue = self.queue
        scheduler = queue._scheduler
        now = scheduler.clock._now
        busy = queue._busy_until
        start = now if now > busy else busy
        finish = start + cost
        queue._busy_until = finish
        queue.jobs_processed += 1
        queue.busy_time += cost
        seq = scheduler._seq
        scheduler._seq = seq + 1
        scheduler._live += 1
        entry = (finish, seq, self._fused_apply_write, (rec, ack), None, None)
        if finish < scheduler._horizon:
            tick = int(finish * scheduler._wheel_inv)
            if tick == scheduler._cursor:
                heapq.heappush(
                    scheduler._slots[tick & scheduler._wheel_mask], entry)
            else:
                scheduler._slots[tick & scheduler._wheel_mask].append(entry)
                scheduler._wheel_count += 1
        else:
            heapq.heappush(scheduler._heap, entry)

    def _fused_apply_write(self, rec: FusedWrite, ack: bool) -> None:
        coordinator = rec.coordinator
        if self.ring_state == "retired":
            self.stale_rejections += 1
            if ack:
                self.network.fused_send_to(
                    self, coordinator.name,
                    _ACK_BYTES,
                    coordinator._fused_write_stale, rec.args)
            return
        self.table.apply(rec.key, rec.version)
        if ack:
            self.network.fused_send_to(
                self, coordinator.name,
                _ACK_BYTES,
                coordinator._fused_on_write_ack, (rec, self.name))

    def _fused_on_write_ack(self, rec: FusedWrite, replica: str) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        # Happy-path acks cannot duplicate (each target acks once); only a
        # rescue re-send (recyclable already cleared) needs the name scan.
        if rec.recyclable or replica not in rec.acks:
            rec.acks.append(replica)
            rec.ack_count += 1
        count = rec.ack_count
        if not rec.acked_client and count >= rec.w:
            self._fused_ack_client(rec)
        if rec.client_done and count >= rec.acks_expected:
            FusedWrite.release(rec)

    def _fused_write_stale(self, rec: FusedWrite) -> None:
        net = self.network
        if not self.alive:
            net.messages_dropped += 1
            return
        net.messages_delivered += 1
        # Mirrors _retry_write_after_stale_epoch (see _fused_read_stale).
        rec.recyclable = False
        self.stale_epoch_retries += 1
        size = (MESSAGE_HEADER_BYTES + self.config.key_size_bytes
                + self._value_bytes(rec.version))
        acks = rec.acks
        for name in self._other_replicas_by_distance(rec.key):
            if name in acks:
                continue
            node = net.node(name)
            net.fused_send_to(self, name, size,
                              node._fused_write_req, (rec, True))

    def _fused_ack_client(self, rec: FusedWrite) -> None:
        rec.acked_client = True
        client = rec.client
        self.network.fused_send_to(
            self, client.name, _ACK_BYTES,
            client._fused_write_ack, rec.args)

    # -- range streaming (ring rebalance) ---------------------------------------
    def begin_stream(self, task: StreamTask,
                     on_complete: Callable[[StreamTask], None]) -> int:
        """Start shipping ``task``'s key range to its target node.

        Stop-and-wait batches of ``config.stream_batch_items`` items: the
        scan and each batch are charged to this node's processing queue, so
        streaming competes with foreground traffic for the same server —
        which is exactly the interference fig15 measures.  ``on_complete``
        fires (on the source's event) once the final batch is acknowledged.
        """
        if task.source != self.name:
            raise ValueError(
                f"stream task sourced at {task.source!r} given to {self.name!r}")
        stream_id = next(self._stream_ids)
        state = _StreamState(stream_id=stream_id, task=task,
                             on_complete=on_complete)
        self._streams[stream_id] = state
        self.process(self._stream_scan, state,
                     service_time_ms=self.config.stream_scan_ms)
        return stream_id

    def _stream_scan(self, state: _StreamState) -> None:
        state.keys = tuple(key for key in self.table.keys()
                           if state.task.contains_key(key))
        self._stream_send_batch(state)

    def _stream_send_batch(self, state: _StreamState) -> None:
        if state.cursor >= len(state.keys):
            del self._streams[state.stream_id]
            state.on_complete(state.task)
            return
        batch = state.keys[state.cursor:
                           state.cursor + self.config.stream_batch_items]
        state.cursor += len(batch)
        items = []
        size = MESSAGE_HEADER_BYTES
        for key in batch:
            version = self.table.get(key)
            if version is None:
                continue
            items.append((key, version.value, version.timestamp))
            size += self.config.key_size_bytes + self._value_bytes(version)
        self.keys_streamed_out += len(items)
        self.send(state.task.target, "stream_data",
                  {"stream_id": state.stream_id, "items": items},
                  size_bytes=size)

    def on_stream_data(self, message: Message) -> None:
        payload = message.payload
        items = payload["items"]
        self.process(self._apply_stream_batch, message.src, payload,
                     service_time_ms=(self.config.stream_apply_ms_per_item
                                      * max(1, len(items))))

    def _apply_stream_batch(self, source: str, payload: dict) -> None:
        for key, value, timestamp in payload["items"]:
            # LWW: a streamed snapshot never clobbers a newer forwarded write.
            self.table.apply(key, VersionedValue(value, tuple(timestamp)))
        self.keys_streamed_in += len(payload["items"])
        self.send(source, "stream_ack", {"stream_id": payload["stream_id"]},
                  size_bytes=MESSAGE_HEADER_BYTES + 10)

    def on_stream_ack(self, message: Message) -> None:
        state = self._streams.get(message.payload["stream_id"])
        if state is None:
            return
        self.process(self._stream_send_batch, state,
                     service_time_ms=self.config.stream_batch_ms)
