"""Binding to the (simulated) Correctable ZooKeeper replicated queue.

Maps the ``enqueue`` and ``dequeue`` operations onto a
:class:`~repro.zookeeper_sim.client.ZKClient` connected to one ensemble
member:

* ``WEAK``   — the contacted replica's local simulation of the operation
  (the CZK fast path);
* ``STRONG`` — the result after Zab commits the operation (atomic).

``invoke`` with both levels issues a single ICG request and receives both
responses; ``invoke_weak`` still executes the operation (it completes in the
background) but only the preliminary result is surfaced.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.bindings.base import Binding, CallbackType
from repro.core.consistency import ConsistencyLevel, STRONG, WEAK
from repro.core.errors import OperationError
from repro.core.operations import Operation
from repro.zookeeper_sim.client import ZKClient


class ZooKeeperQueueBinding(Binding):
    """Correctables binding over a ZooKeeper-backed replicated queue."""

    def __init__(self, client: ZKClient, queue_path: str = "/queue") -> None:
        self.client = client
        self.queue_path = queue_path
        self.clock = client.scheduler.now

    def consistency_levels(self) -> List[ConsistencyLevel]:
        return [WEAK, STRONG]

    def submit_operation(self, operation: Operation,
                         levels: List[ConsistencyLevel],
                         callback: CallbackType) -> None:
        levels = self.validate_levels(levels)
        if operation.name not in ("enqueue", "dequeue"):
            self.reject_unsupported(operation, levels, callback)
            return
        queue_path = operation.key or self.queue_path
        want_weak = WEAK in levels
        want_strong = STRONG in levels

        def _on_preliminary(resp: Dict[str, Any]) -> None:
            if not want_weak:
                return
            callback(WEAK, resp["result"],
                     metadata={"latency_ms": resp["latency_ms"],
                               "preliminary": True})

        def _on_final(resp: Dict[str, Any]) -> None:
            if not want_strong:
                return
            if not resp["ok"]:
                callback(STRONG, None, error=OperationError(resp["error"]))
                return
            callback(STRONG, resp["result"],
                     metadata={"latency_ms": resp["latency_ms"],
                               "preliminary": False})

        # The local-simulation preliminary is only requested when the weak
        # level is wanted; a strong-only invocation is exactly vanilla ZK.
        icg = want_weak
        if operation.name == "enqueue":
            item = operation.args[0]
            self.client.enqueue(queue_path, item, icg=icg,
                                on_preliminary=_on_preliminary,
                                on_final=_on_final)
        else:
            self.client.dequeue(queue_path, icg=icg,
                                on_preliminary=_on_preliminary,
                                on_final=_on_final)
