"""Cache-fronted binding (Section 5.2, "Causal Consistency and Caching").

:class:`CachedStoreBinding` wraps any inner binding and adds a ``CACHED``
level in front of the inner levels:

* ``invoke`` reveals the cached view first (near-instant), then every view
  the inner binding provides — e.g. three views for the smartphone news
  reader of Listing 6 (cache, backup, primary);
* ``invoke_weak`` reads straight from the cache when possible;
* ``invoke_strong`` bypasses the cache entirely;
* writes are write-through: the cache is updated before the write is
  forwarded, so coherence is handled by the binding rather than by
  application code (the point of the Reddit example).
"""

from __future__ import annotations

from typing import List, Optional

from repro.bindings.base import Binding, CallbackType
from repro.cache.client_cache import ClientCache
from repro.core.consistency import CACHED, ConsistencyLevel, sort_levels
from repro.core.operations import Operation
from repro.sim.scheduler import Scheduler


class CachedStoreBinding(Binding):
    """Adds a client-side cache level in front of an inner binding."""

    def __init__(self, inner: Binding, cache: Optional[ClientCache] = None,
                 scheduler: Optional[Scheduler] = None,
                 cache_latency_ms: float = 0.5) -> None:
        self.inner = inner
        self.cache = cache if cache is not None else ClientCache()
        self.scheduler = scheduler
        self.cache_latency_ms = cache_latency_ms
        inner_clock = getattr(inner, "clock", None)
        if scheduler is not None:
            self.clock = scheduler.now
        elif inner_clock is not None:
            self.clock = inner_clock

    def consistency_levels(self) -> List[ConsistencyLevel]:
        return sort_levels([CACHED] + list(self.inner.consistency_levels()))

    def submit_operation(self, operation: Operation,
                         levels: List[ConsistencyLevel],
                         callback: CallbackType) -> None:
        levels = self.validate_levels(levels)
        inner_levels = [lv for lv in levels if lv != CACHED]
        strongest_inner = self.inner.strongest_level()

        if operation.name == "write":
            # Write-through coherence: refresh the cache, then forward.
            self.cache.put(operation.key, operation.args[0])
            if CACHED in levels:
                self._deliver_cached(callback, operation.args[0], hit=True)
            if inner_levels:
                self.inner.submit_operation(operation, inner_levels, callback)
            return

        if CACHED in levels:
            hit, value = self.cache.lookup(operation.key)
            if hit:
                self._deliver_cached(callback, value, hit=True)
            # A miss simply produces no cached view: the next level's view is
            # the first one the application sees.

        def _refreshing_callback(level, value, metadata=None, error=None):
            # Keep the cache coherent with the freshest view we have seen.
            if error is None and operation.name == "read" \
                    and level == strongest_inner:
                self.cache.put(operation.key, value)
            callback(level, value, metadata=metadata, error=error)

        if inner_levels:
            self.inner.submit_operation(operation, inner_levels,
                                        _refreshing_callback)

    def _deliver_cached(self, callback: CallbackType, value, hit: bool) -> None:
        def _run() -> None:
            callback(CACHED, value, metadata={"cache_hit": hit})

        if self.scheduler is None:
            _run()
        else:
            self.scheduler.schedule(self.cache_latency_ms, _run)
