"""Participant side of the two-phase commit protocol.

A :class:`TxnParticipant` is colocated with one storage replica.  It votes
on prepares (taking per-key locks, logging the prepared writes), applies
committed transactions into the replica's local table as ordinary LWW
versions, and answers takeover coordinators with its log state.

Epoch discipline: every coordinator message carries the sender's epoch.  A
participant tracks the highest epoch it has seen and rejects messages from
older epochs — which is what fences a deposed (or partitioned-away)
coordinator out of the protocol the moment its successor's takeover probe
lands.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.cassandra_sim.replica import CassandraReplica
from repro.cassandra_sim.versions import VersionedValue
from repro.core.retry import Deadline
from repro.sim.network import Message, Network
from repro.sim.node import Node
from repro.txn.config import TxnConfig
from repro.txn.log import ParticipantLog, TxnState


class TxnParticipant(Node):
    """One transaction participant, colocated with a storage replica."""

    def __init__(self, name: str, region: str, network: Network,
                 replica: CassandraReplica, config: TxnConfig) -> None:
        super().__init__(name, region, network, host=replica.host)
        self.replica = replica
        self.config = config
        self.log = ParticipantLog()
        #: key -> txn_id currently holding the prepare lock.
        self.locks: Dict[str, str] = {}
        #: Highest coordinator epoch observed.
        self.epoch = 0
        #: txn ids whose writes were applied to the replica table (audit).
        self.applied: set = set()
        # Instrumentation.
        self.votes_yes = 0
        self.votes_no = 0
        self.lock_conflicts = 0
        self.deadline_refusals = 0
        self.stale_epoch_rejections = 0
        self.commits_applied = 0
        self.aborts_logged = 0
        self.takeover_replies = 0

    # -- prepare phase ------------------------------------------------------
    def on_txn_prepare(self, message: Message) -> None:
        payload = message.payload
        if payload["epoch"] < self.epoch:
            self.stale_epoch_rejections += 1
            return
        self.epoch = payload["epoch"]
        self.process(self._handle_prepare, message.src, payload,
                     service_time_ms=self.config.prepare_service_ms)

    def _handle_prepare(self, coordinator: str, payload: Dict[str, Any]) -> None:
        if not self.alive:
            return
        txn_id = payload["txn_id"]
        state = self.log.state(txn_id)
        if state == TxnState.COMMITTED:
            # Idempotent re-prepare of a decided transaction: the decision
            # already stands; re-ack it so the coordinator stops retrying.
            self._send_commit_ack(coordinator, txn_id)
            return
        if state == TxnState.ABORTED:
            self._vote(coordinator, payload, False, "aborted")
            return
        if state == TxnState.PREPARED:
            self._vote(coordinator, payload, True, "prepared")
            return
        deadline = Deadline(payload.get("deadline_ms", float("inf")))
        if deadline.expired(self.scheduler.now()):
            self.deadline_refusals += 1
            self._vote(coordinator, payload, False, "deadline")
            return
        writes = payload["writes"]
        holder = next((self.locks[key] for key in writes
                       if self.locks.get(key, txn_id) != txn_id), None)
        if holder is not None:
            self.lock_conflicts += 1
            self._vote(coordinator, payload, False, "conflict")
            return
        for key in writes:
            self.locks[key] = txn_id
        self.log.record_prepared(txn_id, writes,
                                 tuple(payload["participants"]),
                                 payload["client"], payload["epoch"],
                                 self.scheduler.now())
        self._vote(coordinator, payload, True, "ok")

    def _vote(self, coordinator: str, payload: Dict[str, Any],
              yes: bool, reason: str) -> None:
        if yes:
            self.votes_yes += 1
        else:
            self.votes_no += 1
        self.send(coordinator, "txn_vote", {
            "txn_id": payload["txn_id"],
            "participant": self.name,
            "epoch": self.epoch,
            "vote": yes,
            "reason": reason,
        }, size_bytes=64)

    # -- decision phase -----------------------------------------------------
    def on_txn_commit(self, message: Message) -> None:
        payload = message.payload
        if payload["epoch"] < self.epoch:
            self.stale_epoch_rejections += 1
            return
        self.epoch = payload["epoch"]
        self.process(self._handle_commit, message.src, payload,
                     service_time_ms=self.config.commit_service_ms)

    def _handle_commit(self, coordinator: str, payload: Dict[str, Any]) -> None:
        if not self.alive:
            return
        txn_id = payload["txn_id"]
        record = self.log.get(txn_id)
        if record is None or record.state == TxnState.ABORTED:
            # A commit decision for a transaction with no local prepare can
            # only be a protocol violation upstream; drop it (never apply
            # writes that were not voted on) and let the audit catch it.
            return
        timestamp = tuple(payload["timestamp"])
        if record.state == TxnState.PREPARED:
            self.log.record_committed(txn_id, timestamp, self.scheduler.now())
            for key, value in sorted(record.writes.items()):
                self.replica.table.apply(key, VersionedValue(value, timestamp))
            self.applied.add(txn_id)
            self.commits_applied += 1
            self._release_locks(txn_id)
        self._send_commit_ack(coordinator, txn_id)

    def _send_commit_ack(self, coordinator: str, txn_id: str) -> None:
        self.send(coordinator, "txn_commit_ack",
                  {"txn_id": txn_id, "participant": self.name,
                   "epoch": self.epoch}, size_bytes=48)

    def on_txn_abort(self, message: Message) -> None:
        payload = message.payload
        if payload["epoch"] < self.epoch:
            self.stale_epoch_rejections += 1
            return
        self.epoch = payload["epoch"]
        self.process(self._handle_abort, message.src, payload,
                     service_time_ms=self.config.prepare_service_ms)

    def _handle_abort(self, coordinator: str, payload: Dict[str, Any]) -> None:
        if not self.alive:
            return
        txn_id = payload["txn_id"]
        record = self.log.get(txn_id)
        if record is not None and record.state == TxnState.COMMITTED:
            # An abort can never override a commit; the coordinator group
            # guarantees it never issues one, so just re-ack the commit.
            self._send_commit_ack(coordinator, txn_id)
            return
        if record is None or record.state != TxnState.ABORTED:
            self.log.record_aborted(txn_id, self.scheduler.now())
            self.aborts_logged += 1
        self._release_locks(txn_id)
        self.send(coordinator, "txn_abort_ack",
                  {"txn_id": txn_id, "participant": self.name,
                   "epoch": self.epoch}, size_bytes=48)

    def _release_locks(self, txn_id: str) -> None:
        for key in [k for k, holder in self.locks.items() if holder == txn_id]:
            del self.locks[key]

    # -- takeover recovery --------------------------------------------------
    def on_txn_takeover(self, message: Message) -> None:
        """A successor coordinator announces its epoch and reads our log.

        Bumping the epoch *before* replying is the linchpin: any message the
        deposed coordinator still has in flight arrives with a stale epoch
        and is rejected, so the state in the reply cannot be invalidated by
        old-epoch traffic.
        """
        payload = message.payload
        if payload["epoch"] < self.epoch:
            self.stale_epoch_rejections += 1
            return
        self.epoch = payload["epoch"]
        self.takeover_replies += 1
        self.send(message.src, "txn_takeover_ack", {
            "participant": self.name,
            "epoch": self.epoch,
            "records": self.log.snapshot_payload(),
        }, size_bytes=128 + 64 * len(self.log))

    # -- introspection ------------------------------------------------------
    def held_locks(self) -> Dict[str, str]:
        return dict(self.locks)

    def in_doubt_txns(self) -> list:
        return [record.txn_id for record in self.log.in_doubt()]
