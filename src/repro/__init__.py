"""Correctables: incremental consistency guarantees for replicated objects.

A from-scratch Python reproduction of the OSDI '16 paper by Guerraoui,
Pavlovic and Seredinschi.  The top-level package re-exports the pieces most
applications need:

* the Correctables client API (:class:`CorrectableClient`,
  :class:`Correctable`, consistency levels, operations);
* storage bindings for the simulated Cassandra and ZooKeeper clusters plus
  simpler in-memory / primary-backup / cache-fronted stores;
* the discrete-event simulation substrate and the YCSB-style workloads used
  by the benchmark harnesses in :mod:`repro.bench`.

See ``README.md`` for a quickstart and ``DESIGN.md`` for the full system
inventory.
"""

from repro.core import (
    CACHED,
    CAUSAL,
    STRONG,
    WEAK,
    ConsistencyLevel,
    Correctable,
    CorrectableClient,
    CorrectableState,
    Operation,
    Promise,
    SpeculationStats,
    View,
    custom,
    dequeue,
    enqueue,
    read,
    write,
)

__version__ = "1.0.0"

__all__ = [
    "CACHED",
    "CAUSAL",
    "STRONG",
    "WEAK",
    "ConsistencyLevel",
    "Correctable",
    "CorrectableClient",
    "CorrectableState",
    "Operation",
    "Promise",
    "SpeculationStats",
    "View",
    "custom",
    "dequeue",
    "enqueue",
    "read",
    "write",
    "__version__",
]
