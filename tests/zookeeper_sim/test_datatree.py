"""Tests for the znode data tree."""

import pytest
from hypothesis import given, strategies as st

from repro.zookeeper_sim.datatree import DataTree, NoNodeError, NodeExistsError


class TestCreateGet:
    def test_create_and_get(self):
        tree = DataTree()
        tree.create("/a", data="hello")
        assert tree.get("/a") == "hello"
        assert tree.exists("/a")

    def test_create_nested(self):
        tree = DataTree()
        tree.create("/a")
        tree.create("/a/b", data=1)
        assert tree.get("/a/b") == 1
        assert tree.get_children("/a") == ["b"]

    def test_create_missing_parent_raises(self):
        with pytest.raises(NoNodeError):
            DataTree().create("/a/b")

    def test_duplicate_create_raises(self):
        tree = DataTree()
        tree.create("/a")
        with pytest.raises(NodeExistsError):
            tree.create("/a")

    def test_relative_path_rejected(self):
        with pytest.raises(ValueError):
            DataTree().create("no-slash")

    def test_root_cannot_be_created_or_deleted(self):
        tree = DataTree()
        with pytest.raises(ValueError):
            tree.create("/")
        with pytest.raises(ValueError):
            tree.delete("/")

    def test_get_missing_raises(self):
        with pytest.raises(NoNodeError):
            DataTree().get("/nope")

    def test_set_updates_data_and_version(self):
        tree = DataTree()
        tree.create("/a", data=1)
        tree.set("/a", 2)
        assert tree.get("/a") == 2


class TestSequentialNodes:
    def test_sequence_suffix_and_order(self):
        tree = DataTree()
        tree.create("/q")
        first = tree.create("/q/item-", data="a", sequential=True)
        second = tree.create("/q/item-", data="b", sequential=True)
        assert first == "/q/item-0000000000"
        assert second == "/q/item-0000000001"
        assert tree.get_children("/q") == ["item-0000000000", "item-0000000001"]

    def test_sequence_survives_deletion(self):
        tree = DataTree()
        tree.create("/q")
        first = tree.create("/q/item-", sequential=True)
        tree.delete(first)
        second = tree.create("/q/item-", sequential=True)
        assert second.endswith("0000000001")

    def test_children_sorted_lexicographically(self):
        tree = DataTree()
        tree.create("/q")
        for _ in range(12):
            tree.create("/q/item-", sequential=True)
        children = tree.get_children("/q")
        assert children == sorted(children)
        assert tree.child_count("/q") == 12


class TestDelete:
    def test_delete_removes_node(self):
        tree = DataTree()
        tree.create("/a", data=1)
        tree.delete("/a")
        assert not tree.exists("/a")

    def test_delete_missing_raises(self):
        with pytest.raises(NoNodeError):
            DataTree().delete("/a")

    def test_delete_non_leaf_rejected(self):
        tree = DataTree()
        tree.create("/a")
        tree.create("/a/b")
        with pytest.raises(ValueError):
            tree.delete("/a")


@given(st.integers(min_value=1, max_value=40))
def test_fifo_order_matches_insertion_order(count):
    """Dequeuing by lowest child name yields items in insertion order."""
    tree = DataTree()
    tree.create("/q")
    for i in range(count):
        tree.create("/q/item-", data=i, sequential=True)
    drained = []
    while tree.child_count("/q"):
        head = tree.get_children("/q")[0]
        drained.append(tree.get(f"/q/{head}"))
        tree.delete(f"/q/{head}")
    assert drained == list(range(count))
