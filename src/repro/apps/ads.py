"""The ad-serving case study (Section 4.2, Listing 4, Figure 11).

``fetch_ads_by_user_id`` is a two-step application operation:

1. read the user's list of personalized ad references;
2. fetch every referenced ad and post-process it.

With ICG, step 1 uses ``invoke`` and step 2 runs speculatively on the
preliminary reference list; if the final list confirms the preliminary one
(the common case) the whole operation completes at roughly the latency of a
weak read plus the prefetch, hiding the latency of strong consistency.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.apps.datasets import AdsDataset
from repro.core.client import CorrectableClient
from repro.core.correctable import Correctable
from repro.core.operations import read, write
from repro.core.promise import Promise
from repro.core.speculation import SpeculationStats

#: ``on_done(info)`` with keys ads / latency_ms / speculation_confirmed.
DoneCallback = Callable[[Dict[str, Any]], None]


class AdServingSystem:
    """Serves personalized ads from a replicated store via Correctables."""

    def __init__(self, client: CorrectableClient, dataset: AdsDataset,
                 clock: Optional[Callable[[], float]] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.client = client
        self.dataset = dataset
        self._clock = clock if clock is not None else getattr(client.binding, "clock", None)
        self._rng = rng if rng is not None else random.Random(13)
        self.speculation_stats = SpeculationStats()
        self.operations = 0

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- the central operation ------------------------------------------------
    def fetch_ads_by_user_id(self, profile_key: str, on_done: DoneCallback,
                             speculate: bool = True) -> Correctable:
        """Fetch and post-process a user's ads (Listing 4).

        With ``speculate=True`` the reference list is read with ICG and the
        ads are prefetched on the preliminary list; otherwise the reference
        list is read with strong consistency only (the Figure 11 baseline).
        """
        self.operations += 1
        started = self._now()

        def _get_ads(refs: List[str]) -> Promise:
            """Fetch every referenced ad (strong reads) and localize it."""
            if not refs:
                return Promise.resolved([])
            fetches = [self.client.invoke_strong(read(ref)) for ref in refs]
            return Correctable.all(fetches).then(
                lambda bodies: [self._post_process(body) for body in bodies])

        def _deliver(ads: List[str], confirmed: bool) -> None:
            on_done({
                "ads": ads,
                "latency_ms": self._now() - started,
                "speculation_confirmed": confirmed,
            })

        if speculate:
            call_stats = SpeculationStats()
            refs_correctable = self.client.invoke(read(profile_key))
            result = refs_correctable.speculate(_get_ads, stats=call_stats)

            def _on_final(view) -> None:
                self.speculation_stats.merge(call_stats)
                _deliver(view.value, confirmed=call_stats.misspeculations == 0)

            result.set_callbacks(
                on_final=_on_final,
                on_error=lambda exc: on_done({"error": exc,
                                              "latency_ms": self._now() - started}),
            )
            return result

        refs_correctable = self.client.invoke_strong(read(profile_key))
        derived = Correctable(clock=self._clock)
        refs_correctable.set_callbacks(
            on_final=lambda view: _get_ads(view.value).on_ready(
                lambda ads: (derived.close(ads, view.consistency),
                             _deliver(ads, confirmed=True))),
            on_error=lambda exc: on_done({"error": exc,
                                          "latency_ms": self._now() - started}),
        )
        return derived

    @staticmethod
    def _post_process(body: Any) -> str:
        """Stand-in for localization / personalization of an ad body."""
        return f"<ad>{body}</ad>"

    # -- profile updates (the write half of the YCSB mix) -------------------------
    def update_profile(self, profile_key: str,
                       on_done: Optional[DoneCallback] = None) -> Correctable:
        """Replace a user's ad references with a freshly personalized list."""
        refs = self.dataset.random_refs(self._rng)
        started = self._now()
        correctable = self.client.invoke_strong(write(profile_key, refs))
        if on_done is not None:
            correctable.set_callbacks(
                on_final=lambda view: on_done(
                    {"latency_ms": self._now() - started, "refs": refs}),
                on_error=lambda exc: on_done(
                    {"error": exc, "latency_ms": self._now() - started}),
            )
        return correctable
