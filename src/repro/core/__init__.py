"""Correctables core: the paper's primary contribution.

This package implements the client-side abstraction described in Sections 3
and 4 of the paper:

* :class:`~repro.core.consistency.ConsistencyLevel` — ordered consistency
  levels (weak < causal < strong by default; bindings may advertise others).
* :class:`~repro.core.promise.Promise` — the classic single-value
  asynchronous placeholder Correctables generalize.
* :class:`~repro.core.correctable.Correctable` — a placeholder for a result
  that is refined incrementally: it starts *updating*, emits preliminary
  views, and eventually *closes* with a final view (or an error).
* :class:`~repro.core.client.CorrectableClient` — the three-method API
  (``invoke_weak``, ``invoke_strong``, ``invoke``) wired to a storage
  binding.
* :func:`~repro.core.correctable.Correctable.speculate` — the convenience
  combinator capturing the speculation pattern of Listing 3.
* :class:`~repro.core.cluster_spec.ClusterSpec` — declarative construction
  of the simulated deployments every experiment harness drives.
"""

from repro.core.consistency import ConsistencyLevel, WEAK, CAUSAL, STRONG, CACHED
from repro.core.errors import (
    CorrectableError,
    OperationError,
    BindingError,
    TimeoutError_,
    UnsupportedConsistencyError,
    InvalidStateError,
)
from repro.core.operations import Operation, read, write, enqueue, dequeue, custom
from repro.core.promise import Promise
from repro.core.views import View
from repro.core.correctable import Correctable, CorrectableState
from repro.core.speculation import SpeculationStats
from repro.core.client import CorrectableClient
from repro.core.cluster_spec import BuiltCluster, ClusterSpec

__all__ = [
    "BuiltCluster",
    "ClusterSpec",
    "ConsistencyLevel",
    "WEAK",
    "CAUSAL",
    "STRONG",
    "CACHED",
    "CorrectableError",
    "OperationError",
    "BindingError",
    "TimeoutError_",
    "UnsupportedConsistencyError",
    "InvalidStateError",
    "Operation",
    "read",
    "write",
    "enqueue",
    "dequeue",
    "custom",
    "Promise",
    "View",
    "Correctable",
    "CorrectableState",
    "SpeculationStats",
    "CorrectableClient",
]
