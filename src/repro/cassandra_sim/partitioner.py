"""Consistent-hashing ring partitioner with live membership changes.

Maps every key to an ordered preference list of ``replication_factor``
replicas.  With the paper's setup (3 nodes, RF = 3) every node owns every
key, but the ring is implemented faithfully so clusters larger than the
replication factor behave correctly too.

The ring is a *mutable, versioned* object: :meth:`RingPartitioner.add_node`,
:meth:`~RingPartitioner.remove_node` and :meth:`~RingPartitioner.decommission`
edit the token layout and bump :attr:`~RingPartitioner.version` (the ring
*epoch*).  Preference lists are cached per key and invalidated by epoch —
an edit clears the cache once and lookups rebuild lazily, never wholesale.
Every edit returns a deterministic :class:`RingChange` whose
:class:`StreamTask` list says exactly which key ranges move between which
nodes, so a joining/leaving node transfers precisely the ranges it
gains/loses while the rest of the cluster keeps serving.

Determinism contract: the token layout is a pure function of the node names
and their vnode counts (``md5(f"{name}#{vnode}")``) — independent of join
order, seeds, or wall clock — so the same membership history always yields
the same ring, the same preference lists, and the same streaming plans.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


def _hash_token(value: str) -> int:
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def key_token(key: str) -> int:
    """Position of ``key`` on the token ring (public for range checks)."""
    return _hash_token(key)


def node_tokens(name: str, vnodes: int) -> List[int]:
    """The vnode tokens a node owns — a pure function of name and count."""
    return [_hash_token(f"{name}#{vnode}") for vnode in range(vnodes)]


def token_in_range(token: int, start: int, end: int) -> bool:
    """Whether ``token`` falls in the half-open ring range ``[start, end)``.

    Ranges wrap: when ``start >= end`` the range covers the ring seam
    (``token >= start or token < end``).
    """
    if start < end:
        return start <= token < end
    return token >= start or token < end


@dataclass(frozen=True)
class StreamTask:
    """One key range that must move from ``source`` to ``target``.

    The range is half-open ``[start_token, end_token)`` on the ring (wrapping
    when ``start_token >= end_token``); a key belongs to the task iff
    :func:`token_in_range` holds for its token.
    """

    source: str
    target: str
    start_token: int
    end_token: int

    def contains_key(self, key: str) -> bool:
        return token_in_range(_hash_token(key), self.start_token,
                              self.end_token)


@dataclass(frozen=True)
class RingChange:
    """A planned membership edit plus its deterministic streaming plan.

    ``kind`` is ``"join"``, ``"decommission"`` (graceful: the leaving node
    streams its ranges out) or ``"remove"`` (forced: a dead node's ranges are
    re-replicated from the surviving owners).  ``base_version`` is the ring
    epoch the plan was computed against; committing it produces
    ``base_version + 1``.
    """

    kind: str
    node: str
    vnodes: int
    base_version: int
    tasks: Tuple[StreamTask, ...]

    def total_ranges(self) -> int:
        return len(self.tasks)


class RingPartitioner:
    """Consistent hashing with virtual nodes and live membership edits."""

    def __init__(self, node_names: Sequence[str], replication_factor: int,
                 vnodes_per_node: int = 8) -> None:
        if not node_names:
            raise ValueError("partitioner needs at least one node")
        if replication_factor <= 0:
            raise ValueError("replication factor must be positive")
        if replication_factor > len(node_names):
            raise ValueError(
                f"replication factor {replication_factor} exceeds cluster "
                f"size {len(node_names)}")
        if vnodes_per_node <= 0:
            raise ValueError("vnodes_per_node must be positive")
        self.node_names = list(node_names)
        self.replication_factor = replication_factor
        self.vnodes_per_node = vnodes_per_node
        #: Ring epoch: bumped by every committed membership change.  Request
        #: coordination stamps messages with it so replicas can reject
        #: operations routed by a stale preference list.
        self.version = 0
        #: Per-node vnode count (heterogeneous counts are allowed on join).
        self._vnodes: Dict[str, int] = {
            name: vnodes_per_node for name in self.node_names}
        self._ring: List[tuple] = self._build_ring(self._vnodes)
        self._tokens = [token for token, _ in self._ring]
        # Preference lists are pure functions of (key, ring epoch); the cache
        # is cleared once per committed edit and refilled lazily per key —
        # it is never rebuilt wholesale (hot path: every coordinated
        # read/write hashes its key).
        self._preference_cache: dict = {}
        #: In-flight membership change (between ``begin`` and ``commit``).
        self._pending: Optional[RingChange] = None
        self._pending_ring: List[tuple] = []
        self._pending_tokens: List[int] = []
        self._pending_cache: dict = {}

    # -- ring construction --------------------------------------------------
    @staticmethod
    def _build_ring(vnode_counts: Dict[str, int]) -> List[tuple]:
        ring: List[tuple] = []
        for name, vnodes in vnode_counts.items():
            for token in node_tokens(name, vnodes):
                ring.append((token, name))
        ring.sort()
        return ring

    @staticmethod
    def _owners_at(ring: List[tuple], tokens: List[int], token: int,
                   count: int) -> Tuple[str, ...]:
        """The first ``count`` distinct owners clockwise from ``token``."""
        owners: List[str] = []
        index = bisect_right(tokens, token) % len(ring)
        while len(owners) < count:
            name = ring[index][1]
            if name not in owners:
                owners.append(name)
            index = (index + 1) % len(ring)
        return tuple(owners)

    # -- lookups -------------------------------------------------------------
    def replicas_for(self, key: str) -> Tuple[str, ...]:
        """The ordered preference list of replicas responsible for ``key``.

        Returned as an immutable tuple: the entry is cached and shared
        between callers, and survives until the next ring edit invalidates
        it.
        """
        cached = self._preference_cache.get(key)
        if cached is not None:
            return cached
        replicas = self._owners_at(self._ring, self._tokens, _hash_token(key),
                                   self.replication_factor)
        if len(self._preference_cache) >= 65536:
            self._preference_cache.clear()
        self._preference_cache[key] = replicas
        return replicas

    def primary_for(self, key: str) -> str:
        """The first replica in the preference list for ``key``."""
        return self.replicas_for(key)[0]

    def is_replica(self, node_name: str, key: str) -> bool:
        return node_name in self.replicas_for(key)

    def pending_replicas_for(self, key: str) -> Tuple[str, ...]:
        """Nodes that will *gain* ``key`` once the in-flight change commits.

        Empty outside a membership change.  Coordinators forward writes to
        these nodes (without counting them towards the write quorum) so a
        joining or gaining node misses no write issued while its ranges
        stream — the invariant behind zero lost acknowledged writes.
        """
        if self._pending is None:
            return ()
        cached = self._pending_cache.get(key)
        if cached is not None:
            return cached
        current = self.replicas_for(key)
        future = self._owners_at(self._pending_ring, self._pending_tokens,
                                 _hash_token(key), self.replication_factor)
        gained = tuple(name for name in future if name not in current)
        if len(self._pending_cache) >= 65536:
            self._pending_cache.clear()
        self._pending_cache[key] = gained
        return gained

    @property
    def pending_change(self) -> Optional[RingChange]:
        return self._pending

    # -- planning ------------------------------------------------------------
    def _plan(self, kind: str, node: str,
              vnode_counts_after: Dict[str, int]) -> RingChange:
        old_ring, old_tokens = self._ring, self._tokens
        new_ring = self._build_ring(vnode_counts_after)
        new_tokens = [token for token, _ in new_ring]
        rf = self.replication_factor
        boundaries = sorted(set(old_tokens) | set(new_tokens))
        tasks: List[StreamTask] = []
        for index, end in enumerate(boundaries):
            start = boundaries[index - 1]
            # Every [start, end) interval lies inside one elementary interval
            # of both rings (the boundaries are the union), so its start
            # token is a faithful representative for ownership lookups.
            old_owners = self._owners_at(old_ring, old_tokens, start, rf)
            new_owners = self._owners_at(new_ring, new_tokens, start, rf)
            for gainer in new_owners:
                if gainer in old_owners:
                    continue
                if kind == "join":
                    source = old_owners[0]
                elif kind == "decommission":
                    # The leaving node owns the range (ownership only changes
                    # on intervals whose walk passed its tokens) and streams
                    # it out itself.
                    source = node
                else:  # forced remove: the dead node cannot stream
                    survivors = [n for n in old_owners if n != node]
                    if not survivors:  # RF=1 forced removal: range is lost
                        continue
                    source = survivors[0]
                tasks.append(StreamTask(source=source, target=gainer,
                                        start_token=start, end_token=end))
        return RingChange(kind=kind, node=node,
                          vnodes=(vnode_counts_after.get(node)
                                  or self._vnodes.get(node, 0)),
                          base_version=self.version, tasks=tuple(tasks))

    def plan_join(self, name: str,
                  vnodes: Optional[int] = None) -> RingChange:
        """Plan adding ``name``: which ranges it gains, and from whom."""
        if name in self._vnodes:
            raise ValueError(f"node {name!r} is already in the ring")
        if self._pending is not None:
            raise RuntimeError("a membership change is already in flight")
        vnodes = self.vnodes_per_node if vnodes is None else vnodes
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        after = dict(self._vnodes)
        after[name] = vnodes
        return self._plan("join", name, after)

    def _plan_removal(self, kind: str, name: str) -> RingChange:
        if name not in self._vnodes:
            raise ValueError(f"node {name!r} is not in the ring")
        if self._pending is not None:
            raise RuntimeError("a membership change is already in flight")
        if len(self._vnodes) - 1 < self.replication_factor:
            raise ValueError(
                f"removing {name!r} would leave {len(self._vnodes) - 1} "
                f"nodes, fewer than the replication factor "
                f"{self.replication_factor}")
        after = dict(self._vnodes)
        del after[name]
        return self._plan(kind, name, after)

    def plan_decommission(self, name: str) -> RingChange:
        """Plan a graceful removal: the leaving node streams its ranges."""
        return self._plan_removal("decommission", name)

    def plan_remove(self, name: str) -> RingChange:
        """Plan a forced removal: survivors re-replicate the lost ranges."""
        return self._plan_removal("remove", name)

    # -- two-phase application ------------------------------------------------
    def begin(self, change: RingChange) -> None:
        """Mark ``change`` in flight: pending owners start receiving writes.

        Between ``begin`` and ``commit`` the serving ring is unchanged —
        reads and writes route to the current owners — but
        :meth:`pending_replicas_for` exposes the nodes each key's range is
        moving to, so coordinators can forward writes alongside the
        streaming snapshots.
        """
        if self._pending is not None:
            raise RuntimeError("a membership change is already in flight")
        if change.base_version != self.version:
            raise ValueError(
                f"change was planned against ring version "
                f"{change.base_version}, current is {self.version}")
        after = dict(self._vnodes)
        if change.kind == "join":
            after[change.node] = change.vnodes
        else:
            del after[change.node]
        self._pending = change
        self._pending_ring = self._build_ring(after)
        self._pending_tokens = [token for token, _ in self._pending_ring]
        self._pending_cache = {}

    def commit(self, change: RingChange) -> None:
        """Apply an in-flight change: new epoch, caches invalidated."""
        if self._pending is not change:
            raise RuntimeError("commit does not match the in-flight change")
        if change.kind == "join":
            self._vnodes[change.node] = change.vnodes
            self.node_names.append(change.node)
        else:
            del self._vnodes[change.node]
            self.node_names.remove(change.node)
        self._ring = self._pending_ring
        self._tokens = self._pending_tokens
        self.version += 1
        self._preference_cache = {}
        self._pending = None
        self._pending_ring = []
        self._pending_tokens = []
        self._pending_cache = {}

    def abort(self, change: RingChange) -> None:
        """Drop an in-flight change without touching the serving ring."""
        if self._pending is not change:
            raise RuntimeError("abort does not match the in-flight change")
        self._pending = None
        self._pending_ring = []
        self._pending_tokens = []
        self._pending_cache = {}

    # -- one-shot edits --------------------------------------------------------
    def add_node(self, name: str, vnodes: Optional[int] = None) -> RingChange:
        """Add ``name`` to the ring immediately; returns the streaming plan.

        One-shot begin+commit, for callers that orchestrate data movement
        themselves (or tests of the layout); live clusters use the
        two-phase :meth:`plan_join`/:meth:`begin`/:meth:`commit` protocol
        through :class:`~repro.cassandra_sim.cluster.CassandraCluster`.
        """
        change = self.plan_join(name, vnodes)
        self.begin(change)
        self.commit(change)
        return change

    def decommission(self, name: str) -> RingChange:
        """Remove ``name`` gracefully (it sources its ranges); one-shot."""
        change = self.plan_decommission(name)
        self.begin(change)
        self.commit(change)
        return change

    def remove_node(self, name: str) -> RingChange:
        """Remove ``name`` forcibly (survivors re-replicate); one-shot."""
        change = self.plan_remove(name)
        self.begin(change)
        self.commit(change)
        return change

    # -- introspection ---------------------------------------------------------
    def contains(self, name: str) -> bool:
        return name in self._vnodes

    def vnode_count(self, name: str) -> int:
        return self._vnodes.get(name, 0)

    def token_layout(self) -> Tuple[tuple, ...]:
        """The sorted ``(token, node)`` ring — the determinism fingerprint."""
        return tuple(self._ring)
