"""Tests for the in-memory LocalBinding and LocalStore."""

import random

import pytest

from repro.bindings.local import LocalBinding, LocalStore
from repro.core.client import CorrectableClient
from repro.core.consistency import STRONG, WEAK
from repro.core.errors import OperationError
from repro.core.operations import dequeue, enqueue, read, write
from repro.sim.scheduler import Scheduler


class TestLocalStore:
    def test_put_get(self):
        store = LocalStore()
        store.put("k", 1)
        assert store.get("k") == 1
        assert store.contains("k")
        assert store.keys() == ["k"]

    def test_get_missing_raises(self):
        with pytest.raises(OperationError):
            LocalStore().get("nope")

    def test_stale_value_is_previous(self):
        store = LocalStore()
        store.put("k", "old")
        store.put("k", "new")
        assert store.get_stale("k") == "old"
        assert store.get("k") == "new"

    def test_stale_without_history_falls_back(self):
        store = LocalStore()
        store.put("k", "only")
        assert store.get_stale("k") == "only"

    def test_queue_fifo(self):
        store = LocalStore()
        store.enqueue("q", "a")
        store.enqueue("q", "b")
        assert store.peek("q") == "a"
        assert store.dequeue("q") == "a"
        assert store.queue_length("q") == 1

    def test_dequeue_empty_returns_none(self):
        assert LocalStore().dequeue("q") is None


class TestSynchronousBinding:
    def test_read_via_client(self):
        store = LocalStore()
        store.put("k", "v")
        client = CorrectableClient(LocalBinding(store))
        c = client.invoke(read("k"))
        assert c.is_final()
        assert c.value() == "v"
        assert len(c.views()) == 2
        assert c.views()[0].consistency == WEAK
        assert c.final_view().consistency == STRONG

    def test_read_missing_key_errors(self):
        client = CorrectableClient(LocalBinding())
        c = client.invoke_strong(read("missing"))
        assert c.is_error()

    def test_write_applies_to_store(self):
        binding = LocalBinding()
        client = CorrectableClient(binding)
        client.invoke_strong(write("k", 42))
        assert binding.store.get("k") == 42

    def test_weak_only_write_does_not_mutate(self):
        binding = LocalBinding()
        binding.store.put("k", "orig")
        client = CorrectableClient(binding)
        client.invoke_weak(write("k", "tentative"))
        assert binding.store.get("k") == "orig"

    def test_stale_probability_one_returns_previous_value(self):
        binding = LocalBinding(stale_probability=1.0, rng=random.Random(1))
        binding.store.put("k", "old")
        binding.store.put("k", "new")
        client = CorrectableClient(binding)
        c = client.invoke(read("k"))
        assert c.views()[0].value == "old"    # weak view is stale
        assert c.value() == "new"             # final view is authoritative

    def test_queue_operations(self):
        binding = LocalBinding()
        client = CorrectableClient(binding)
        client.invoke_strong(enqueue("q", "t1"))
        client.invoke_strong(enqueue("q", "t2"))
        c = client.invoke(dequeue("q"))
        assert c.value()["item"] == "t1"
        assert c.value()["remaining"] == 1

    def test_unsupported_operation_errors(self):
        from repro.core.operations import custom
        client = CorrectableClient(LocalBinding())
        c = client.invoke_strong(custom("scan", "tbl"))
        assert c.is_error()


class TestScheduledBinding:
    def test_delays_applied(self):
        scheduler = Scheduler()
        binding = LocalBinding(scheduler=scheduler, weak_delay_ms=5,
                               strong_delay_ms=50)
        binding.store.put("k", "v")
        client = CorrectableClient(binding)
        times = []
        c = client.invoke(read("k"))
        c.set_callbacks(on_update=lambda v: times.append(("weak", scheduler.now())),
                        on_final=lambda v: times.append(("strong", scheduler.now())))
        scheduler.run_until_idle()
        assert times == [("weak", 5.0), ("strong", 50.0)]

    def test_views_timestamped_with_sim_clock(self):
        scheduler = Scheduler()
        binding = LocalBinding(scheduler=scheduler)
        binding.store.put("k", "v")
        client = CorrectableClient(binding)
        c = client.invoke_strong(read("k"))
        scheduler.run_until_idle()
        assert c.final_view().timestamp == pytest.approx(50.0)

    def test_operations_counter(self):
        binding = LocalBinding()
        binding.store.put("k", "v")
        client = CorrectableClient(binding)
        client.invoke(read("k"))
        client.invoke_weak(read("k"))
        assert binding.operations_submitted == 2
