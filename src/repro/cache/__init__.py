"""Client-side caching substrate used by the cache-backed bindings."""

from repro.cache.client_cache import ClientCache

__all__ = ["ClientCache"]
