"""Tests for Cassandra's fault-recovery paths: coordinator timeouts with
retry/downgrade, client-side failover, read repair after recovery, and
late-preliminary accounting."""

import pytest

from repro.bindings.cassandra import CassandraBinding
from repro.cassandra_sim.cluster import CassandraCluster
from repro.cassandra_sim.config import CassandraConfig
from repro.core.client import CorrectableClient
from repro.core.operations import read
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region


def _build(config=None, fallbacks=True, seed=11):
    env = SimEnvironment(seed=seed)
    config = config or CassandraConfig.fault_tolerant()
    cluster = CassandraCluster(env, config)
    cluster.preload({f"key{i}": f"value{i}" for i in range(10)})
    client = cluster.add_client("client", Region.IRL, Region.FRK,
                                fallbacks=fallbacks)
    return env, cluster, client


class TestCoordinatorRetry:
    def test_quorum_read_spans_replica_crash_via_retry(self):
        """A quorum-2 read completes although a quorum member is down:
        the coordinator re-solicits the remaining replica."""
        env, cluster, client = _build()
        cluster.replica_in(Region.IRL).crash()

        results = []
        client.read("key1", r=2, icg=False, on_final=results.append)
        env.run_until_idle()

        assert len(results) == 1
        assert results[0]["value"] == "value1"
        assert "error" not in results[0]
        coordinator = cluster.replica_in(Region.FRK)
        assert coordinator.read_retries >= 1
        # The full quorum was eventually met by the third replica, so the
        # response is not marked degraded.
        assert results[0]["degraded"] is False

    def test_read_downgrades_when_quorum_unreachable(self):
        """With two replicas down, R=2 cannot be met; after retries the
        coordinator answers from its local copy, flagged as degraded."""
        env, cluster, client = _build()
        cluster.replica_in(Region.IRL).crash()
        cluster.replica_in(Region.VRG).crash()

        results = []
        client.read("key2", r=2, icg=False, on_final=results.append)
        env.run_until_idle()

        assert len(results) == 1
        assert results[0]["value"] == "value2"
        assert results[0]["degraded"] is True
        coordinator = cluster.replica_in(Region.FRK)
        assert coordinator.reads_downgraded == 1

    def test_read_fails_without_downgrade(self):
        """With downgrading disabled the coordinator reports an error
        instead of silently hanging."""
        config = CassandraConfig.fault_tolerant(downgrade_on_timeout=False,
                                                client_timeout_ms=0.0)
        env, cluster, client = _build(config=config)
        cluster.replica_in(Region.IRL).crash()
        cluster.replica_in(Region.VRG).crash()
        # Make the only reachable copy the coordinator itself ineligible by
        # asking for a quorum the survivors cannot form.
        results = []
        client.read("key3", r=3, icg=False, on_final=results.append)
        env.run_until_idle()

        # Downgrade disabled: the coordinator has its local response only
        # (1 < 3) and, configured not to downgrade but having at least one
        # response, still errors out? No — with responses present but
        # downgrade disabled, the read reports an error to the client.
        assert len(results) == 1
        assert results[0].get("error")
        assert cluster.replica_in(Region.FRK).reads_failed == 1

    def test_write_survives_single_crash_without_retry(self):
        """Writes already fan out to every replica, so one crash leaves the
        quorum intact and no retry is needed."""
        env, cluster, client = _build()
        cluster.replica_in(Region.IRL).crash()

        results = []
        client.write("key4", "new-value", w=2, on_final=results.append)
        env.run_until_idle()

        assert len(results) == 1
        assert results[0]["value"] is True
        assert results[0]["degraded"] is False
        assert cluster.replica_in(Region.FRK).write_retries == 0

    def test_write_retries_then_downgrades_when_quorum_unreachable(self):
        """With both other replicas down, W=2 cannot be met: the coordinator
        retries, then acknowledges with its own ack only, flagged degraded."""
        env, cluster, client = _build()
        cluster.replica_in(Region.IRL).crash()
        cluster.replica_in(Region.VRG).crash()

        results = []
        client.write("key4", "new-value", w=2, on_final=results.append)
        env.run_until_idle()

        assert len(results) == 1
        assert results[0]["value"] is True
        assert results[0]["degraded"] is True
        coordinator = cluster.replica_in(Region.FRK)
        assert coordinator.write_retries >= 1
        assert coordinator.writes_downgraded == 1
        assert coordinator.table.read("key4").value == "new-value"

    def test_timeouts_disabled_by_default(self):
        """The default (seed) configuration schedules no timeout machinery."""
        env, cluster, client = _build(config=CassandraConfig())
        results = []
        client.read("key1", r=2, on_final=results.append)
        env.run_until_idle()
        assert len(results) == 1
        coordinator = cluster.replica_in(Region.FRK)
        assert coordinator.read_retries == 0
        assert coordinator.reads_downgraded == 0


class TestClientFailover:
    def test_client_fails_over_when_coordinator_crashes(self):
        env, cluster, client = _build()
        cluster.replica_in(Region.FRK).crash()  # the client's contact

        results = []
        client.read("key5", r=2, icg=False, on_final=results.append)
        env.run_until_idle()

        assert len(results) == 1
        assert results[0]["value"] == "value5"
        assert client.retries >= 1
        assert client.failed_requests == 0

    def test_client_reports_error_when_everything_is_down(self):
        env, cluster, client = _build()
        for replica in cluster.replicas:
            replica.crash()

        results = []
        client.read("key6", r=2, on_final=results.append)
        env.run_until_idle()

        assert len(results) == 1
        assert results[0].get("error")
        assert client.failed_requests == 1


class TestReadRepair:
    def test_recovered_replica_repaired_by_quorum_read(self):
        """A replica that missed a write while crashed converges after the
        partition of its downtime 'heals' (it recovers) and a quorum read
        observes the divergent responses."""
        env, cluster, client = _build()
        lagging = cluster.replica_in(Region.IRL)
        lagging.crash()

        done = []
        client.write("key7", "fresh", w=1, on_final=done.append)
        env.run_until_idle()
        assert done

        lagging.recover()
        assert lagging.table.read("key7").value == "value7"  # still stale

        results = []
        client.read("key7", r=3, icg=False, on_final=results.append)
        env.run_until_idle()
        assert results[0]["value"] == "fresh"
        # Read repair pushed the resolved version to the stale replica.
        env.run_until_idle()
        assert lagging.table.read("key7").value == "fresh"


class TestLatePreliminaries:
    def test_late_preliminary_counted_by_client(self):
        """After a failover, the slow original coordinator's preliminary
        arrives once the request already completed elsewhere; the client
        drops it and counts it — the wire-level analogue of a Correctable
        discarding a post-close update."""
        env, cluster, node = _build()
        # The contact coordinator is alive but slow *and* partitioned away
        # from both other replicas: the client times out and completes via a
        # fallback coordinator, while the original coordinator — unable to
        # assemble its quorum — still flushes its (now useless) preliminary.
        frk = cluster.replica_in(Region.FRK)
        irl = cluster.replica_in(Region.IRL)
        vrg = cluster.replica_in(Region.VRG)
        frk.slow_down(700.0)
        env.network.partition(frk.name, irl.name)
        env.network.partition(frk.name, vrg.name)

        correctable_client = CorrectableClient(CassandraBinding(node))
        c = correctable_client.invoke(read("key8"))
        env.run_until_idle()

        assert c.is_final()
        assert c.value() == "value8"
        assert node.retries >= 1
        # The slow coordinator's preliminary landed after the final view:
        # dropped at the client, never delivered to the Correctable.
        assert node.late_preliminaries >= 1

    def test_late_update_after_close_increments_discarded_updates(self):
        """Correctable semantics under reordered deliveries: updates landing
        after close() are dropped and counted, never delivered."""
        from repro.core.consistency import STRONG, WEAK
        from repro.core.correctable import Correctable

        c = Correctable()
        delivered = []
        c.on_update(delivered.append)
        c.close("final", STRONG)
        assert c.update("late-preliminary", WEAK) is None
        assert c.update("even-later", WEAK) is None
        assert c.discarded_updates == 2
        assert delivered == []
        assert c.value() == "final"
