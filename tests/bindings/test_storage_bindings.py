"""Tests for the Cassandra and ZooKeeper bindings over the simulated clusters."""

import pytest

from repro.bindings.cassandra import CassandraBinding
from repro.bindings.zookeeper import ZooKeeperQueueBinding
from repro.core.client import CorrectableClient
from repro.core.consistency import STRONG, WEAK
from repro.core.operations import custom, dequeue, enqueue, read, write


class TestCassandraBinding:
    def test_levels(self, cassandra_setup):
        _, _, node = cassandra_setup
        binding = CassandraBinding(node)
        assert binding.consistency_levels() == [WEAK, STRONG]
        assert binding.supports(WEAK)

    def test_icg_read_yields_two_views(self, cassandra_setup):
        env, _, node = cassandra_setup
        client = CorrectableClient(CassandraBinding(node))
        c = client.invoke(read("key1"))
        env.run_until_idle()
        assert c.is_final()
        assert len(c.views()) == 2
        assert c.views()[0].consistency == WEAK
        assert c.value() == "value1"
        assert c.views()[0].timestamp < c.views()[1].timestamp

    def test_weak_read_single_view(self, cassandra_setup):
        env, _, node = cassandra_setup
        client = CorrectableClient(CassandraBinding(node))
        c = client.invoke_weak(read("key2"))
        env.run_until_idle()
        assert c.is_final()
        assert len(c.views()) == 1
        assert c.final_view().consistency == WEAK

    def test_strong_read_single_view_higher_latency(self, cassandra_setup):
        env, _, node = cassandra_setup
        client = CorrectableClient(CassandraBinding(node))
        weak = client.invoke_weak(read("key2"))
        strong = client.invoke_strong(read("key2"))
        env.run_until_idle()
        assert strong.final_view().metadata["latency_ms"] > \
            weak.final_view().metadata["latency_ms"]

    def test_write_then_read(self, cassandra_setup):
        env, _, node = cassandra_setup
        client = CorrectableClient(CassandraBinding(node))
        client.invoke_strong(write("key1", "updated"))
        env.run_until_idle()
        c = client.invoke_strong(read("key1"))
        env.run_until_idle()
        assert c.value() == "updated"

    def test_icg_write_gives_optimistic_weak_view(self, cassandra_setup):
        env, _, node = cassandra_setup
        client = CorrectableClient(CassandraBinding(node))
        c = client.invoke(write("key3", "vvv"))
        # The optimistic weak echo is synchronous.
        assert len(c.views()) == 1
        assert c.views()[0].metadata.get("optimistic")
        env.run_until_idle()
        assert c.is_final()
        assert c.value() == "vvv"

    def test_quorum_of_three(self, cassandra_setup):
        env, _, node = cassandra_setup
        client = CorrectableClient(CassandraBinding(node, strong_read_quorum=3))
        c = client.invoke(read("key1"))
        env.run_until_idle()
        assert c.final_view().metadata["read_quorum"] == 3
        assert c.final_view().metadata["latency_ms"] > 100

    def test_invalid_quorum_rejected(self, cassandra_setup):
        _, _, node = cassandra_setup
        with pytest.raises(ValueError):
            CassandraBinding(node, strong_read_quorum=1)

    def test_unsupported_operation(self, cassandra_setup):
        env, _, node = cassandra_setup
        client = CorrectableClient(CassandraBinding(node))
        c = client.invoke_strong(custom("scan", "tbl"))
        env.run_until_idle()
        assert c.is_error()


class TestZooKeeperQueueBinding:
    def test_levels(self, zookeeper_setup):
        _, _, node = zookeeper_setup
        binding = ZooKeeperQueueBinding(node, "/queue")
        assert binding.consistency_levels() == [WEAK, STRONG]

    def test_icg_dequeue_two_views(self, zookeeper_setup):
        env, _, node = zookeeper_setup
        client = CorrectableClient(ZooKeeperQueueBinding(node, "/queue"))
        c = client.invoke(dequeue("/queue"))
        env.run_until_idle()
        assert len(c.views()) == 2
        assert c.views()[0].value["item"] == "item-0"
        assert c.value()["item"] == "item-0"

    def test_strong_dequeue_single_view(self, zookeeper_setup):
        env, _, node = zookeeper_setup
        client = CorrectableClient(ZooKeeperQueueBinding(node, "/queue"))
        c = client.invoke_strong(dequeue("/queue"))
        env.run_until_idle()
        assert len(c.views()) == 1
        assert c.value()["item"] == "item-0"

    def test_weak_dequeue_surfaces_only_preliminary(self, zookeeper_setup):
        env, cluster, node = zookeeper_setup
        client = CorrectableClient(ZooKeeperQueueBinding(node, "/queue"))
        c = client.invoke_weak(dequeue("/queue"))
        env.run_until_idle()
        assert c.is_final()
        assert c.final_view().consistency == WEAK
        # The operation still executed in the background.
        for server in cluster.servers:
            assert server.tree.child_count("/queue") == 9

    def test_enqueue(self, zookeeper_setup):
        env, cluster, node = zookeeper_setup
        client = CorrectableClient(ZooKeeperQueueBinding(node, "/queue"))
        c = client.invoke(enqueue("/queue", "new-item"))
        env.run_until_idle()
        assert c.is_final()
        for server in cluster.servers:
            assert server.tree.child_count("/queue") == 11

    def test_default_queue_path_used_when_key_missing(self, zookeeper_setup):
        env, _, node = zookeeper_setup
        binding = ZooKeeperQueueBinding(node, "/queue")
        client = CorrectableClient(binding)
        from repro.core.operations import Operation
        c = client.invoke(Operation(name="dequeue", key=None, is_read=False))
        env.run_until_idle()
        assert c.value()["item"] == "item-0"

    def test_unsupported_operation(self, zookeeper_setup):
        env, _, node = zookeeper_setup
        client = CorrectableClient(ZooKeeperQueueBinding(node, "/queue"))
        c = client.invoke_strong(read("some-key"))
        env.run_until_idle()
        assert c.is_error()
