"""The paper's case-study applications, built on the Correctables API.

* :mod:`repro.apps.ads`        — ad-serving system (Listing 4, Figure 11);
* :mod:`repro.apps.twissandra` — microblogging timelines (Figure 11);
* :mod:`repro.apps.tickets`    — ticket selling over a replicated queue
  (Listing 5, Figure 12);
* :mod:`repro.apps.news`       — smartphone news reader exposing data
  incrementally (Listing 6);
* :mod:`repro.apps.catalog`    — the application taxonomy of Table 1;
* :mod:`repro.apps.datasets`   — synthetic datasets shaped like the ones the
  paper used (profiles→ads references, timelines→tweets).
"""

from repro.apps.datasets import AdsDataset, TwissandraDataset
from repro.apps.ads import AdServingSystem
from repro.apps.twissandra import Twissandra
from repro.apps.tickets import TicketSeller, PurchaseOutcome
from repro.apps.news import NewsReader
from repro.apps.catalog import (
    ConsistencyCategory,
    UseCase,
    APPLICATION_CATALOG,
    recommend_category,
)

__all__ = [
    "AdsDataset",
    "TwissandraDataset",
    "AdServingSystem",
    "Twissandra",
    "TicketSeller",
    "PurchaseOutcome",
    "NewsReader",
    "ConsistencyCategory",
    "UseCase",
    "APPLICATION_CATALOG",
    "recommend_category",
]
