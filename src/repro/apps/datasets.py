"""Synthetic datasets shaped like the ones the paper evaluated on.

The paper uses a 100 k-profile / 230 k-ad dataset for the advertising system
and a 65 k-tweet / 22 k-timeline corpus for Twissandra.  Real corpora are not
redistributable, so we generate deterministic synthetic data with the same
referential structure: profiles reference 1–40 ads; timelines reference a
bounded number of tweets, newest first.  Sizes are scaled down by default so
experiments stay laptop-fast; pass larger counts for paper-scale runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.workloads.records import make_value


@dataclass
class AdsDataset:
    """User profiles referencing personalized ads."""

    profile_count: int = 2_000
    ad_count: int = 4_600
    min_ads_per_profile: int = 1
    max_ads_per_profile: int = 40
    ad_body_bytes: int = 200
    seed: int = 7
    _profiles: Dict[str, List[str]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.profile_count <= 0 or self.ad_count <= 0:
            raise ValueError("profile_count and ad_count must be positive")
        rng = random.Random(self.seed)
        for index in range(self.profile_count):
            count = rng.randint(self.min_ads_per_profile,
                                self.max_ads_per_profile)
            refs = [self.ad_key(rng.randrange(self.ad_count))
                    for _ in range(count)]
            self._profiles[self.profile_key(index)] = refs

    # -- keys --------------------------------------------------------------
    @staticmethod
    def profile_key(index: int) -> str:
        return f"profile:{index}"

    @staticmethod
    def ad_key(index: int) -> str:
        return f"ad:{index}"

    def profile_keys(self) -> List[str]:
        return list(self._profiles.keys())

    def ad_refs(self, profile_key: str) -> List[str]:
        return list(self._profiles[profile_key])

    def ad_body(self, ad_key: str) -> str:
        index = int(ad_key.split(":", 1)[1])
        rng = random.Random((index + 1) * 40503)
        return make_value(rng, self.ad_body_bytes)

    def random_refs(self, rng: random.Random) -> List[str]:
        """A fresh reference list, used when a profile's interests change."""
        count = rng.randint(self.min_ads_per_profile, self.max_ads_per_profile)
        return [self.ad_key(rng.randrange(self.ad_count)) for _ in range(count)]

    def initial_items(self) -> Dict[str, object]:
        """Key → value mapping for preloading a cluster."""
        items: Dict[str, object] = {}
        for profile_key, refs in self._profiles.items():
            items[profile_key] = list(refs)
        for ad_index in range(self.ad_count):
            key = self.ad_key(ad_index)
            items[key] = self.ad_body(key)
        return items


@dataclass
class TwissandraDataset:
    """User timelines referencing tweets (newest first)."""

    user_count: int = 1_100
    tweet_count: int = 3_250
    timeline_length: int = 20
    tweet_body_bytes: int = 140
    seed: int = 11
    _timelines: Dict[str, List[str]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.user_count <= 0 or self.tweet_count <= 0:
            raise ValueError("user_count and tweet_count must be positive")
        rng = random.Random(self.seed)
        for index in range(self.user_count):
            length = rng.randint(1, self.timeline_length)
            tweets = [self.tweet_key(rng.randrange(self.tweet_count))
                      for _ in range(length)]
            self._timelines[self.timeline_key(index)] = tweets

    # -- keys -----------------------------------------------------------------
    @staticmethod
    def timeline_key(index: int) -> str:
        return f"timeline:{index}"

    @staticmethod
    def user_name(index: int) -> str:
        return f"user{index}"

    @staticmethod
    def tweet_key(index: int) -> str:
        return f"tweet:{index}"

    def timeline_keys(self) -> List[str]:
        return list(self._timelines.keys())

    def timeline(self, timeline_key: str) -> List[str]:
        return list(self._timelines[timeline_key])

    def tweet_body(self, tweet_key: str) -> str:
        index = int(tweet_key.split(":", 1)[1])
        rng = random.Random((index + 1) * 69069)
        return make_value(rng, self.tweet_body_bytes)

    def initial_items(self) -> Dict[str, object]:
        """Key → value mapping for preloading a cluster."""
        items: Dict[str, object] = {}
        for timeline_key, tweets in self._timelines.items():
            items[timeline_key] = list(tweets)
        for tweet_index in range(self.tweet_count):
            key = self.tweet_key(tweet_index)
            items[key] = self.tweet_body(key)
        return items
