"""Tests for the LWW storage engine, versions, and the ring partitioner."""

import pytest
from hypothesis import given, strategies as st

from repro.cassandra_sim.partitioner import RingPartitioner
from repro.cassandra_sim.storage import LocalTable
from repro.cassandra_sim.versions import VersionedValue, resolve


class TestVersions:
    def test_newer_than_none(self):
        assert VersionedValue("a", (1.0, "n1", 1)).newer_than(None)

    def test_timestamp_ordering(self):
        older = VersionedValue("a", (1.0, "n1", 1))
        newer = VersionedValue("b", (2.0, "n1", 1))
        assert newer.newer_than(older)
        assert not older.newer_than(newer)

    def test_tie_broken_by_writer_then_sequence(self):
        a = VersionedValue("a", (1.0, "node-a", 1))
        b = VersionedValue("b", (1.0, "node-b", 1))
        assert b.newer_than(a)
        c = VersionedValue("c", (1.0, "node-b", 2))
        assert c.newer_than(b)

    def test_resolve_picks_newest(self):
        versions = [VersionedValue("a", (1.0, "x", 1)),
                    None,
                    VersionedValue("b", (3.0, "x", 1)),
                    VersionedValue("c", (2.0, "x", 1))]
        assert resolve(versions).value == "b"

    def test_resolve_all_missing(self):
        assert resolve([None, None]) is None

    def test_resolve_empty(self):
        assert resolve([]) is None


class TestLocalTable:
    def test_read_missing_returns_none(self):
        assert LocalTable().read("nope") is None

    def test_apply_then_read(self):
        table = LocalTable()
        version = VersionedValue("v", (1.0, "n", 1))
        assert table.apply("k", version)
        assert table.read("k") == version
        assert table.contains("k")
        assert len(table) == 1

    def test_stale_write_ignored(self):
        table = LocalTable()
        newer = VersionedValue("new", (5.0, "n", 1))
        older = VersionedValue("old", (1.0, "n", 1))
        table.apply("k", newer)
        assert not table.apply("k", older)
        assert table.read("k").value == "new"
        assert table.writes_ignored == 1

    def test_counters(self):
        table = LocalTable()
        table.read("a")
        table.apply("a", VersionedValue("v", (1.0, "n", 1)))
        assert table.reads == 1
        assert table.writes_applied == 1


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.sampled_from(["n1", "n2", "n3"]),
                          st.integers(min_value=0, max_value=10),
                          st.integers()),
                min_size=1, max_size=30))
def test_lww_register_converges_regardless_of_order(writes):
    """Applying the same writes in any order yields the same final value.

    Timestamps are unique in the simulator (per-coordinator sequence numbers
    break ties), so duplicate timestamps are collapsed before checking.
    """
    unique = {}
    for ts, writer, seq, value in writes:
        unique.setdefault((ts, writer, seq), value)
    versions = [VersionedValue(value, timestamp)
                for timestamp, value in unique.items()]
    forward, backward = LocalTable(), LocalTable()
    for version in versions:
        forward.apply("k", version)
    for version in reversed(versions):
        backward.apply("k", version)
    assert forward.read("k") == backward.read("k")
    assert forward.read("k") == resolve(versions)


class TestPartitioner:
    def test_preference_list_size(self):
        partitioner = RingPartitioner(["a", "b", "c"], replication_factor=3)
        assert sorted(partitioner.replicas_for("key1")) == ["a", "b", "c"]

    def test_rf_smaller_than_cluster(self):
        partitioner = RingPartitioner(["a", "b", "c", "d", "e"],
                                      replication_factor=3)
        replicas = partitioner.replicas_for("some-key")
        assert len(replicas) == 3
        assert len(set(replicas)) == 3

    def test_deterministic(self):
        p1 = RingPartitioner(["a", "b", "c"], 2)
        p2 = RingPartitioner(["a", "b", "c"], 2)
        for i in range(50):
            assert p1.replicas_for(f"k{i}") == p2.replicas_for(f"k{i}")

    def test_primary_is_first_replica(self):
        partitioner = RingPartitioner(["a", "b", "c", "d"], 2)
        key = "user42"
        assert partitioner.primary_for(key) == partitioner.replicas_for(key)[0]

    def test_is_replica(self):
        partitioner = RingPartitioner(["a", "b", "c"], 3)
        assert partitioner.is_replica("a", "anything")

    def test_rf_zero_rejected(self):
        with pytest.raises(ValueError):
            RingPartitioner(["a"], 0)

    def test_rf_larger_than_cluster_rejected(self):
        with pytest.raises(ValueError):
            RingPartitioner(["a", "b"], 3)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            RingPartitioner([], 1)

    def test_distribution_roughly_balanced(self):
        partitioner = RingPartitioner([f"n{i}" for i in range(5)],
                                      replication_factor=1, vnodes_per_node=32)
        counts = {f"n{i}": 0 for i in range(5)}
        for i in range(2000):
            counts[partitioner.primary_for(f"key-{i}")] += 1
        for count in counts.values():
            assert count > 100  # no node owns a vanishing share

    @given(st.text(min_size=1, max_size=40))
    def test_replicas_unique_for_any_key(self, key):
        partitioner = RingPartitioner(["a", "b", "c", "d"], 3)
        replicas = partitioner.replicas_for(key)
        assert len(replicas) == len(set(replicas)) == 3
