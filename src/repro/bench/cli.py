"""Command-line entry point for regenerating individual figures.

``pytest benchmarks/ --benchmark-only`` runs the whole evaluation; this CLI
is the quicker way to regenerate a single figure, optionally at reduced
scale::

    python -m repro.bench fig05
    python -m repro.bench fig07 --quick
    python -m repro.bench fig12 --seed 7
    python -m repro.bench all --quick

Every figure family regenerates its grid through the sweep engine
(:mod:`repro.bench.sweep`), so regeneration parallelizes across processes
with byte-identical output::

    python -m repro.bench fig06 --jobs 4
    python -m repro.bench all --jobs auto

It also hosts the wall-clock performance harness (see :mod:`repro.bench.perf`)::

    python -m repro.bench perf
    python -m repro.bench perf --quick --profile 25
    python -m repro.bench perf --quick --check-regression
    python -m repro.bench perf --quick --show-budget --no-save
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.bench.sweep import JobsSpec, resolve_jobs

from repro.bench import (
    format_fig05, format_fig06, format_fig07, format_fig08, format_fig09,
    format_fig10, format_fig11, format_fig12, format_fig13, format_fig14,
    format_fig15, format_fig16,
    run_fig05, run_fig06, run_fig07, run_fig08, run_fig09, run_fig10,
    run_fig11, run_fig12, run_fig13_all, run_fig14, run_fig15, run_fig16,
)

#: figure name -> (runner, formatter, full-scale kwargs, quick kwargs).
_FIGURES: Dict[str, tuple] = {
    "fig05": (run_fig05, format_fig05,
              dict(samples=200, record_count=200),
              dict(samples=40, record_count=50)),
    "fig06": (run_fig06, format_fig06,
              dict(thread_counts=(2, 6, 12, 24, 48)),
              dict(workloads=("A",), thread_counts=(2, 6),
                   duration_ms=4_000.0, warmup_ms=1_000.0, cooldown_ms=500.0,
                   record_count=300)),
    "fig07": (run_fig07, format_fig07,
              dict(thread_counts=(10, 20, 40, 100)),
              dict(configs=(("A", "latest"), ("B", "latest")),
                   thread_counts=(10,), duration_ms=4_000.0,
                   warmup_ms=1_000.0, cooldown_ms=500.0)),
    "fig08": (run_fig08, format_fig08,
              dict(threads=40),
              dict(configs=(("A", "latest"),), threads=10,
                   duration_ms=4_000.0, warmup_ms=1_000.0, cooldown_ms=500.0)),
    "fig09": (run_fig09, format_fig09,
              dict(samples=100), dict(samples=30)),
    "fig10": (run_fig10, format_fig10,
              dict(stocks=(500, 1000), client_counts=(1, 4, 12)),
              dict(stocks=(100, 200), client_counts=(1, 4))),
    "fig11": (run_fig11, format_fig11,
              dict(profile_count=1_000, ref_count=2_000),
              dict(apps=("ads",), workloads=("B",), thread_counts=(2,),
                   duration_ms=3_000.0, warmup_ms=800.0, cooldown_ms=400.0,
                   profile_count=100, ref_count=200)),
    "fig12": (run_fig12, format_fig12,
              dict(stock=500), dict(stock=120)),
    "fig13": (run_fig13_all, format_fig13,
              dict(),
              dict(scenarios=("baseline", "replica-crash", "wan-partition"),
                   threads_per_client=2, duration_ms=6_000.0,
                   warmup_ms=1_500.0, cooldown_ms=500.0, record_count=150,
                   zk=dict(duration_ms=9_000.0, crash_at_ms=2_500.0,
                           crash_duration_ms=4_000.0, threads_per_client=1,
                           queue_depth=1_500))),
    "fig14": (run_fig14, format_fig14,
              dict(),
              dict(rates=(100, 400), sessions=200, duration_ms=4_000.0,
                   warmup_ms=1_000.0, cooldown_ms=500.0, record_count=200)),
    "fig15": (run_fig15, format_fig15,
              dict(),
              dict(nodes=(6,), skews=("uniform", "zipf-1.2"),
                   rate_ops_s=200.0, sessions=100, duration_ms=5_000.0,
                   warmup_ms=800.0, cooldown_ms=400.0, event_at_ms=2_000.0,
                   record_count=300)),
    "fig16": (run_fig16, format_fig16,
              dict(),
              dict(scenarios=("baseline", "coordinator-crash-mid-commit",
                              "participant-crash-after-prepare"),
                   txn_sizes=(2,), nodes=3, rate_txn_s=25.0,
                   duration_ms=6_000.0, fault_at_ms=2_500.0,
                   fault_duration_ms=2_500.0, record_count=120)),
}


def figure_names() -> Sequence[str]:
    """Names accepted by :func:`run_figure` (besides ``all``)."""
    return tuple(_FIGURES)


def figure_supports_histograms(name: str) -> bool:
    """Whether a figure's runner accepts ``use_histograms``."""
    if name not in _FIGURES:
        raise KeyError(f"unknown figure {name!r}; choose from {list(_FIGURES)}")
    runner = _FIGURES[name][0]
    return "use_histograms" in inspect.signature(runner).parameters


def run_figure(name: str, quick: bool = False,
               seed: Optional[int] = None, jobs: JobsSpec = 1,
               use_histograms: bool = False) -> str:
    """Run one figure's harness and return its rendered report.

    ``jobs`` fans the figure's sweep across processes (``"auto"`` = one per
    core); the records are merged in grid order, so the report is identical
    at any job count.  ``use_histograms`` swaps the exact latency recorders
    for O(1) histograms on the figures that support it (currently fig06).
    """
    if name not in _FIGURES:
        raise KeyError(f"unknown figure {name!r}; choose from {list(_FIGURES)}")
    if use_histograms and not figure_supports_histograms(name):
        raise ValueError(
            f"{name} does not support --histograms (only the "
            f"closed-loop load figures do)")
    runner, formatter, full_kwargs, quick_kwargs = _FIGURES[name]
    kwargs = dict(quick_kwargs if quick else full_kwargs)
    if seed is not None:
        kwargs["seed"] = seed
    kwargs["jobs"] = resolve_jobs(jobs)
    if use_histograms:
        kwargs["use_histograms"] = True
    return formatter(runner(**kwargs))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate figures from the Correctables paper (OSDI '16).")
    parser.add_argument("figure", choices=list(_FIGURES) + ["all", "perf"],
                        help="which figure to regenerate (or 'perf' for the "
                             "wall-clock performance harness)")
    parser.add_argument("--quick", action="store_true",
                        help="run a scaled-down configuration")
    parser.add_argument("--seed", type=int, default=None,
                        help="experiment seed (default: each harness's own)")
    parser.add_argument("--jobs", default="1", metavar="N",
                        help="run the figure's sweep points across N worker "
                             "processes ('auto' = one per core); results are "
                             "byte-identical to --jobs 1 (default: 1)")
    parser.add_argument("--histograms", action="store_true",
                        help="use O(1) histogram latency recorders instead "
                             "of exact per-sample recorders (high-thread "
                             "fig06 sweeps; quantiles become ~0.1%% approx)")
    perf = parser.add_argument_group("perf harness (only with 'perf')")
    perf.add_argument("--profile", type=int, default=0, metavar="N",
                      help="print the cProfile top-N per scenario")
    perf.add_argument("--repeats", type=int, default=3,
                      help="timed repetitions per scenario (best is kept)")
    perf.add_argument("--label", default=None,
                      help="label for the recorded BENCH_perf.json entry")
    perf.add_argument("--perf-scenario", action="append", default=None,
                      metavar="NAME", dest="perf_scenarios",
                      help="run only this perf scenario (repeatable)")
    perf.add_argument("--output", default=None, metavar="PATH",
                      help="trajectory file (default: ./BENCH_perf.json)")
    perf.add_argument("--no-save", action="store_true",
                      help="measure and print without recording an entry")
    perf.add_argument("--check-regression", action="store_true",
                      help="exit non-zero when any scenario is more than 2x "
                           "slower than the best committed entry per "
                           "scenario (composes with recording; add "
                           "--no-save to only gate)")
    perf.add_argument("--min-events-per-s", action="append", default=None,
                      metavar="SCENARIO=RATE", dest="events_floors",
                      help="absolute events/s floor for one scenario, e.g. "
                           "fig06-closed-loop=60000 (repeatable; exits "
                           "non-zero below the floor)")
    perf.add_argument("--budget-drift", action="store_true",
                      help="with --profile: exit non-zero when any "
                           "subsystem's self-time share grows more than 10 "
                           "points over the best committed profile budget")
    perf.add_argument("--show-budget", action="store_true",
                      help="profile each scenario and print its fresh "
                           "per-subsystem self-time shares next to the "
                           "committed budget with per-bucket deltas in "
                           "points (works without --profile; add --no-save "
                           "to inspect without recording)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.figure == "perf":
        from repro.bench.perf import main_perf
        return main_perf(quick=args.quick, repeats=args.repeats,
                         profile_top=args.profile, label=args.label,
                         scenarios=args.perf_scenarios, output=args.output,
                         save=not args.no_save,
                         regression_gate=args.check_regression,
                         events_floors=args.events_floors,
                         budget_drift=args.budget_drift,
                         show_budget=args.show_budget,
                         seed=args.seed, jobs=jobs)
    names = list(_FIGURES) if args.figure == "all" else [args.figure]
    # With an explicit figure, --histograms on an unsupported harness is a
    # usage error; with 'all' the flag simply applies where supported.
    if args.histograms and args.figure != "all" \
            and not figure_supports_histograms(args.figure):
        print(f"error: {args.figure} does not support --histograms (only "
              f"the closed-loop load figures do)", file=sys.stderr)
        return 2
    for name in names:
        print(run_figure(name, quick=args.quick, seed=args.seed, jobs=jobs,
                         use_histograms=args.histograms
                         and figure_supports_histograms(name)))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
