"""Configuration knobs for the simulated ZooKeeper ensemble."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ZooKeeperConfig:
    """Ensemble-wide configuration.

    Service times are small because ZooKeeper operations are cheap; the
    latency the paper measures is dominated by the WAN round trips of the
    Zab commit path.
    """

    #: CPU time a server spends handling one client request (ms).
    request_service_ms: float = 0.4
    #: CPU time the leader spends per proposal (ms).
    proposal_service_ms: float = 0.3
    #: CPU time a follower spends acking / applying a proposal (ms).
    apply_service_ms: float = 0.3
    #: Extra CPU time for the CZK local simulation fast path (ms).
    simulation_service_ms: float = 0.2
    #: Size of a queue element payload on the wire (bytes); the paper uses
    #: identifiers of up to 20 B (e.g. ticket numbers).
    element_size_bytes: int = 20
    #: Size of one znode name in a getChildren response (bytes),
    #: e.g. ``"item-0000000042"``.
    child_name_bytes: int = 16
    #: Size of a znode path on the wire (bytes).
    path_size_bytes: int = 24
    #: Small response / acknowledgement body size (bytes).
    ack_bytes: int = 10
