"""Configuration knobs for the simulated ZooKeeper ensemble."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ZooKeeperConfig:
    """Ensemble-wide configuration.

    Service times are small because ZooKeeper operations are cheap; the
    latency the paper measures is dominated by the WAN round trips of the
    Zab commit path.
    """

    #: CPU time a server spends handling one client request (ms).
    request_service_ms: float = 0.4
    #: CPU time the leader spends per proposal (ms).
    proposal_service_ms: float = 0.3
    #: CPU time a follower spends acking / applying a proposal (ms).
    apply_service_ms: float = 0.3
    #: Extra CPU time for the CZK local simulation fast path (ms).
    simulation_service_ms: float = 0.2
    #: Size of a queue element payload on the wire (bytes); the paper uses
    #: identifiers of up to 20 B (e.g. ticket numbers).
    element_size_bytes: int = 20
    #: Size of one znode name in a getChildren response (bytes),
    #: e.g. ``"item-0000000042"``.
    child_name_bytes: int = 16
    #: Size of a znode path on the wire (bytes).
    path_size_bytes: int = 24
    #: Small response / acknowledgement body size (bytes).
    ack_bytes: int = 10
    #: Follower → leader heartbeat period (ms); 0 disables failure detection
    #: entirely, which is the fault-free behaviour the happy-path figures
    #: assume.
    heartbeat_interval_ms: float = 0.0
    #: A follower that has not heard a heartbeat reply for this long suspects
    #: the leader and starts an election.
    leader_timeout_ms: float = 800.0
    #: How long an elector waits to collect candidacies before tallying.
    election_window_ms: float = 300.0
    #: Client-side timeout for one request (ms); 0 disables.  On expiry the
    #: client re-issues the request to the next server of the ensemble.
    request_timeout_ms: float = 0.0
    #: How many times the client re-issues a timed-out request.
    client_retries: int = 3
    #: Backoff before a client re-issue (ms); 0 keeps the historical
    #: immediate-retry behaviour.  Positive values grow exponentially per
    #: attempt via the shared :class:`~repro.core.retry.RetryPolicy`.
    client_backoff_base_ms: float = 0.0
    client_backoff_multiplier: float = 2.0
    client_backoff_cap_ms: float = 1_000.0
    client_backoff_jitter_ms: float = 0.0

    @classmethod
    def fault_tolerant(cls, **overrides) -> "ZooKeeperConfig":
        """A configuration with failure detection and client failover enabled."""
        defaults = dict(
            heartbeat_interval_ms=200.0,
            leader_timeout_ms=800.0,
            election_window_ms=300.0,
            request_timeout_ms=2_000.0,
            client_retries=3,
        )
        defaults.update(overrides)
        return cls(**defaults)
