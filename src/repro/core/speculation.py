"""The speculation combinator (Listing 3) and its bookkeeping.

``source.speculate(fn, abort_fn)`` returns a new Correctable that closes with
``fn(v)`` where ``v`` is the final view's value:

* ``fn`` runs eagerly on every view whose value differs from the previously
  speculated input, so its (possibly slow) work overlaps the wait for the
  final view;
* if the final view matches a speculated input, the cached output is used and
  the derived Correctable closes as soon as both the final view and that
  output are available (speculation *confirmed*);
* otherwise ``fn`` re-runs on the final value, ``abort_fn`` undoes the
  superseded speculation, and the derived Correctable closes when the re-run
  completes (a *misspeculation*).

``fn`` may return a plain value, a :class:`~repro.core.promise.Promise`, or
another :class:`~repro.core.correctable.Correctable` (whose final value is
used) — the ad-serving case study returns a Correctable because fetching the
ads is itself a storage operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.core.promise import Promise
from repro.core.views import View

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Union

    from repro.core.correctable import Correctable, LeanCorrectable

    #: Anything speculation can attach to: a full Correctable or the pooled
    #: lean flyweight (both expose ``set_callbacks`` and ``_clock``, which
    #: is the entire surface this module touches).
    SpeculationSource = Union["Correctable", "LeanCorrectable"]


@dataclass
class SpeculationStats:
    """Counters describing how speculation behaved across operations."""

    speculations_started: int = 0
    confirmed: int = 0
    misspeculations: int = 0
    aborts: int = 0
    #: Input values that were speculated on and later superseded.
    wasted_inputs: List[Any] = field(default_factory=list)

    @property
    def total_closed(self) -> int:
        return self.confirmed + self.misspeculations

    def hit_rate(self) -> float:
        """Fraction of closed speculations that were confirmed."""
        if self.total_closed == 0:
            return 0.0
        return self.confirmed / self.total_closed

    def merge(self, other: "SpeculationStats") -> None:
        """Fold another stats object into this one."""
        self.speculations_started += other.speculations_started
        self.confirmed += other.confirmed
        self.misspeculations += other.misspeculations
        self.aborts += other.aborts
        self.wasted_inputs.extend(other.wasted_inputs)


class _SpeculationEntry:
    """One speculative execution of the user function on a given input."""

    __slots__ = ("input_value", "promise")

    def __init__(self, input_value: Any, promise: Promise) -> None:
        self.input_value = input_value
        self.promise = promise


def _as_promise(result: Any) -> Promise:
    """Normalize a speculation function's result to a Promise."""
    # Imported here to avoid a circular import with correctable.py.
    from repro.core.correctable import Correctable

    if isinstance(result, Promise):
        return result
    if isinstance(result, Correctable):
        return result.final_promise()
    return Promise.resolved(result)


def attach_speculation(source: "SpeculationSource",
                       speculation_fn: Callable[[Any], Any],
                       abort_fn: Optional[Callable[[Any], None]] = None,
                       stats: Optional[SpeculationStats] = None) -> "Correctable":
    """Implementation behind :meth:`Correctable.speculate`.

    ``source`` may be a full :class:`Correctable` or a pooled
    :class:`~repro.core.correctable.LeanCorrectable` — only
    ``set_callbacks`` (one callback per transition) and ``_clock`` are
    used, and the derived Correctable is always a full one.
    """
    from repro.core.correctable import Correctable

    derived = Correctable(clock=source._clock)
    entries: List[_SpeculationEntry] = []
    local_stats = stats if stats is not None else SpeculationStats()

    def _start_speculation(value: Any) -> _SpeculationEntry:
        local_stats.speculations_started += 1
        try:
            result = speculation_fn(value)
            promise = _as_promise(result)
        except BaseException as exc:  # noqa: BLE001 - fail the derived correctable
            promise = Promise.failed(exc)
        entry = _SpeculationEntry(value, promise)
        entries.append(entry)
        return entry

    def _find_entry(value: Any) -> Optional[_SpeculationEntry]:
        for entry in entries:
            if entry.input_value == value:
                return entry
        return None

    def _on_update(view: View) -> None:
        if _find_entry(view.value) is None:
            _start_speculation(view.value)

    def _close_from(entry: _SpeculationEntry, view: View) -> None:
        def _deliver(result: Any) -> None:
            if not derived.is_done():
                derived.close(result, view.consistency,
                              metadata={"speculation_input": entry.input_value})
        entry.promise.on_ready(_deliver)
        entry.promise.on_error(lambda exc: None if derived.is_done()
                               else derived.fail(exc))

    def _on_final(view: View) -> None:
        matching = _find_entry(view.value)
        if matching is not None:
            # Common case: a preliminary view already triggered this work.
            local_stats.confirmed += 1
            for entry in entries:
                if entry is not matching:
                    local_stats.wasted_inputs.append(entry.input_value)
            _close_from(matching, view)
            return
        # Misspeculation: every previous speculation worked on stale input.
        if entries:
            local_stats.misspeculations += 1
            for entry in entries:
                local_stats.wasted_inputs.append(entry.input_value)
                if abort_fn is not None:
                    local_stats.aborts += 1
                    abort_fn(entry.input_value)
        else:
            # No preliminary view ever arrived; not a misspeculation, just a
            # plain (non-speculative) execution on the final value.
            local_stats.confirmed += 1
        entry = _start_speculation(view.value)
        _close_from(entry, view)

    source.set_callbacks(on_update=_on_update, on_final=_on_final,
                         on_error=lambda exc: None if derived.is_done()
                         else derived.fail(exc))
    return derived
