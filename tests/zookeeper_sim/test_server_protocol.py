"""End-to-end protocol tests for the simulated ZooKeeper ensemble."""

import pytest

from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region, Topology
from repro.zookeeper_sim.cluster import ZooKeeperCluster
from repro.zookeeper_sim.queue_recipe import DistributedQueue


def _setup(leader=Region.IRL, followers=(Region.FRK, Region.VRG),
           queue_items=10):
    env = SimEnvironment(seed=3, topology=Topology(jitter_fraction=0.0))
    cluster = ZooKeeperCluster(env, leader_region=leader,
                               follower_regions=followers)
    if queue_items:
        cluster.preload_queue("/queue",
                              [f"item-{i}" for i in range(queue_items)])
    return env, cluster


class TestBasicOperations:
    def test_create_replicates_to_all_servers(self):
        env, cluster = _setup(queue_items=0)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        client.create("/node", data="payload")
        env.run_until_idle()
        for server in cluster.servers:
            assert server.tree.get("/node") == "payload"

    def test_reads_served_locally_by_contacted_server(self):
        env, cluster = _setup()
        client = cluster.add_client("c", Region.FRK, Region.FRK)
        results = []
        client.get_children("/queue", on_final=results.append)
        env.run_until_idle()
        assert len(results[0]["result"]) == 10
        # A local read never involves the leader.
        assert results[0]["latency_ms"] < 10.0

    def test_delete_propagates(self):
        env, cluster = _setup(queue_items=3)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        client.delete("/queue/item-0000000000")
        env.run_until_idle()
        for server in cluster.servers:
            assert server.tree.child_count("/queue") == 2

    def test_delete_missing_node_reports_error(self):
        env, cluster = _setup(queue_items=0)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        results = []
        client.delete("/ghost", on_final=results.append)
        env.run_until_idle()
        assert not results[0]["ok"]
        assert "NoNode" in results[0]["error"]

    def test_unknown_operation_rejected(self):
        env, cluster = _setup(queue_items=0)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        results = []
        client.submit("frobnicate", "/x", on_final=results.append)
        env.run_until_idle()
        assert not results[0]["ok"]


class TestTotalOrder:
    def test_enqueues_from_different_clients_totally_ordered(self):
        env, cluster = _setup(queue_items=0)
        for server in cluster.servers:
            server.tree.create("/q")
        c1 = cluster.add_client("c1", Region.FRK, Region.FRK)
        c2 = cluster.add_client("c2", Region.VRG, Region.VRG)
        for i in range(5):
            c1.enqueue("/q", f"frk-{i}")
            c2.enqueue("/q", f"vrg-{i}")
        env.run_until_idle()
        orders = []
        for server in cluster.servers:
            children = server.tree.get_children("/q")
            orders.append([server.tree.get(f"/q/{c}") for c in children])
        assert orders[0] == orders[1] == orders[2]
        assert len(orders[0]) == 10

    def test_zxids_applied_in_order_on_every_server(self):
        env, cluster = _setup(queue_items=0)
        client = cluster.add_client("c", Region.FRK, Region.FRK)
        for i in range(8):
            client.create(f"/node{i}", data=i)
        env.run_until_idle()
        for server in cluster.servers:
            assert server.commit_log.last_applied == 8
            assert server.transactions_applied == 8


class TestLatencyShape:
    def test_write_through_follower_slower_than_through_leader(self):
        latencies = {}
        for label, connect in (("follower", Region.FRK), ("leader", Region.IRL)):
            env, cluster = _setup(queue_items=0)
            for server in cluster.servers:
                server.tree.create("/q")
            client = cluster.add_client("c", Region.IRL, connect)
            results = []
            client.enqueue("/q", "x", on_final=results.append)
            env.run_until_idle()
            latencies[label] = results[0]["latency_ms"]
        assert latencies["leader"] < latencies["follower"]

    def test_preliminary_much_faster_than_final_with_remote_leader(self):
        env, cluster = _setup(leader=Region.VRG,
                              followers=(Region.IRL, Region.FRK))
        client = cluster.add_client("c", Region.IRL, Region.IRL)
        events = []
        client.dequeue("/queue", icg=True,
                       on_preliminary=lambda r: events.append(("p", r["latency_ms"])),
                       on_final=lambda r: events.append(("f", r["latency_ms"])))
        env.run_until_idle()
        prelim = dict(events)["p"]
        final = dict(events)["f"]
        assert prelim < 10.0
        assert final > 100.0


class TestCzkDequeue:
    def test_dequeue_returns_head_and_removes_it(self):
        env, cluster = _setup(queue_items=3)
        client = cluster.add_client("c", Region.FRK, Region.FRK)
        results = []
        client.dequeue("/queue", on_final=results.append)
        env.run_until_idle()
        assert results[0]["result"]["item"] == "item-0"
        assert results[0]["result"]["remaining"] == 2
        for server in cluster.servers:
            assert server.tree.child_count("/queue") == 2

    def test_dequeue_empty_queue_returns_none(self):
        env, cluster = _setup(queue_items=0)
        for server in cluster.servers:
            server.tree.create("/queue")
        client = cluster.add_client("c", Region.FRK, Region.FRK)
        results = []
        client.dequeue("/queue", on_final=results.append)
        env.run_until_idle()
        assert results[0]["result"]["item"] is None

    def test_concurrent_dequeues_get_distinct_items(self):
        env, cluster = _setup(queue_items=6)
        clients = [cluster.add_client(f"c{i}", Region.FRK, Region.FRK)
                   for i in range(3)]
        got = []
        for client in clients:
            client.dequeue("/queue", icg=True,
                           on_final=lambda r: got.append(r["result"]["item"]))
        env.run_until_idle()
        assert len(got) == 3
        assert len(set(got)) == 3

    def test_concurrent_preliminary_simulations_are_distinct(self):
        env, cluster = _setup(queue_items=6)
        clients = [cluster.add_client(f"c{i}", Region.FRK, Region.FRK)
                   for i in range(3)]
        preliminary_items = []
        for client in clients:
            client.dequeue(
                "/queue", icg=True,
                on_preliminary=lambda r: preliminary_items.append(
                    r["result"]["item"]))
        env.run_until_idle()
        assert len(preliminary_items) == 3
        assert len(set(preliminary_items)) == 3

    def test_exhaustive_drain_never_duplicates(self):
        env, cluster = _setup(queue_items=20)
        client = cluster.add_client("c", Region.FRK, Region.FRK)
        drained = []

        def _next():
            client.dequeue("/queue", on_final=_done)

        def _done(resp):
            item = resp["result"]["item"]
            if item is None:
                return
            drained.append(item)
            _next()

        _next()
        env.run_until_idle()
        assert drained == [f"item-{i}" for i in range(20)]


class TestQueueRecipe:
    def test_recipe_dequeue_returns_head(self):
        env, cluster = _setup(queue_items=4)
        client = cluster.add_client("c", Region.FRK, Region.FRK)
        queue = DistributedQueue(client, "/queue")
        results = []
        queue.dequeue_recipe(results.append)
        env.run_until_idle()
        assert results[0]["result"]["item"] == "item-0"

    def test_recipe_contention_causes_retries_but_no_duplicates(self):
        env, cluster = _setup(queue_items=10)
        clients = [cluster.add_client(f"c{i}", Region.FRK, Region.FRK)
                   for i in range(4)]
        queues = [DistributedQueue(c, "/queue") for c in clients]
        got = []

        def _drain(queue):
            def _next():
                queue.dequeue_recipe(_done)

            def _done(resp):
                item = resp["result"]["item"]
                if resp["ok"] and item is not None:
                    got.append(item)
                    _next()

            _next()

        for queue in queues:
            _drain(queue)
        env.run_until_idle()
        assert sorted(got) == sorted(f"item-{i}" for i in range(10))
        assert sum(q.retries for q in queues) > 0

    def test_recipe_empty_queue(self):
        env, cluster = _setup(queue_items=0)
        for server in cluster.servers:
            server.tree.create("/queue")
        client = cluster.add_client("c", Region.FRK, Region.FRK)
        queue = DistributedQueue(client, "/queue")
        results = []
        queue.dequeue_recipe(results.append)
        env.run_until_idle()
        assert results[0]["result"]["item"] is None

    def test_enqueue_via_recipe(self):
        env, cluster = _setup(queue_items=0)
        client = cluster.add_client("c", Region.FRK, Region.FRK)
        queue = DistributedQueue(client, "/tasks")
        queue.create_queue_node()
        env.run_until_idle()
        results = []
        queue.enqueue("job-1", on_final=results.append)
        env.run_until_idle()
        assert results[0]["ok"]
        for server in cluster.servers:
            assert server.tree.child_count("/tasks") == 1


class TestClusterAssembly:
    def test_server_in_prefers_leader(self):
        env, cluster = _setup()
        assert cluster.server_in(Region.IRL) is cluster.leader

    def test_server_in_unknown_region_raises(self):
        env, cluster = _setup()
        with pytest.raises(KeyError):
            cluster.server_in("mars-east-1")

    def test_colocated_client_shares_host(self):
        env, cluster = _setup()
        client = cluster.add_client("c", Region.FRK, Region.FRK, colocated=True)
        assert client.host == cluster.server_in(Region.FRK).host
