"""Unit tests for the health-aware load balancer and prepared-view stats."""

import pytest

from repro.core.retry import BreakerState
from repro.txn import LoadBalancer, PreparedViewStats


class TestLoadBalancer:
    def test_round_robin_over_healthy_nodes(self):
        balancer = LoadBalancer(["a", "b", "c"])
        assert [balancer.pick(0.0) for _ in range(4)] == ["a", "b", "c", "a"]
        assert balancer.picks == 4

    def test_preferred_wins_when_healthy(self):
        balancer = LoadBalancer(["a", "b", "c"])
        assert balancer.pick(0.0, preferred="c") == "c"
        # Unknown names are ignored, not routed to.
        assert balancer.pick(0.0, preferred="nope") == "a"

    def test_avoid_skips_the_node_that_just_failed(self):
        balancer = LoadBalancer(["a", "b"])
        assert balancer.pick(0.0, avoid="a") == "b"
        # With a single node there is no alternative: avoid is ignored.
        single = LoadBalancer(["only"])
        assert single.pick(0.0, avoid="only") == "only"

    def test_open_breaker_routes_elsewhere(self):
        balancer = LoadBalancer(["a", "b"], failure_threshold=1,
                                reset_timeout_ms=500.0)
        balancer.record_failure("a", 0.0)
        assert balancer.degraded_nodes() == ["a"]
        assert all(balancer.pick(10.0) == "b" for _ in range(3))
        assert balancer.skipped_unhealthy > 0
        assert balancer.times_opened() == 1

    def test_preferred_with_open_breaker_falls_through(self):
        balancer = LoadBalancer(["a", "b"], failure_threshold=1)
        balancer.record_failure("b", 0.0)
        assert balancer.pick(1.0, preferred="b") == "a"

    def test_fail_open_when_every_breaker_refuses(self):
        balancer = LoadBalancer(["a", "b"], failure_threshold=1,
                                reset_timeout_ms=1_000.0)
        balancer.record_failure("a", 0.0)
        balancer.record_failure("b", 0.0)
        picked = balancer.pick(1.0)
        assert picked in ("a", "b")
        assert balancer.fail_open_picks == 1

    def test_probe_success_recovers_the_node(self):
        balancer = LoadBalancer(["a", "b"], failure_threshold=1,
                                reset_timeout_ms=100.0)
        balancer.record_failure("a", 0.0)
        # After the reset window one probe is admitted; its success closes
        # the breaker and the node rejoins the rotation.
        assert balancer.health()["a"] == BreakerState.OPEN
        picks = [balancer.pick(150.0) for _ in range(2)]
        assert "a" in picks
        balancer.record_success("a")
        assert balancer.probes_succeeded() == 1
        assert balancer.health()["a"] == BreakerState.CLOSED
        assert balancer.degraded_nodes() == []

    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            LoadBalancer([])


class TestPreparedViewStats:
    def test_accuracy_accounting_matrix(self):
        stats = PreparedViewStats()
        # No PREPARED view seen: the final outcome contributes nothing.
        stats.record_final(prepared_seen=False, committed=True)
        stats.record_final(prepared_seen=False, committed=False)
        assert (stats.matched, stats.mismatched) == (0, 0)
        assert stats.accuracy() is None
        # Seen + committed = the speculation was right.
        stats.record_final(prepared_seen=True, committed=True)
        stats.record_final(prepared_seen=True, committed=True)
        stats.record_final(prepared_seen=True, committed=True)
        # Seen + aborted = the one lie the PREPARED view can tell.
        stats.record_final(prepared_seen=True, committed=False)
        assert (stats.matched, stats.mismatched) == (3, 1)
        assert stats.accuracy() == pytest.approx(0.75)

    def test_unresolved_views_do_not_count_toward_accuracy(self):
        stats = PreparedViewStats()
        stats.prepared_views = 2
        stats.unresolved = 2        # e.g. client timed the transactions out
        assert stats.accuracy() is None
