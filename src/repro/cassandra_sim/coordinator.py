"""Coordinator-side sessions for quorum reads and writes.

In Cassandra every replica can act as a coordinator for client requests.
These session objects track one in-flight client operation at its
coordinator: which replicas still owe a response, whether a preliminary view
was already flushed (Correctable Cassandra), and what to send back to the
client when the quorum completes.

:class:`FusedRead` and :class:`FusedWrite` are the fused-fast-path
equivalents: one pooled record carries an operation through client,
coordinator and replicas (no per-hop payload dicts, no client pending map,
no coordinator session map).  They are plain slotted objects recycled
through class-level free lists; the protocol code in ``replica.py`` /
``client.py`` owns all state transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cassandra_sim.versions import VersionedValue, resolve


@dataclass(slots=True)
class ReadSession:
    """One client read being coordinated."""

    session_id: int
    req_id: int
    client: str
    key: str
    r: int
    icg: bool
    started_at: float
    #: Replica name -> version it reported (None when the replica had no row).
    responses: Dict[str, Optional[VersionedValue]] = field(default_factory=dict)
    #: Value sent in the preliminary response (None until flushed).
    preliminary: Optional[VersionedValue] = None
    preliminary_sent: bool = False
    final_sent: bool = False
    #: Replicas the coordinator asked for data (including itself when local).
    contacted: List[str] = field(default_factory=list)
    #: Timeout handling: retries performed so far and the pending timeout
    #: event (a :class:`repro.sim.scheduler.Event`, cancellable).
    attempts: int = 0
    timeout_event: Optional[Any] = None

    def record(self, replica: str, version: Optional[VersionedValue]) -> None:
        self.responses[replica] = version

    def have_quorum(self) -> bool:
        return len(self.responses) >= self.r

    def resolved(self) -> Optional[VersionedValue]:
        """Newest version among the responses received so far (LWW)."""
        return resolve(self.responses.values())

    def stale_replicas(self) -> List[str]:
        """Replicas whose reported version is older than the resolved one."""
        newest = self.resolved()
        if newest is None:
            return []
        stale = []
        for replica, version in self.responses.items():
            if version is None or version.timestamp < newest.timestamp:
                stale.append(replica)
        return stale


@dataclass(slots=True)
class WriteSession:
    """One client write being coordinated."""

    session_id: int
    req_id: int
    client: str
    key: str
    w: int
    version: VersionedValue
    started_at: float
    acks: List[str] = field(default_factory=list)
    acked_client: bool = False
    attempts: int = 0
    timeout_event: Optional[Any] = None

    def record_ack(self, replica: str) -> None:
        if replica not in self.acks:
            self.acks.append(replica)

    def have_quorum(self) -> bool:
        return len(self.acks) >= self.w


class FusedRead:
    """One fused read operation: client + coordinator state in one record.

    Pooled: acquired at issue, released exactly once when the last
    continuation holding it runs (final response at the client, or a late
    preliminary that outlived the final).  ``recyclable`` is cleared by the
    rare rescue paths (stale ring epoch) so a record with untracked
    references is simply dropped instead of recycled.
    """

    __slots__ = ("client", "coordinator", "key", "r", "icg", "sent_at",
                 "on_preliminary", "on_final", "lean", "count", "best",
                 "local", "local_version", "preliminary", "preliminary_sent",
                 "final_sent", "prelim_seen", "prelim_value", "final_done",
                 "flush_pending", "contacted", "recyclable", "args")

    _pool: List["FusedRead"] = []
    created = 0
    reused = 0
    recycled = 0

    def __init__(self) -> None:
        self.contacted: List[str] = []
        #: The one-element args tuple every hop passes to the scheduler;
        #: built once per record, shared across its pooled lifetimes.
        self.args = (self,)

    @classmethod
    def acquire(cls) -> "FusedRead":
        pool = cls._pool
        if pool:
            rec = pool.pop()
            cls.reused += 1
        else:
            rec = cls()
            cls.created += 1
        rec.lean = None
        rec.count = 0
        rec.best = None
        rec.local = False
        rec.local_version = None
        rec.preliminary = None
        rec.preliminary_sent = False
        rec.final_sent = False
        rec.prelim_seen = False
        rec.prelim_value = None
        rec.final_done = False
        rec.flush_pending = False
        rec.recyclable = True
        return rec

    @classmethod
    def release(cls, rec: "FusedRead") -> None:
        if not rec.recyclable:
            return
        # Only ``contacted`` must be scrubbed (the list is reused);
        # ``acquire`` resets every protocol field, so the remaining
        # references just sit in the bounded pool until reuse.
        rec.contacted.clear()
        if len(cls._pool) < 4096:
            cls.recycled += 1
            cls._pool.append(rec)

    @classmethod
    def pool_stats(cls) -> Dict[str, int]:
        return {"created": cls.created, "reused": cls.reused,
                "recycled": cls.recycled, "free": len(cls._pool)}


class FusedWrite:
    """One fused write operation (see :class:`FusedRead`).

    Quorum state is counter-based on the happy path: ``ack_count`` drives
    every quorum/release comparison, and the ``acks`` name list exists only
    for the stale-epoch rescue paths (which must know *which* replicas
    already acknowledged before re-sending).  The two are kept in lockstep.
    """

    __slots__ = ("client", "coordinator", "key", "value", "version", "w",
                 "sent_at", "on_final", "lean", "acks", "ack_count",
                 "acks_expected", "acked_client", "client_done", "recyclable",
                 "args")

    _pool: List["FusedWrite"] = []
    created = 0
    reused = 0
    recycled = 0

    def __init__(self) -> None:
        self.acks: List[str] = []
        #: See :attr:`FusedRead.args`.
        self.args = (self,)

    @classmethod
    def acquire(cls) -> "FusedWrite":
        pool = cls._pool
        if pool:
            rec = pool.pop()
            cls.reused += 1
        else:
            rec = cls()
            cls.created += 1
        rec.lean = None
        rec.ack_count = 0
        rec.acks_expected = 0
        rec.acked_client = False
        rec.client_done = False
        rec.recyclable = True
        return rec

    @classmethod
    def release(cls, rec: "FusedWrite") -> None:
        if not rec.recyclable:
            return
        # Only ``acks`` must be scrubbed (the list is reused); ``acquire``
        # resets every protocol field on the way back out of the pool.
        rec.acks.clear()
        if len(cls._pool) < 4096:
            cls.recycled += 1
            cls._pool.append(rec)

    @classmethod
    def pool_stats(cls) -> Dict[str, int]:
        return {"created": cls.created, "reused": cls.reused,
                "recycled": cls.recycled, "free": len(cls._pool)}
