"""Tests for the blockchain substrate and its Correctables binding."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.bindings.blockchain import (
    CONFIRMED_1,
    CONFIRMED_3,
    CONFIRMED_6,
    PENDING,
    BlockchainBinding,
    transfer,
)
from repro.blockchain_sim.chain import Blockchain, Transaction
from repro.blockchain_sim.network import BlockchainConfig, BlockchainNetwork
from repro.core.client import CorrectableClient
from repro.core.operations import read
from repro.sim.scheduler import Scheduler


class TestBlockchain:
    def test_append_and_confirmations(self):
        chain = Blockchain()
        tx = Transaction("a", "b", 1.0)
        chain.append_block([tx], mined_at=0.0)
        assert chain.confirmations(tx.tx_id) == 1
        chain.append_block([], mined_at=1.0)
        chain.append_block([], mined_at=2.0)
        assert chain.confirmations(tx.tx_id) == 3
        assert chain.contains(tx.tx_id)

    def test_unknown_transaction_has_zero_confirmations(self):
        assert Blockchain().confirmations("nope") == 0

    def test_orphan_tip_demotes_transactions(self):
        chain = Blockchain()
        tx = Transaction("a", "b", 1.0)
        chain.append_block([tx], mined_at=0.0)
        demoted = chain.orphan_tip()
        assert demoted == [tx]
        assert chain.confirmations(tx.tx_id) == 0
        assert chain.orphaned_blocks == 1

    def test_orphan_empty_chain_is_noop(self):
        assert Blockchain().orphan_tip() == []

    def test_blocks_link_to_parent(self):
        chain = Blockchain()
        first = chain.append_block([], mined_at=0.0)
        second = chain.append_block([], mined_at=1.0)
        assert second.parent_hash == first.block_hash
        assert chain.height == 2

    def test_balance(self):
        chain = Blockchain()
        chain.append_block([Transaction("alice", "bob", 5.0)], mined_at=0.0)
        chain.append_block([Transaction("bob", "carol", 2.0)], mined_at=1.0)
        assert chain.balance("bob") == pytest.approx(3.0)
        assert chain.balance("alice", initial=10.0) == pytest.approx(5.0)

    @given(st.integers(min_value=1, max_value=30))
    def test_confirmations_equal_depth_from_tip(self, extra_blocks):
        chain = Blockchain()
        tx = Transaction("a", "b", 1.0)
        chain.append_block([tx], mined_at=0.0)
        for i in range(extra_blocks):
            chain.append_block([], mined_at=float(i + 1))
        assert chain.confirmations(tx.tx_id) == extra_blocks + 1


class TestBlockchainNetwork:
    def _network(self, fork_probability=0.0, seed=1):
        scheduler = Scheduler()
        network = BlockchainNetwork(
            scheduler,
            BlockchainConfig(block_interval_ms=1_000.0,
                             fork_probability=fork_probability),
            rng=random.Random(seed))
        return scheduler, network

    def test_mining_includes_mempool_transactions(self):
        scheduler, network = self._network()
        network.start()
        tx = Transaction("a", "b", 1.0)
        network.submit_transaction(tx)
        scheduler.run(until=5_000.0)
        assert network.chain.contains(tx.tx_id)
        assert network.mempool_size() == 0
        assert network.blocks_mined >= 2

    def test_watcher_sees_monotone_confirmations_without_forks(self):
        scheduler, network = self._network(fork_probability=0.0)
        network.start()
        tx = Transaction("a", "b", 1.0)
        network.submit_transaction(tx)
        seen = []
        network.watch_transaction(tx.tx_id, lambda c, h: seen.append(c))
        scheduler.run(until=12_000.0)
        assert seen == sorted(seen)
        assert seen[-1] >= 6

    def test_watchers_released_after_finality(self):
        scheduler, network = self._network()
        network.start()
        tx = Transaction("a", "b", 1.0)
        network.submit_transaction(tx)
        network.watch_transaction(tx.tx_id, lambda c, h: None)
        scheduler.run(until=15_000.0)
        assert tx.tx_id not in network._watchers

    def test_forks_orphan_blocks_and_remine_transactions(self):
        scheduler, network = self._network(fork_probability=0.5, seed=3)
        network.start()
        tx = Transaction("a", "b", 1.0)
        network.submit_transaction(tx)
        scheduler.run(until=30_000.0)
        assert network.chain.orphaned_blocks > 0
        # Despite orphaning, the transaction ends up on the chain.
        assert network.chain.contains(tx.tx_id)

    def test_stop_prevents_new_blocks(self):
        scheduler, network = self._network()
        network.start()
        scheduler.run(until=3_000.0)
        mined = network.blocks_mined
        network.stop()
        scheduler.run(until=20_000.0)
        assert network.blocks_mined <= mined + 1


class TestBlockchainBinding:
    def _client(self, fork_probability=0.0):
        scheduler = Scheduler()
        network = BlockchainNetwork(
            scheduler,
            BlockchainConfig(block_interval_ms=1_000.0,
                             fork_probability=fork_probability),
            rng=random.Random(2))
        network.start()
        return scheduler, network, CorrectableClient(BlockchainBinding(network))

    def test_levels_ordered(self):
        _, _, client = self._client()
        assert client.available_levels() == [PENDING, CONFIRMED_1,
                                             CONFIRMED_3, CONFIRMED_6]

    def test_invoke_delivers_each_milestone_once(self):
        scheduler, _, client = self._client()
        c = client.invoke(transfer("alice", "bob", 2.5))
        scheduler.run(until=12_000.0)
        assert c.is_final()
        levels = [view.consistency for view in c.views()]
        assert levels == [PENDING, CONFIRMED_1, CONFIRMED_3, CONFIRMED_6]
        confirmations = [view.value["confirmations"] for view in c.views()]
        assert confirmations[0] == 0
        assert confirmations[-1] >= 6

    def test_invoke_weak_returns_pending_immediately(self):
        scheduler, _, client = self._client()
        c = client.invoke_weak(transfer("alice", "bob", 1.0))
        assert c.is_final()
        assert c.final_view().consistency == PENDING

    def test_invoke_with_subset_of_levels(self):
        scheduler, _, client = self._client()
        c = client.invoke(transfer("a", "b", 1.0),
                          levels=[CONFIRMED_1, CONFIRMED_6])
        scheduler.run(until=12_000.0)
        assert [view.consistency for view in c.views()] == \
            [CONFIRMED_1, CONFIRMED_6]

    def test_unsupported_operation_fails(self):
        scheduler, _, client = self._client()
        c = client.invoke_strong(read("balance"))
        assert c.is_error()

    def test_finality_reached_despite_forks(self):
        scheduler, network, client = self._client(fork_probability=0.3)
        c = client.invoke(transfer("alice", "bob", 1.0))
        scheduler.run(until=60_000.0)
        assert c.is_final()
        assert network.chain.confirmations(
            c.final_view().value["tx_id"]) >= 6
