"""Figure 8: client-replica bandwidth cost of ICG in Correctable Cassandra.

Under the divergence-experiment conditions (1 K records, workloads A and B,
Latest and Zipfian distributions) the paper measures average kB transferred
per operation between the client and its coordinator for:

* ``C1``   — the conservative baseline (single weak read per operation);
* ``CC2``  — ICG without the confirmation optimization;
* ``*CC2`` — ICG with the confirmation optimization (identical final views
  are replaced by a small confirmation message).

Shapes to reproduce: C1 < *CC2 < CC2 everywhere; the *CC2 overhead is larger
under workload A-Latest (high divergence, fewer confirmations possible) than
under workload B (low divergence, most finals collapse to confirmations).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.bench.common import (
    build_cassandra_scenario,
    cassandra_config_for,
    make_generator_factory,
    make_kv_issue,
)
from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.metrics.bandwidth import BandwidthProbe
from repro.metrics.summary import format_table
from repro.sim.topology import Region
from repro.workloads.runner import ClosedLoopRunner
from repro.workloads.ycsb import workload_by_name

DEFAULT_SYSTEMS = ("C1", "CC2", "*CC2")
DEFAULT_CONFIGS = (("A", "latest"), ("A", "zipfian"),
                   ("B", "latest"), ("B", "zipfian"))


def _measure_bandwidth(system: str, workload_name: str, distribution: str,
                       threads: int, duration_ms: float, warmup_ms: float,
                       cooldown_ms: float, record_count: int,
                       seed: int) -> Dict:
    spec = workload_by_name(workload_name).with_distribution(distribution)
    scenario = build_cassandra_scenario(
        seed=seed, record_count=record_count,
        client_regions=(Region.IRL, Region.FRK, Region.VRG),
        config=cassandra_config_for(system))
    measured_client = scenario.client_in(Region.IRL)
    probe = BandwidthProbe(scenario.env.network,
                           client_names=[measured_client.name],
                           server_names=scenario.cluster.replica_names())
    probe.start()

    runners = []
    for region, client in scenario.clients.items():
        runner = ClosedLoopRunner(
            scheduler=scenario.env.scheduler,
            issue=make_kv_issue(client, system),
            make_generator=make_generator_factory(
                spec, scenario.dataset, seed,
                f"fig08-{system}-{workload_name}-{distribution}-{region}"),
            threads=threads, duration_ms=duration_ms, warmup_ms=warmup_ms,
            cooldown_ms=cooldown_ms, label=f"fig08-{system}-{region}")
        runners.append((region, runner))
    for _, runner in runners:
        runner.start()
    end = max(runner.end_time for _, runner in runners)
    scenario.env.run(until=end + 60_000.0)
    probe.stop()

    measured_runner = dict(runners)[Region.IRL]
    total_ops = measured_runner.result.total_ops
    return {
        "system": system,
        "workload": workload_name,
        "distribution": distribution,
        "kb_per_op": probe.kilobytes_per_op(total_ops),
        "ops": total_ops,
        "divergence_pct": measured_runner.result.divergence.divergence_percent(),
    }


def build_fig08_points(systems: Iterable[str] = DEFAULT_SYSTEMS,
                       configs: Iterable = DEFAULT_CONFIGS, threads: int = 10,
                       duration_ms: float = 8_000.0,
                       warmup_ms: float = 2_000.0,
                       cooldown_ms: float = 1_000.0,
                       record_count: int = 1_000,
                       seed: int = 42) -> List[SweepPoint]:
    """One sweep point per ((workload, distribution), system) cell."""
    return make_points("fig08", (
        ({"workload": workload_name, "distribution": distribution,
          "system": system},
         dict(system=system, workload_name=workload_name,
              distribution=distribution, threads=threads,
              duration_ms=duration_ms, warmup_ms=warmup_ms,
              cooldown_ms=cooldown_ms, record_count=record_count, seed=seed))
        for workload_name, distribution in configs
        for system in systems))


def run_fig08_point(point: SweepPoint) -> Dict:
    return _measure_bandwidth(**point.kwargs)


def _merge_overheads(records: List[Dict]) -> List[Dict]:
    """Fill ``overhead_vs_c1_pct`` from each configuration's C1 baseline.

    Replicates the serial loop exactly: the baseline resets per (workload,
    distribution) group and systems measured before C1 report 0.0.
    """
    baseline_kb = None
    group = None
    for record in records:
        if (record["workload"], record["distribution"]) != group:
            group = (record["workload"], record["distribution"])
            baseline_kb = None
        if record["system"] == "C1":
            baseline_kb = record["kb_per_op"]
        if baseline_kb:
            record["overhead_vs_c1_pct"] = \
                100.0 * (record["kb_per_op"] / baseline_kb - 1.0)
        else:
            record["overhead_vs_c1_pct"] = 0.0
    return records


def run_fig08(systems: Iterable[str] = DEFAULT_SYSTEMS,
              configs: Iterable = DEFAULT_CONFIGS, threads: int = 10,
              duration_ms: float = 8_000.0, warmup_ms: float = 2_000.0,
              cooldown_ms: float = 1_000.0, record_count: int = 1_000,
              seed: int = 42, jobs: JobsSpec = 1) -> List[Dict]:
    """Regenerate the Figure 8 bandwidth comparison.

    Returns one record per (workload, distribution, system) with the average
    kB per operation on the measured client's links and, for convenience, the
    relative overhead versus the C1 baseline of the same configuration.
    """
    points = build_fig08_points(
        systems=systems, configs=configs, threads=threads,
        duration_ms=duration_ms, warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
        record_count=record_count, seed=seed)
    return _merge_overheads(run_sweep(points, run_fig08_point, jobs=jobs)
                            .records())


def format_fig08(records: List[Dict]) -> str:
    rows = [[r["workload"], r["distribution"], r["system"], r["kb_per_op"],
             r["overhead_vs_c1_pct"], r["divergence_pct"]] for r in records]
    return format_table(
        ["workload", "distribution", "system", "kB/op",
         "overhead vs C1 (%)", "divergence (%)"],
        rows,
        title="Figure 8 — client-replica bandwidth per operation")
