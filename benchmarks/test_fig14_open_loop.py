"""Figure 14 — latency and staleness vs offered load through saturation."""

import pytest

from repro.bench.fig14_open_loop import format_fig14, run_fig14


@pytest.mark.benchmark(group="fig14")
def test_fig14_open_loop(benchmark, save_report):
    records = benchmark.pedantic(
        lambda: run_fig14(seed=42), rounds=1, iterations=1)
    save_report("fig14_open_loop", format_fig14(records))

    def rows(**labels):
        return [r for r in records
                if all(r[k] == v for k, v in labels.items())]

    bindings = {r["binding"] for r in records}
    assert bindings == {"cassandra", "primary-backup"}

    for binding in sorted(bindings):
        closed = rows(binding=binding, mode="closed")
        assert len(closed) == 1, "one closed-loop overlay row per binding"
        capacity = closed[0]["throughput_ops_s"]
        assert capacity > 0

        low_queue = rows(binding=binding, policy="queue",
                         offered_rate_ops_s=100)[0]
        top_queue = rows(binding=binding, policy="queue",
                         offered_rate_ops_s=800)[0]
        top_shed = rows(binding=binding, policy="shed",
                        offered_rate_ops_s=800)[0]

        # Below saturation the open loop matches the closed overlay: no
        # shedding, no queueing, same service latency.
        assert low_queue["shed_pct"] == 0.0
        assert low_queue["queue_delay_p99_ms"] < 5.0
        assert low_queue["final_mean_ms"] == \
            pytest.approx(closed[0]["final_mean_ms"], rel=0.15)

        # Offered load far past capacity: goodput plateaus at the capacity
        # the closed loop measured, under either policy.
        for top in (top_queue, top_shed):
            assert top["offered_ops_s"] > 2.0 * capacity
            assert top["throughput_ops_s"] == pytest.approx(capacity,
                                                            rel=0.25)

        # Queueing converts overload into waiting: queue delay dominates
        # the response time and the tail explodes past the closed loop's.
        assert top_queue["queue_delay_mean_ms"] > 50.0
        assert top_queue["final_p99_ms"] > 2.0 * closed[0]["final_p99_ms"]

        # Shedding converts overload into drops: a large shed fraction,
        # but the latency of admitted operations stays at the service time.
        assert top_shed["shed_pct"] > 30.0
        assert top_shed["queue_delay_p99_ms"] == 0.0
        assert top_shed["final_p99_ms"] < top_queue["final_p99_ms"]
        assert top_shed["final_p99_ms"] == \
            pytest.approx(closed[0]["final_p99_ms"], rel=0.25)

        # Preliminary views stay ahead of finals, and some of them are
        # stale — the staleness-under-load axis the figure exists for.
        assert top_shed["preliminary_mean_ms"] < top_shed["final_mean_ms"]
        assert top_shed["staleness_pct"] > 0.0

    # Nothing failed anywhere: admission control sheds, it never errors.
    assert all(r["failed_ops"] == 0 for r in records)
