"""Unit tests for coordinator session bookkeeping and client request handling."""

import pytest

from repro.cassandra_sim.coordinator import ReadSession, WriteSession
from repro.cassandra_sim.versions import VersionedValue
from repro.sim.network import Message
from repro.sim.topology import Region


def _read_session(r=2, icg=True):
    return ReadSession(session_id=1, req_id=10, client="client", key="k",
                       r=r, icg=icg, started_at=0.0)


class TestReadSession:
    def test_quorum_reached_only_after_r_responses(self):
        session = _read_session(r=2)
        session.record("a", VersionedValue("v", (1.0, "a", 1)))
        assert not session.have_quorum()
        session.record("b", None)
        assert session.have_quorum()

    def test_resolved_prefers_newest_version(self):
        session = _read_session()
        session.record("a", VersionedValue("old", (1.0, "a", 1)))
        session.record("b", VersionedValue("new", (2.0, "b", 1)))
        assert session.resolved().value == "new"

    def test_resolved_none_when_all_missing(self):
        session = _read_session()
        session.record("a", None)
        session.record("b", None)
        assert session.resolved() is None

    def test_stale_replicas_lists_outdated_and_missing(self):
        session = _read_session(r=3)
        session.record("a", VersionedValue("new", (5.0, "a", 1)))
        session.record("b", VersionedValue("old", (1.0, "b", 1)))
        session.record("c", None)
        assert sorted(session.stale_replicas()) == ["b", "c"]

    def test_stale_replicas_empty_when_no_data(self):
        session = _read_session()
        session.record("a", None)
        assert session.stale_replicas() == []

    def test_duplicate_response_overwrites_not_double_counts(self):
        session = _read_session(r=2)
        session.record("a", VersionedValue("v1", (1.0, "a", 1)))
        session.record("a", VersionedValue("v2", (2.0, "a", 2)))
        assert not session.have_quorum()
        assert session.resolved().value == "v2"


class TestWriteSession:
    def _session(self, w=2):
        return WriteSession(session_id=1, req_id=10, client="client", key="k",
                            w=w, version=VersionedValue("v", (1.0, "c", 1)),
                            started_at=0.0)

    def test_ack_counting(self):
        session = self._session(w=2)
        session.record_ack("a")
        assert not session.have_quorum()
        session.record_ack("b")
        assert session.have_quorum()

    def test_duplicate_acks_ignored(self):
        session = self._session(w=2)
        session.record_ack("a")
        session.record_ack("a")
        assert not session.have_quorum()


class TestClientRequestHandling:
    def test_unknown_response_req_id_is_ignored(self, cassandra_setup):
        env, cluster, client = cassandra_setup
        stray = Message(src=cluster.replicas[0].name, dst=client.name,
                        kind="read_final",
                        payload={"req_id": 999, "value": "x", "found": True,
                                 "timestamp": None, "is_confirmation": False})
        # Should not raise even though no request 999 is pending.
        client.on_read_final(stray)
        client.on_read_preliminary(Message(
            src=cluster.replicas[0].name, dst=client.name,
            kind="read_preliminary",
            payload={"req_id": 999, "value": "x", "found": True,
                     "timestamp": None}))

    def test_duplicate_final_response_is_ignored(self, cassandra_setup):
        env, cluster, client = cassandra_setup
        results = []
        req_id = client.read("key1", r=1, on_final=results.append)
        env.run_until_idle()
        assert len(results) == 1
        client.on_read_final(Message(
            src=cluster.replicas[0].name, dst=client.name, kind="read_final",
            payload={"req_id": req_id, "value": "other", "found": True,
                     "timestamp": None, "is_confirmation": False}))
        assert len(results) == 1

    def test_coordinator_crash_leaves_request_pending(self, cassandra_setup):
        env, cluster, client = cassandra_setup
        cluster.replica_in(Region.FRK).crash()
        results = []
        client.read("key1", r=2, on_final=results.append)
        env.run_until_idle()
        # No wrong answer is fabricated; the request simply never completes.
        assert results == []

    def test_request_counters(self, cassandra_setup):
        env, _, client = cassandra_setup
        client.read("key1", r=1)
        client.write("key1", "v", w=1)
        assert client.reads_sent == 1
        assert client.writes_sent == 1
