"""Message-passing network with latency and byte accounting.

Nodes register under a unique name; :meth:`Network.send` delivers a
:class:`Message` to the destination node's ``handle_message`` after a one-way
delay drawn from the :class:`~repro.sim.topology.Topology`.  Every message's
size is charged to the (source, destination) link, which is what the paper's
bandwidth figures (Figures 8 and 10) measure on the client-replica links.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from repro.sim.scheduler import Scheduler
from repro.sim.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.node import Node

#: Fixed per-message framing overhead (TCP/IP + RPC headers), in bytes.
MESSAGE_HEADER_BYTES = 50

_message_ids = itertools.count(1)


def estimate_payload_size(payload: Any) -> int:
    """Rough byte size of a message payload.

    The simulator does not serialize payloads; this helper estimates sizes so
    bandwidth figures have realistic proportions.  Callers that know the true
    wire size (e.g. a 100 B YCSB value) should pass ``size_bytes`` explicitly
    to :meth:`Network.send` instead.
    """
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, dict):
        return sum(estimate_payload_size(k) + estimate_payload_size(v)
                   for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_payload_size(item) for item in payload)
    return 32


@dataclass
class Message:
    """A network message between two named nodes."""

    src: str
    dst: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 0
    msg_id: int = 0
    send_time: float = 0.0

    def __post_init__(self) -> None:
        if self.msg_id == 0:
            self.msg_id = next(_message_ids)
        if self.size_bytes <= 0:
            self.size_bytes = MESSAGE_HEADER_BYTES + estimate_payload_size(
                self.payload)


@dataclass
class LinkStats:
    """Accumulated traffic statistics for one directed link."""

    messages: int = 0
    bytes: int = 0

    def record(self, size_bytes: int) -> None:
        self.messages += 1
        self.bytes += size_bytes


class Network:
    """Delivers messages between registered nodes with WAN latencies."""

    def __init__(self, scheduler: Scheduler, topology: Topology) -> None:
        self.scheduler = scheduler
        self.topology = topology
        self._nodes: Dict[str, "Node"] = {}
        self._links: Dict[Tuple[str, str], LinkStats] = {}
        self._partitioned: set[frozenset] = set()
        self._partitioned_regions: set[frozenset] = set()
        #: Extra one-way latency (ms) per node pair or region pair; region
        #: keys use the ``"region:<name>"`` form so the two namespaces never
        #: collide with node names.
        self._link_extra_ms: Dict[frozenset, float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- membership ------------------------------------------------------
    def register(self, node: "Node") -> None:
        """Register a node; its name must be unique within the network."""
        if node.name in self._nodes:
            raise ValueError(f"node name already registered: {node.name}")
        self._nodes[node.name] = node

    def unregister(self, name: str) -> None:
        self._nodes.pop(name, None)

    def node(self, name: str) -> "Node":
        return self._nodes[name]

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    # -- fault injection ---------------------------------------------------
    def partition(self, name_a: str, name_b: str) -> None:
        """Drop all future messages between two nodes (both directions)."""
        self._partitioned.add(frozenset({name_a, name_b}))

    def heal(self, name_a: str, name_b: str) -> None:
        """Remove a partition previously installed by :meth:`partition`."""
        self._partitioned.discard(frozenset({name_a, name_b}))

    def partition_regions(self, region_a: str, region_b: str) -> None:
        """Drop all future messages between two regions (both directions).

        A WAN partition: every node in ``region_a`` loses connectivity to
        every node in ``region_b``, regardless of when nodes join.
        """
        self._partitioned_regions.add(frozenset({region_a, region_b}))

    def heal_regions(self, region_a: str, region_b: str) -> None:
        """Remove a region partition installed by :meth:`partition_regions`."""
        self._partitioned_regions.discard(frozenset({region_a, region_b}))

    def is_partitioned(self, name_a: str, name_b: str) -> bool:
        if frozenset({name_a, name_b}) in self._partitioned:
            return True
        if self._partitioned_regions:
            node_a = self._nodes.get(name_a)
            node_b = self._nodes.get(name_b)
            if node_a is not None and node_b is not None:
                key = frozenset({node_a.region, node_b.region})
                if key in self._partitioned_regions:
                    return True
        return False

    def degrade_link(self, endpoint_a: str, endpoint_b: str,
                     extra_ms: float) -> None:
        """Add one-way latency between two nodes (or two ``region:<r>`` keys)."""
        if extra_ms < 0:
            raise ValueError("extra latency must be non-negative")
        self._link_extra_ms[frozenset({endpoint_a, endpoint_b})] = extra_ms

    def restore_link(self, endpoint_a: str, endpoint_b: str) -> None:
        """Remove a degradation installed by :meth:`degrade_link`."""
        self._link_extra_ms.pop(frozenset({endpoint_a, endpoint_b}), None)

    def link_extra_ms(self, src: str, dst: str) -> float:
        """Total injected one-way latency currently applied to src→dst."""
        if not self._link_extra_ms:
            return 0.0
        extra = self._link_extra_ms.get(frozenset({src, dst}), 0.0)
        src_node = self._nodes.get(src)
        dst_node = self._nodes.get(dst)
        if src_node is not None and dst_node is not None:
            extra += self._link_extra_ms.get(
                frozenset({f"region:{src_node.region}",
                           f"region:{dst_node.region}"}), 0.0)
        return extra

    # -- traffic -----------------------------------------------------------
    def send(self, src: str, dst: str, kind: str,
             payload: Optional[Dict[str, Any]] = None,
             size_bytes: Optional[int] = None,
             extra_delay_ms: float = 0.0) -> Message:
        """Send a message; returns the :class:`Message` (already accounted).

        The message is charged to the link even if the destination is down or
        partitioned away — bytes leave the sender's NIC regardless.  A *dead
        sender*, however, sends nothing at all: work still queued on a
        crashed node must not leak protocol messages (or bytes) out of it.
        """
        if src not in self._nodes:
            raise KeyError(f"unknown source node: {src}")
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node: {dst}")
        message = Message(src=src, dst=dst, kind=kind,
                          payload=payload or {},
                          size_bytes=size_bytes or 0,
                          send_time=self.scheduler.now())
        if not self._nodes[src].alive:
            self.messages_dropped += 1
            return message
        self.messages_sent += 1
        self._link(src, dst).record(message.size_bytes)

        if self.is_partitioned(src, dst) or not self._nodes[dst].alive:
            self.messages_dropped += 1
            return message

        src_node = self._nodes[src]
        dst_node = self._nodes[dst]
        same_host = (src_node.host is not None
                     and src_node.host == dst_node.host) or src == dst
        delay = self.topology.one_way(src_node.region, dst_node.region,
                                      same_host=same_host)
        delay += self.link_extra_ms(src, dst)
        self.scheduler.schedule(delay + extra_delay_ms,
                                self._deliver, message)
        return message

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None or not node.alive:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        node.handle_message(message)

    # -- accounting --------------------------------------------------------
    def _link(self, src: str, dst: str) -> LinkStats:
        key = (src, dst)
        if key not in self._links:
            self._links[key] = LinkStats()
        return self._links[key]

    def link_stats(self, src: str, dst: str) -> LinkStats:
        """Traffic on the directed link src→dst (zeros if never used)."""
        return self._links.get((src, dst), LinkStats())

    def bytes_between(self, name_a: str, name_b: str) -> int:
        """Total bytes exchanged between two nodes, both directions."""
        return (self.link_stats(name_a, name_b).bytes
                + self.link_stats(name_b, name_a).bytes)

    def bytes_touching(self, name: str) -> int:
        """Total bytes on every link where ``name`` is an endpoint."""
        total = 0
        for (src, dst), stats in self._links.items():
            if src == name or dst == name:
                total += stats.bytes
        return total

    def total_bytes(self) -> int:
        return sum(stats.bytes for stats in self._links.values())

    def reset_stats(self) -> None:
        """Clear byte counters (used to scope measurement windows)."""
        self._links.clear()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
