"""Discrete-event simulation kernel.

The paper evaluates Correctables on Amazon EC2 with replicas spread across
three regions (Ireland, Frankfurt, N. Virginia).  This package provides the
deterministic substrate we substitute for that testbed: a virtual clock and
event scheduler (:mod:`repro.sim.scheduler`), a region topology with the
paper's WAN round-trip times (:mod:`repro.sim.topology`), a message-passing
network with byte accounting (:mod:`repro.sim.network`), and node processing
queues that model server load (:mod:`repro.sim.node`).

All latencies are expressed in milliseconds of simulated time.
"""

from repro.sim.clock import Clock
from repro.sim.scheduler import Event, Scheduler
from repro.sim.rand import derive_rng, derive_seed
from repro.sim.topology import (
    Region,
    Topology,
    ec2_topology,
    twissandra_topology,
)
from repro.sim.network import Message, Network, LinkStats
from repro.sim.node import Node, ProcessingQueue
from repro.sim.environment import SimEnvironment

__all__ = [
    "Clock",
    "Event",
    "Scheduler",
    "derive_rng",
    "derive_seed",
    "Region",
    "Topology",
    "ec2_topology",
    "twissandra_topology",
    "Message",
    "Network",
    "LinkStats",
    "Node",
    "ProcessingQueue",
    "SimEnvironment",
]
