"""Operation descriptors.

Applications describe *what* they want done (read a key, dequeue from a
queue); bindings decide *how*.  An :class:`Operation` is therefore a plain
value object: a name, a key (used for routing and byte accounting), and
optional arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class Operation:
    """A storage operation to be executed under one or more consistency levels."""

    name: str
    key: Optional[str] = None
    args: tuple = ()
    kwargs: tuple = ()  # stored as a sorted tuple of (key, value) pairs
    is_read: bool = True

    def arguments(self) -> Dict[str, Any]:
        """The keyword arguments as a dictionary."""
        return dict(self.kwargs)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``read(user:42)``."""
        target = self.key if self.key is not None else ""
        return f"{self.name}({target})"


def _freeze_kwargs(kwargs: Dict[str, Any]) -> tuple:
    return tuple(sorted(kwargs.items()))


def read(key: str) -> Operation:
    """Read the value stored under ``key``."""
    return Operation(name="read", key=key, is_read=True)


def write(key: str, value: Any) -> Operation:
    """Write ``value`` under ``key``."""
    return Operation(name="write", key=key, args=(value,), is_read=False)


def enqueue(queue: str, item: Any) -> Operation:
    """Append ``item`` to the replicated queue named ``queue``."""
    return Operation(name="enqueue", key=queue, args=(item,), is_read=False)


def dequeue(queue: str) -> Operation:
    """Remove and return the head of the replicated queue named ``queue``."""
    return Operation(name="dequeue", key=queue, is_read=False)


def custom(name: str, key: Optional[str] = None, *args: Any,
           is_read: bool = True, **kwargs: Any) -> Operation:
    """An application-defined operation understood by a specific binding."""
    return Operation(name=name, key=key, args=tuple(args),
                     kwargs=_freeze_kwargs(kwargs), is_read=is_read)
