"""Load generation inside the simulation: closed- and open-loop runners.

The paper's load experiments (Figures 6, 7, 8 and 11) use YCSB client
threads in a closed loop: each thread issues one operation, waits for it to
complete, then immediately issues the next.  :class:`ClosedLoopRunner`
reproduces that behaviour on simulated time, with warm-up and cool-down
periods excluded from measurement (the paper elides the first and last 15 s
of 60 s trials).

A closed loop can only show latency at the throughput it self-limits to; it
says nothing about behaviour under *offered* load.  :class:`OpenLoopRunner`
schedules operation arrivals from a deterministic arrival process
(:mod:`repro.workloads.arrivals`) across a pool of lightweight client
sessions, with bounded in-flight admission control (queue or shed) and
queue-delay accounting — the regime the saturation experiments (fig14)
measure.

Both runners share :class:`~repro.workloads.engine.LoadEngine`: the same
``issue``/``done`` contract, warm-up/cool-down windows, fault-script arming,
and metrics accounting.  They are system-agnostic: the experiment harness
supplies an ``issue`` function that executes one operation against whatever
stack is under test and reports completion (with optional preliminary/final
latencies and divergence information) through a ``done`` callback.
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.metrics.queueing import AdmissionStats
from repro.sim.scheduler import Scheduler
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.engine import IssueFunction, LoadEngine, RunResult
from repro.workloads.ycsb import OperationGenerator

__all__ = [
    "ClosedLoopRunner",
    "IssueFunction",
    "OpenLoopRunner",
    "RunResult",
]


class _ClientThread:
    """One closed-loop logical thread issuing operations back-to-back.

    The loop is closed — at most one operation is outstanding per thread —
    so the in-flight operation's type and issue time live on the instance
    and the completion callback is the bound :meth:`_on_done`, instead of a
    fresh closure per operation.

    The thread is also the *lean completion sink*: when the issue function
    exposes a ``lean`` fast path (``protocol.lean_ops``), completions come
    back through the positional ``deliver_*`` methods below — the thread
    accounts the operation straight into the runner's recorders with the
    exact arithmetic of :meth:`LoadEngine.record_completion` (closed loop:
    arrival == issue, queue delay identically zero) and issues the next
    operation, with no response/info dicts in between.
    """

    __slots__ = ("runner", "thread_id", "generator", "_gen_buffered",
                 "_op_type", "_issued_at", "_done_cb", "_lean_icg",
                 "_had_prelim", "_prelim_value", "_prelim_latency")

    def __init__(self, runner: "ClosedLoopRunner", thread_id: int,
                 generator: OperationGenerator) -> None:
        self.runner = runner
        self.thread_id = thread_id
        self.generator = generator
        #: Whether the generator exposes the chunked packed-op buffer the
        #: lean issue loop decodes inline (duck-typed replay generators
        #: don't; they always go through next_operation).
        self._gen_buffered = getattr(generator, "_buf", None) is not None
        self._op_type = ""
        self._issued_at = 0.0
        self._done_cb = self._on_done  # bound once, reused every operation
        self._lean_icg = False
        self._had_prelim = False
        self._prelim_value = None
        self._prelim_latency = None

    def start(self) -> None:
        # Closed-loop threads live for the whole run: engage the generator's
        # chunked prefill immediately instead of waiting out its per-draw
        # auto-detection window (no-op for non-vectorizable distributions).
        # Generators are duck-typed (fig13's queue-replay generator has no
        # prefill), so probe rather than require it.
        prefill = getattr(self.generator, "prefill", None)
        if prefill is not None:
            prefill(64)
        self._issue_next()

    def _issue_next(self) -> None:
        runner = self.runner
        now = runner.scheduler.clock._now
        if now >= runner.end_time:
            return
        lean = runner._lean_issue
        gen = self.generator
        if lean is not None and self._gen_buffered:
            # OperationGenerator.next_operation, inlined for the buffered
            # case: pop the packed op and decode it in place — no call
            # frame, no result tuple.  Counters and value/key resolution
            # follow the buffered branch of next_operation exactly; an
            # empty buffer or uncached key list falls back to the method
            # (which refills the buffer through the same streams).
            buf = gen._buf
            pos = gen._buf_pos
            keys = gen._keys
            if keys is not None and pos < len(buf):
                packed = buf[pos]
                gen._buf_pos = pos + 1
                key = keys[packed >> 1]
                if packed & 1:
                    gen.updates_generated += 1
                    op_type = "update"
                    # Dataset.random_value, inlined for the buffered case.
                    ds = gen.dataset
                    vpos = ds._value_pos
                    vbuf = ds._value_buf
                    if vpos < len(vbuf):
                        ds._value_pos = vpos + 1
                        value = vbuf[vpos]
                    else:
                        value = ds._next_value_chunk()
                else:
                    gen.reads_generated += 1
                    op_type = "read"
                    value = None
            else:
                op_type, key, value = gen.next_operation()
            self._op_type = op_type
            self._issued_at = now
            if lean(op_type, key, value, self):
                return
            runner.issue(op_type, key, value, self._done_cb)
            return
        op_type, key, value = gen.next_operation()
        self._op_type = op_type
        self._issued_at = now
        if lean is not None and lean(op_type, key, value, self):
            return
        runner.issue(op_type, key, value, self._done_cb)

    def _on_done(self, info: Dict[str, Any]) -> None:
        runner = self.runner
        runner.record_completion(self._op_type, self._issued_at, info)
        think = runner.think_time_ms
        if think > 0:
            runner.scheduler.schedule(think, self._issue_next)
        else:
            self._issue_next()

    # -- lean completion sink -------------------------------------------------
    def deliver_read_preliminary(self, value: Any, timestamp: Any,
                                 latency_ms: float) -> None:
        self._had_prelim = True
        self._prelim_value = value
        self._prelim_latency = latency_ms

    def deliver_read_final(self, value: Any, timestamp: Any,
                           latency_ms: float, is_confirmation: bool) -> None:
        runner = self.runner
        result = runner.result
        result.total_ops += 1
        completed_at = runner.scheduler.clock._now
        if self._lean_icg:
            had = self._had_prelim
            diverged = (had and self._prelim_value != value
                        and not is_confirmation)
            prelim_latency = self._prelim_latency
            self._had_prelim = False
            self._prelim_value = None
            self._prelim_latency = None
            if runner._measure_start <= self._issued_at \
                    and completed_at <= runner._measure_end:
                result.measured_ops += 1
                result.final_latency.record(latency_ms)
                result.read_latency.record(latency_ms)
                if prelim_latency is not None:
                    result.preliminary_latency.record(prelim_latency)
                result.divergence.record_outcome(diverged,
                                                 had_preliminary=had)
        elif runner._measure_start <= self._issued_at \
                and completed_at <= runner._measure_end:
            result.measured_ops += 1
            result.final_latency.record(latency_ms)
            result.read_latency.record(latency_ms)
        think = runner.think_time_ms
        if think > 0:
            runner.scheduler.schedule(think, self._issue_next)
        else:
            self._issue_next()

    def deliver_read_error(self, error: str, latency_ms: float) -> None:
        runner = self.runner
        result = runner.result
        result.total_ops += 1
        result.failed_ops += 1
        completed_at = runner.scheduler.clock._now
        icg = self._lean_icg
        had = self._had_prelim
        prelim_latency = self._prelim_latency
        self._had_prelim = False
        self._prelim_value = None
        self._prelim_latency = None
        if runner._measure_start <= self._issued_at \
                and completed_at <= runner._measure_end:
            result.measured_ops += 1
            result.final_latency.record(latency_ms)
            result.read_latency.record(latency_ms)
            if icg:
                if prelim_latency is not None:
                    result.preliminary_latency.record(prelim_latency)
                result.divergence.record_outcome(False, had_preliminary=had)
        think = runner.think_time_ms
        if think > 0:
            runner.scheduler.schedule(think, self._issue_next)
        else:
            self._issue_next()

    def deliver_write_ack(self, timestamp: Any, latency_ms: float) -> None:
        runner = self.runner
        result = runner.result
        result.total_ops += 1
        completed_at = runner.scheduler.clock._now
        if runner._measure_start <= self._issued_at \
                and completed_at <= runner._measure_end:
            result.measured_ops += 1
            result.final_latency.record(latency_ms)
            result.update_latency.record(latency_ms)
        think = runner.think_time_ms
        if think > 0:
            runner.scheduler.schedule(think, self._issue_next)
        else:
            self._issue_next()

    def deliver_write_error(self, error: str, latency_ms: float) -> None:
        runner = self.runner
        result = runner.result
        result.total_ops += 1
        result.failed_ops += 1
        completed_at = runner.scheduler.clock._now
        if runner._measure_start <= self._issued_at \
                and completed_at <= runner._measure_end:
            result.measured_ops += 1
            result.final_latency.record(latency_ms)
            result.update_latency.record(latency_ms)
        think = runner.think_time_ms
        if think > 0:
            runner.scheduler.schedule(think, self._issue_next)
        else:
            self._issue_next()


class ClosedLoopRunner(LoadEngine):
    """Runs N closed-loop client threads over simulated time and aggregates metrics."""

    def __init__(self, scheduler: Scheduler, issue: IssueFunction,
                 make_generator: Callable[[int], OperationGenerator],
                 threads: int, duration_ms: float = 30_000.0,
                 warmup_ms: float = 5_000.0, cooldown_ms: float = 5_000.0,
                 think_time_ms: float = 0.0, label: str = "run",
                 faults: Optional[Any] = None,
                 use_histograms: bool = False) -> None:
        if threads <= 0:
            raise ValueError("need at least one client thread")
        super().__init__(scheduler, issue, duration_ms=duration_ms,
                         warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
                         label=label, faults=faults,
                         use_histograms=use_histograms)
        self.threads = threads
        self.think_time_ms = think_time_ms
        #: ``issue.lean(op_type, key, value, sink) -> bool`` when the issue
        #: function supports the lean op pipeline; it re-checks the
        #: ``protocol.lean_ops`` switch per call and returns False to route
        #: the operation through the classic dict pipeline instead.
        self._lean_issue = getattr(issue, "lean", None)
        self._threads = [
            _ClientThread(self, i, make_generator(i)) for i in range(threads)
        ]

    def _start_load(self) -> None:
        for thread in self._threads:
            # Start threads at slightly staggered instants so they do not all
            # hit the coordinator in the same event tick.
            self.scheduler.schedule(0.01 * thread.thread_id, thread.start)


class _Session:
    """One lightweight simulated user: a session id plus its workload state.

    Thousands of these share one ``issue`` function (and, underneath it,
    one client/binding) — there is no per-user thread object, just the
    generator that decides what this user asks for next.
    """

    __slots__ = ("session_id", "generator")

    def __init__(self, session_id: int, generator: OperationGenerator) -> None:
        self.session_id = session_id
        self.generator = generator


class _OpenOp:
    """One in-flight open-loop operation: pooled completion state.

    Replaces the per-operation ``partial`` closure the open loop used to
    allocate as its ``done`` callback, and doubles as the *lean completion
    sink* (``protocol.lean_ops``): completions delivered through the
    positional ``deliver_*`` methods account straight into the runner's
    recorders with the exact arithmetic of
    :meth:`LoadEngine.record_completion` for open loops — queue delay
    (issue minus arrival) added to every recorded latency, the measurement
    window judged on the true arrival instant, one queue-delay sample per
    measured completion — then refill the next waiting arrival, with no
    response/info dicts in between.
    """

    __slots__ = ("runner", "op_type", "issued_at", "arrived_at", "done",
                 "_lean_icg", "_had_prelim", "_prelim_value",
                 "_prelim_latency")

    _pool: list = []
    _created = 0
    _recycled = 0

    def __init__(self) -> None:
        self.done = self._on_done  # bound once, reused every operation

    @classmethod
    def acquire(cls, runner: "OpenLoopRunner", op_type: str,
                issued_at: float, arrived_at: float) -> "_OpenOp":
        pool = cls._pool
        if pool:
            op = pool.pop()
        else:
            cls._created += 1
            op = cls()
        op.runner = runner
        op.op_type = op_type
        op.issued_at = issued_at
        op.arrived_at = arrived_at
        op._lean_icg = False
        op._had_prelim = False
        op._prelim_value = None
        op._prelim_latency = None
        return op

    def _recycle(self) -> None:
        # Called before completion handling: refilling from the wait queue
        # issues the next operation, which may legitimately reuse this
        # very record.
        self.runner = None
        self._prelim_value = None
        cls = _OpenOp
        cls._recycled += 1
        cls._pool.append(self)

    @classmethod
    def pool_stats(cls) -> Dict[str, int]:
        """Counters for the pool-leak tests."""
        return {"created": cls._created, "recycled": cls._recycled,
                "free": len(cls._pool)}

    # -- classic completion (dict pipeline) -----------------------------------
    def _on_done(self, info: Dict[str, Any]) -> None:
        runner = self.runner
        op_type = self.op_type
        issued_at = self.issued_at
        arrived_at = self.arrived_at
        self._recycle()
        runner._in_flight -= 1
        runner.record_completion(op_type, issued_at, info,
                                 arrived_at=arrived_at)
        runner._refill()

    # -- lean completion sink -------------------------------------------------
    def deliver_read_preliminary(self, value: Any, timestamp: Any,
                                 latency_ms: float) -> None:
        self._had_prelim = True
        self._prelim_value = value
        self._prelim_latency = latency_ms

    def deliver_read_final(self, value: Any, timestamp: Any,
                           latency_ms: float, is_confirmation: bool) -> None:
        runner = self.runner
        issued_at = self.issued_at
        arrived_at = self.arrived_at
        icg = self._lean_icg
        had = self._had_prelim
        prelim_value = self._prelim_value
        prelim_latency = self._prelim_latency
        self._recycle()
        runner._in_flight -= 1
        result = runner.result
        result.total_ops += 1
        completed_at = runner.scheduler.clock._now
        if runner._measure_start <= arrived_at \
                and completed_at <= runner._measure_end:
            queue_delay = issued_at - arrived_at
            result.measured_ops += 1
            result.admission.record_queue_delay(queue_delay)
            if queue_delay:
                latency_ms += queue_delay
            result.final_latency.record(latency_ms)
            result.read_latency.record(latency_ms)
            if icg:
                if prelim_latency is not None:
                    if queue_delay:
                        prelim_latency += queue_delay
                    result.preliminary_latency.record(prelim_latency)
                result.divergence.record_outcome(
                    had and prelim_value != value and not is_confirmation,
                    had_preliminary=had)
        runner._refill()

    def deliver_write_ack(self, timestamp: Any, latency_ms: float) -> None:
        runner = self.runner
        issued_at = self.issued_at
        arrived_at = self.arrived_at
        self._recycle()
        runner._in_flight -= 1
        result = runner.result
        result.total_ops += 1
        completed_at = runner.scheduler.clock._now
        if runner._measure_start <= arrived_at \
                and completed_at <= runner._measure_end:
            queue_delay = issued_at - arrived_at
            result.measured_ops += 1
            result.admission.record_queue_delay(queue_delay)
            if queue_delay:
                latency_ms += queue_delay
            result.final_latency.record(latency_ms)
            result.update_latency.record(latency_ms)
        runner._refill()

    def deliver_read_error(self, error: str, latency_ms: float) -> None:
        self._deliver_error(latency_ms, is_read=True)

    def deliver_write_error(self, error: str, latency_ms: float) -> None:
        self._deliver_error(latency_ms, is_read=False)

    def _deliver_error(self, latency_ms: float, is_read: bool) -> None:
        # Mirrors the classic session issue path on errors: a bare
        # ``{"failed": True}`` — response-time accounting only, no
        # preliminary/divergence samples.
        runner = self.runner
        issued_at = self.issued_at
        arrived_at = self.arrived_at
        self._recycle()
        runner._in_flight -= 1
        result = runner.result
        result.total_ops += 1
        result.failed_ops += 1
        completed_at = runner.scheduler.clock._now
        if runner._measure_start <= arrived_at \
                and completed_at <= runner._measure_end:
            queue_delay = issued_at - arrived_at
            result.measured_ops += 1
            result.admission.record_queue_delay(queue_delay)
            if queue_delay:
                latency_ms += queue_delay
            result.final_latency.record(latency_ms)
            if is_read:
                result.read_latency.record(latency_ms)
            else:
                result.update_latency.record(latency_ms)
        runner._refill()


class OpenLoopRunner(LoadEngine):
    """Issues operations when an arrival process says users arrive.

    Admitted arrivals are spread round-robin over ``sessions`` lightweight
    client sessions (each with its own operation generator, so per-user
    workload state — e.g. the *Latest* distribution's insertion frontier —
    stays per-user; shed arrivals consume neither a session turn nor a
    generator draw).  Admission control bounds concurrency:

    * ``max_in_flight=None`` — no bound: every arrival is issued
      immediately (pure open loop; latency is the store's own).
    * ``max_in_flight=N, policy="queue"`` — arrivals beyond N wait in a
      FIFO queue (bounded by ``queue_limit``; overflow is shed).  Queue
      delay is accounted separately and added to the recorded response
      times — this is the component that explodes at saturation.
    * ``max_in_flight=N, policy="shed"`` — arrivals beyond N are dropped
      on the spot (load shedding; latency stays flat, goodput saturates).

    Fault scripts compose exactly as with the closed loop: the schedule is
    armed relative to the run's start, independent of the arrival shape.
    """

    POLICIES = ("queue", "shed")

    def __init__(self, scheduler: Scheduler, issue: IssueFunction,
                 make_generator: Callable[[int], OperationGenerator],
                 arrivals: ArrivalProcess, sessions: int = 100,
                 duration_ms: float = 30_000.0, warmup_ms: float = 5_000.0,
                 cooldown_ms: float = 5_000.0, label: str = "open-loop",
                 faults: Optional[Any] = None, use_histograms: bool = False,
                 max_in_flight: Optional[int] = None, policy: str = "queue",
                 queue_limit: Optional[int] = None) -> None:
        if sessions <= 0:
            raise ValueError("need at least one client session")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown admission policy {policy!r}; "
                             f"choose from {list(self.POLICIES)}")
        if max_in_flight is not None and max_in_flight <= 0:
            raise ValueError("max_in_flight must be positive (or None)")
        if queue_limit is not None and queue_limit < 0:
            raise ValueError("queue_limit must be non-negative (or None)")
        super().__init__(scheduler, issue, duration_ms=duration_ms,
                         warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
                         label=label, faults=faults,
                         use_histograms=use_histograms,
                         admission=AdmissionStats(use_histograms=use_histograms))
        self.arrivals = arrivals
        self.max_in_flight = max_in_flight
        self.policy = policy
        self.queue_limit = queue_limit
        self._sessions = [
            _Session(i, make_generator(i)) for i in range(sessions)
        ]
        self._next_session = 0
        self._in_flight = 0
        #: Waiting arrivals: (session_id, op_type, key, value, arrived_at).
        self._waiting: Deque[Tuple[int, str, str, Optional[str], float]] = deque()
        self._next_arrival_at = 0.0
        # An issue function may declare a fifth ``session_id`` parameter to
        # receive the session the runner chose for the operation — then the
        # user-to-client-session mapping is the runner's single rotation,
        # structural rather than a second rotation kept in lockstep by hand.
        try:
            parameters = inspect.signature(issue).parameters
            self._issue_takes_session = (len(parameters) >= 5
                                         or "session_id" in parameters)
        except (TypeError, ValueError):
            self._issue_takes_session = False
        #: ``issue.lean(op_type, key, value, sink[, session_id]) -> bool``
        #: when the issue function supports the lean op pipeline; it
        #: re-checks the ``protocol.lean_ops`` switch per call and returns
        #: False to route the operation through the classic dict pipeline.
        self._lean_issue = getattr(issue, "lean", None)
        self._lean_takes_session = False
        if self._lean_issue is not None:
            try:
                parameters = inspect.signature(self._lean_issue).parameters
                self._lean_takes_session = (len(parameters) >= 5
                                            or "session_id" in parameters)
            except (TypeError, ValueError):
                self._lean_takes_session = False

    @property
    def admission(self) -> AdmissionStats:
        return self.result.admission  # type: ignore[return-value]

    # -- arrival scheduling --------------------------------------------------
    def _start_load(self) -> None:
        self._next_arrival_at = self.start_time
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        at = self._next_arrival_at + self.arrivals.next_gap_ms()
        self._next_arrival_at = at
        if at >= self.end_time:
            return
        self.scheduler.schedule_call_at(at, self._on_arrival)

    def _on_arrival(self) -> None:
        now = self.scheduler.now()
        measured = self.in_measurement_window(now)
        admission = self.admission
        admission.record_arrival(measured)
        # Decide the arrival's fate *before* consuming a session or a
        # generator draw: a shed arrival must not advance either, so the
        # runner's session rotation stays in lockstep with any rotation the
        # ``issue`` function keeps (e.g. a client-layer SessionPool) — one
        # step per issued operation, in issue order.  (Whenever the wait
        # queue is non-empty every in-flight slot is taken — completions
        # refill from the queue first — so admitted operations are issued
        # in arrival order and the lockstep holds under queueing too.)
        can_issue = (self.max_in_flight is None
                     or self._in_flight < self.max_in_flight)
        can_queue = self.policy == "queue" and (
            self.queue_limit is None
            or len(self._waiting) < self.queue_limit)
        if not (can_issue or can_queue):
            admission.record_shed(measured)
            self._schedule_next_arrival()
            return
        session = self._sessions[self._next_session]
        self._next_session += 1
        if self._next_session == len(self._sessions):
            self._next_session = 0
        op_type, key, value = session.generator.next_operation()
        if can_issue:
            self._issue_admitted(session.session_id, op_type, key, value,
                                 arrived_at=now)
        else:
            self._waiting.append((session.session_id, op_type, key, value,
                                  now))
            admission.record_queue_depth(len(self._waiting))
        self._schedule_next_arrival()

    # -- issuing and completion ----------------------------------------------
    def _issue_admitted(self, session_id: int, op_type: str, key: str,
                        value: Optional[str], arrived_at: float) -> None:
        now = self.scheduler.now()
        self._in_flight += 1
        self.admission.record_issue(self._in_flight)
        op = _OpenOp.acquire(self, op_type, now, arrived_at)
        lean = self._lean_issue
        if lean is not None:
            if self._lean_takes_session:
                if lean(op_type, key, value, op, session_id):
                    return
            elif lean(op_type, key, value, op):
                return
        if self._issue_takes_session:
            self.issue(op_type, key, value, op.done, session_id)
        else:
            self.issue(op_type, key, value, op.done)

    def _refill(self) -> None:
        """Issue the next waiting arrival once an in-flight slot freed up."""
        if self._waiting and (self.max_in_flight is None
                              or self._in_flight < self.max_in_flight):
            session_id, queued_op, key, value, arrived_at = \
                self._waiting.popleft()
            self._issue_admitted(session_id, queued_op, key, value,
                                 arrived_at)
