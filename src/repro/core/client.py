"""The application-facing Correctables client (Section 3.2).

The API has exactly three methods:

* :meth:`CorrectableClient.invoke_weak` — one result, weakest level;
* :meth:`CorrectableClient.invoke_strong` — one result, strongest level;
* :meth:`CorrectableClient.invoke` — incremental consistency guarantees: one
  view per requested level, weakest first, the strongest closing the
  Correctable.

CamelCase aliases (``invokeWeak`` etc.) are provided for parity with the
paper's listings.

For load experiments with many simulated users, :class:`SessionPool`
multiplexes lightweight :class:`ClientSession` handles over one client (and
therefore one binding): thousands of users share the underlying connection
state with no per-user thread or binding objects, each session only carrying
its id and invocation counters.  This is what the open-loop runner
(:class:`repro.workloads.runner.OpenLoopRunner`) drives its sessions
through.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from repro.core.consistency import ConsistencyLevel, validate_levels
from repro.core.correctable import Correctable, LeanCorrectable
from repro.core.errors import BindingError
from repro.core.operations import Operation


class CorrectableClient:
    """Entry point applications use to access a replicated store via a binding."""

    def __init__(self, binding, clock: Optional[Callable[[], float]] = None) -> None:
        self.binding = binding
        self._clock = clock if clock is not None else getattr(binding, "clock", None)
        # Lightweight instrumentation used by the evaluation harness.
        self.invocations = 0
        self.weak_invocations = 0
        self.strong_invocations = 0
        self.icg_invocations = 0

    # -- level bookkeeping --------------------------------------------------
    def available_levels(self) -> List[ConsistencyLevel]:
        """Consistency levels the binding advertises, weakest first."""
        # Validating the full set against itself sorts, checks non-emptiness,
        # and hits the same memo the per-invocation validation uses.
        levels = self.binding.consistency_levels()
        return validate_levels(levels, levels)

    def _validate(self, requested: Iterable[ConsistencyLevel]) -> List[ConsistencyLevel]:
        # The same validation routine every binding uses, so the client and
        # the bindings raise one consistent error type.
        return validate_levels(requested, self.binding.consistency_levels())

    # -- the three API methods ------------------------------------------------
    def invoke(self, operation: Operation,
               levels: Optional[Iterable[ConsistencyLevel]] = None) -> Correctable:
        """Execute ``operation`` with incremental consistency guarantees.

        Returns a :class:`Correctable` that receives one view per requested
        level (weakest to strongest) and closes with the strongest one.  When
        ``levels`` is omitted, every level the binding offers is requested.
        """
        if levels is None:
            requested = self.available_levels()
        else:
            requested = self._validate(levels)
        self.invocations += 1
        if len(requested) > 1:
            self.icg_invocations += 1
        return self._submit(operation, requested)

    def invoke_weak(self, operation: Operation) -> Correctable:
        """Execute ``operation`` under the weakest available level only."""
        self.invocations += 1
        self.weak_invocations += 1
        return self._submit(operation, [self.available_levels()[0]])

    def invoke_strong(self, operation: Operation) -> Correctable:
        """Execute ``operation`` under the strongest available level only."""
        self.invocations += 1
        self.strong_invocations += 1
        return self._submit(operation, [self.available_levels()[-1]])

    # CamelCase aliases matching the paper's listings.
    invokeWeak = invoke_weak
    invokeStrong = invoke_strong

    # -- lean op pipeline ----------------------------------------------------
    def invoke_lean(self, operation: Operation,
                    levels: Optional[Iterable[ConsistencyLevel]] = None
                    ) -> Optional[LeanCorrectable]:
        """Execute ``operation`` through the lean op pipeline, if available.

        Returns a pooled :class:`LeanCorrectable` (single-slot callbacks,
        no view list — the caller releases it when done), or ``None`` when
        the binding cannot take the lean path right now (no lean support,
        ``protocol.lean_ops`` off, fault machinery armed, or no lean
        mapping for this operation/levels combination) — the caller then
        falls back to :meth:`invoke`.  Explicitly opt-in: plain ``invoke``
        always returns a full :class:`Correctable`.
        """
        binding = self.binding
        if not binding.lean_ok():
            return None
        if levels is None:
            requested = self.available_levels()
        else:
            requested = self._validate(levels)
        lean = LeanCorrectable.acquire(clock=self._clock)
        if not binding.submit_lean(operation, requested, lean):
            LeanCorrectable.release(lean)
            return None
        self.invocations += 1
        if len(requested) > 1:
            self.icg_invocations += 1
        return lean

    # -- session multiplexing ------------------------------------------------
    def sessions(self, size: int) -> "SessionPool":
        """A pool of ``size`` lightweight sessions sharing this client."""
        return SessionPool(self, size)

    # -- plumbing ---------------------------------------------------------------
    def _submit(self, operation: Operation,
                levels: List[ConsistencyLevel]) -> Correctable:
        correctable = Correctable(clock=self._clock)
        strongest_requested = levels[-1]

        def _callback(level: ConsistencyLevel, value, metadata=None, error=None):
            metadata = metadata or {}
            if error is not None:
                if not correctable.is_done():
                    correctable.fail(error)
                return
            if level not in levels:
                raise BindingError(
                    f"binding delivered unrequested level {level.name}")
            if level == strongest_requested:
                if correctable.is_done():
                    return
                if metadata.get("is_confirmation"):
                    latest = correctable.latest_view()
                    confirmed = latest.value if latest is not None else value
                    correctable.close(confirmed, level, metadata=metadata,
                                      is_confirmation=True)
                else:
                    correctable.close(value, level, metadata=metadata)
            else:
                correctable.update(value, level, metadata=metadata)

        self.binding.submit_operation(operation, levels, _callback)
        return correctable


class ClientSession:
    """One logical user multiplexed over a shared :class:`CorrectableClient`.

    Sessions carry no threads and no binding state — only an id and
    invocation counters — so an experiment can simulate thousands of users
    against one binding without thousands of connection objects.  Every
    ``invoke*`` delegates to the parent client (which does the level
    validation once, against the shared binding).
    """

    __slots__ = ("client", "session_id", "invocations")

    def __init__(self, client: CorrectableClient, session_id: int) -> None:
        self.client = client
        self.session_id = session_id
        self.invocations = 0

    def invoke(self, operation: Operation,
               levels: Optional[Iterable[ConsistencyLevel]] = None) -> Correctable:
        self.invocations += 1
        return self.client.invoke(operation, levels)

    def invoke_weak(self, operation: Operation) -> Correctable:
        self.invocations += 1
        return self.client.invoke_weak(operation)

    def invoke_strong(self, operation: Operation) -> Correctable:
        self.invocations += 1
        return self.client.invoke_strong(operation)

    def invoke_lean(self, operation: Operation,
                    levels: Optional[Iterable[ConsistencyLevel]] = None
                    ) -> Optional[LeanCorrectable]:
        """Lean-pipeline invoke (see :meth:`CorrectableClient.invoke_lean`);
        counted against this session only when actually issued."""
        lean = self.client.invoke_lean(operation, levels)
        if lean is not None:
            self.invocations += 1
        return lean

    # CamelCase aliases matching the paper's listings.
    invokeWeak = invoke_weak
    invokeStrong = invoke_strong


class SessionPool:
    """A fixed pool of :class:`ClientSession`\\ s over one client.

    :meth:`next_session` hands sessions out round-robin, which is
    deterministic — the property the open-loop load experiments need when
    mapping an arrival stream onto users.
    """

    def __init__(self, client: CorrectableClient, size: int) -> None:
        if size <= 0:
            raise ValueError(f"session pool needs a positive size, got {size}")
        self.client = client
        self._sessions = [ClientSession(client, i) for i in range(size)]
        self._next = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[ClientSession]:
        return iter(self._sessions)

    def session(self, session_id: int) -> ClientSession:
        return self._sessions[session_id]

    def next_session(self) -> ClientSession:
        """The next session in deterministic round-robin order."""
        session = self._sessions[self._next]
        self._next += 1
        if self._next == len(self._sessions):
            self._next = 0
        return session

    def total_invocations(self) -> int:
        return sum(session.invocations for session in self._sessions)
