"""Shared scenario construction for the benchmark harnesses.

A *scenario* bundles a simulation environment, a preloaded cluster, and the
client nodes the experiment drives.  The system labels follow the paper's
notation: ``C1``/``C2``/``C3`` are baseline Cassandra with read quorum 1/2/3,
``CC2``/``CC3`` are Correctable Cassandra issuing ICG reads whose final view
uses quorum 2/3, and ``*CC2`` is CC2 with the confirmation optimization.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from repro.cassandra_sim.client import CassandraClient
from repro.cassandra_sim.config import CassandraConfig
from repro.cassandra_sim.coordinator import FusedRead, FusedWrite
from repro.sim.network import MESSAGE_HEADER_BYTES, estimate_payload_size
from repro.core.cluster_spec import REMOTE_CONTACTS, BuiltCluster, ClusterSpec
from repro.sim.topology import Region, replica_regions_default
from repro.workloads.records import Dataset
from repro.workloads.runner import ClosedLoopRunner, RunResult
from repro.workloads.ycsb import OperationGenerator, WorkloadSpec
from repro.sim.rand import derive_rng

#: System label -> (read quorum of the final view, uses ICG).
CASSANDRA_SYSTEMS: Dict[str, Dict[str, Any]] = {
    "C1": {"r": 1, "icg": False},
    "C2": {"r": 2, "icg": False},
    "C3": {"r": 3, "icg": False},
    "CC2": {"r": 2, "icg": True},
    "CC3": {"r": 3, "icg": True},
    "*CC2": {"r": 2, "icg": True, "confirmation_optimization": True},
}

#: Historical name for the built deployment; construction now lives in
#: :class:`repro.core.cluster_spec.ClusterSpec` (as does
#: :data:`REMOTE_CONTACTS`, re-exported above unchanged).
CassandraScenario = BuiltCluster


def build_cassandra_scenario(seed: int = 0,
                             record_count: int = 1000,
                             value_size_bytes: int = 100,
                             key_prefix: str = "user",
                             client_regions: Sequence[str] = (Region.IRL,),
                             contacts: Optional[Dict[str, str]] = None,
                             config: Optional[CassandraConfig] = None,
                             replica_regions: Optional[Sequence[str]] = None,
                             preload: bool = True,
                             client_fallbacks: bool = False) -> CassandraScenario:
    """Build a 3-replica cluster (FRK/IRL/VRG by default) with clients and data.

    Deprecated shim over :class:`repro.core.cluster_spec.ClusterSpec` — new
    code should build a spec directly (it also exposes node count, RF, and
    vnodes).  Kept because its construction sequence produced the committed
    figure tables; a default spec reproduces it byte for byte.

    ``client_fallbacks=True`` gives every client the remaining replicas as
    backup coordinators (used by the fault experiments together with
    ``CassandraConfig.fault_tolerant()``).
    """
    regions = tuple(replica_regions if replica_regions is not None
                    else replica_regions_default())
    spec = ClusterSpec(nodes=len(regions), regions=regions,
                       config=config, seed=seed,
                       record_count=record_count,
                       value_size_bytes=value_size_bytes,
                       key_prefix=key_prefix,
                       client_regions=tuple(client_regions),
                       contacts=contacts, preload=preload,
                       client_fallbacks=client_fallbacks)
    return spec.build()


class _IcgReadOp:
    """Pooled per-operation state for one in-flight ICG read.

    Replaces the per-op state dict plus two closures the ICG issue path used
    to allocate: the callbacks are bound methods created once, and finished
    instances go back on a free list, so steady-state ICG load allocates no
    per-op objects.  ``pool_stats`` feeds the pool leak tests.
    """

    __slots__ = ("done", "prelim_value", "prelim_latency", "had_prelim",
                 "on_preliminary", "on_final")

    _pool: list = []
    _created = 0
    _recycled = 0

    def __init__(self) -> None:
        self.done: Optional[Callable] = None
        self.prelim_value: Any = None
        self.prelim_latency: Optional[float] = None
        self.had_prelim = False
        self.on_preliminary = self._on_preliminary  # bound once, reused
        self.on_final = self._on_final

    @classmethod
    def acquire(cls, done: Callable[[Dict[str, Any]], None]) -> "_IcgReadOp":
        pool = cls._pool
        if pool:
            op = pool.pop()
        else:
            cls._created += 1
            op = cls()
        op.done = done
        return op

    def _on_preliminary(self, resp: Dict[str, Any]) -> None:
        self.had_prelim = True
        self.prelim_value = resp["value"]
        self.prelim_latency = resp["latency_ms"]

    def _on_final(self, resp: Dict[str, Any]) -> None:
        done = self.done
        failed = "error" in resp
        diverged = (not failed
                    and self.had_prelim
                    and self.prelim_value != resp["value"]
                    and not resp.get("is_confirmation", False))
        info = {
            "final_latency_ms": resp["latency_ms"],
            "preliminary_latency_ms": self.prelim_latency,
            "had_preliminary": self.had_prelim,
            "diverged": diverged,
            "degraded": bool(resp.get("degraded", False)),
            "failed": failed,
        }
        # Recycle before invoking ``done``: a closed-loop thread issues its
        # next operation inside the callback, and may legitimately reuse
        # this very instance for it.
        self.done = None
        self.prelim_value = None
        self.prelim_latency = None
        self.had_prelim = False
        cls = _IcgReadOp
        cls._recycled += 1
        cls._pool.append(self)
        done(info)

    @classmethod
    def pool_stats(cls) -> Dict[str, int]:
        """Counters for the leak tests: every created op should eventually
        be recycled (ops that never see a final response would leak)."""
        return {"created": cls._created, "recycled": cls._recycled,
                "free": len(cls._pool)}


def make_kv_issue(client: CassandraClient, system: str,
                  write_quorum: int = 1) -> Callable:
    """Build the runner ``issue`` function for one Cassandra system label.

    The returned callable executes YCSB reads/updates directly against the
    storage client and reports preliminary/final latencies and divergence.
    """
    if system not in CASSANDRA_SYSTEMS:
        raise KeyError(f"unknown system label {system!r}")
    profile = CASSANDRA_SYSTEMS[system]
    read_quorum = profile["r"]
    icg = profile["icg"]

    def _issue(op_type: str, key: str, value: Optional[str],
               done: Callable[[Dict[str, Any]], None]) -> None:
        # The "degraded"/"failed" keys carry recovery outcomes for the fault
        # experiments; always False on a healthy run, so the happy-path
        # figures are unaffected (the runner ignores falsy entries).  Built
        # inline: one dict per completion, not three.
        if op_type == "update":
            client.write(key, value, w=write_quorum,
                         on_final=lambda resp: done(
                             {"final_latency_ms": resp["latency_ms"],
                              "degraded": bool(resp.get("degraded", False)),
                              "failed": "error" in resp}))
            return
        if not icg:
            client.read(key, r=read_quorum, icg=False,
                        on_final=lambda resp: done(
                            {"final_latency_ms": resp["latency_ms"],
                             "degraded": bool(resp.get("degraded", False)),
                             "failed": "error" in resp}))
            return

        op = _IcgReadOp.acquire(done)
        client.read(key, r=read_quorum, icg=True,
                    on_preliminary=op.on_preliminary, on_final=op.on_final)

    network = client.network
    config = client.config
    contacts = client._contacts
    clock = client.scheduler.clock
    base_size = MESSAGE_HEADER_BYTES + config.key_size_bytes
    # Config timeouts / read repair are fixed at cluster construction, so
    # that half of the lean gate is decided once here; only the switches
    # that can change mid-run stay in the per-op check below.
    lean_static = (config.client_timeout_ms <= 0
                   and config.read_timeout_ms <= 0
                   and config.write_timeout_ms <= 0
                   and not config.read_repair)

    def _lean(op_type: str, key: str, value: Optional[str], sink) -> bool:
        # The lean op pipeline (``protocol.lean_ops``): deliver positionally
        # to the runner's per-thread sink, skipping the response/info dicts
        # and the per-op closures above.  Gated per operation so a mid-run
        # switch flip or a fault configuration falls back to ``_issue``.
        # The gate (lean_ready) and the client's lean_read/lean_write are
        # inlined — this is the per-op entry of the fused issue loop.
        if not (lean_static and network.lean_ops and network.fast_path
                and len(contacts) == 1):
            return False
        coordinator = client._fused_coordinator
        if coordinator is None:
            coordinator = client._fused_contact()
        next(client._req_ids)
        if op_type == "update":
            client.writes_sent += 1
            rec = FusedWrite.acquire()
            rec.client = client
            rec.coordinator = coordinator
            rec.key = key
            rec.value = value
            rec.version = None
            rec.w = write_quorum
            rec.sent_at = clock._now
            rec.on_final = None
            rec.lean = sink
            network.fused_send_to(
                client, coordinator.name,
                base_size + (len(value)
                             if type(value) is str and value.isascii()
                             else estimate_payload_size(value)),
                coordinator._fused_client_write, rec.args)
        else:
            client.reads_sent += 1
            sink._lean_icg = icg
            rec = FusedRead.acquire()
            rec.client = client
            rec.coordinator = coordinator
            rec.key = key
            rec.r = read_quorum
            rec.icg = icg
            rec.sent_at = clock._now
            rec.on_preliminary = None
            rec.on_final = None
            rec.lean = sink
            network.fused_send_to(
                client, coordinator.name, base_size + 8,
                coordinator._fused_client_read, rec.args)
        return True

    _issue.lean = _lean
    return _issue


def make_generator_factory(spec: WorkloadSpec, dataset: Dataset, seed: int,
                           label: str) -> Callable[[int], OperationGenerator]:
    """Per-thread operation generators with independent random streams."""

    def _factory(thread_id: int) -> OperationGenerator:
        rng = derive_rng(seed, f"{label}-thread-{thread_id}")
        return OperationGenerator(spec, dataset, rng)

    return _factory


def run_multi_region_load(scenario: CassandraScenario, system: str,
                          spec: WorkloadSpec, threads_per_client: int,
                          duration_ms: float, warmup_ms: float,
                          cooldown_ms: float, seed: int,
                          measured_region: str = Region.IRL,
                          use_histograms: bool = False
                          ) -> Dict[str, RunResult]:
    """Run closed-loop load from every client region simultaneously.

    Returns the per-region :class:`RunResult`; the paper reports the client
    in Ireland, which callers pick via ``measured_region``.
    ``use_histograms=True`` swaps the exact latency recorders for O(1)
    histogram recorders (perf runs); figure harnesses keep the default.
    """
    runners: Dict[str, ClosedLoopRunner] = {}
    for region, client in scenario.clients.items():
        issue = make_kv_issue(client, system)
        runner = ClosedLoopRunner(
            scheduler=scenario.env.scheduler,
            issue=issue,
            make_generator=make_generator_factory(
                spec, scenario.dataset, seed, f"{system}-{region}"),
            threads=threads_per_client,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
            cooldown_ms=cooldown_ms,
            label=f"{system}-{spec.name}-{region}",
            use_histograms=use_histograms,
        )
        runners[region] = runner
    for runner in runners.values():
        runner.start()
    end = max(runner.end_time for runner in runners.values())
    scenario.env.run(until=end + 60_000.0)
    return {region: runner.result for region, runner in runners.items()}


def cassandra_config_for(system: str,
                         value_size_bytes: int = 1000) -> CassandraConfig:
    """Cluster configuration appropriate for a system label.

    ``value_size_bytes`` defaults to a full YCSB record (10 fields × 100 B):
    reads return the whole record while updates write a single 100 B field,
    which is the asymmetry the paper's bandwidth figures assume.  The
    single-request microbenchmark (Figure 5) overrides this with 100 B
    objects, as in the paper.
    """
    profile = CASSANDRA_SYSTEMS[system]
    return CassandraConfig(
        value_size_bytes=value_size_bytes,
        confirmation_optimization=bool(
            profile.get("confirmation_optimization", False)),
    )
