"""Region topology and WAN latency model.

The paper deploys replicas in three EC2 regions — Ireland (IRL), Frankfurt
(FRK) and N. Virginia (VRG) — and reports the round-trip times that drive its
latency gaps: ~20 ms between IRL and FRK, ~83 ms between IRL and VRG, and a
~2 ms RTT within a region.  The Twissandra case study instead uses Virginia,
N. California and Oregon with the client still in Ireland.

:class:`Topology` stores a symmetric RTT matrix; one-way delays are RTT/2
plus a small jitter drawn from the topology's RNG.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, Optional, Tuple


class Region:
    """Region name constants used throughout the benchmarks."""

    IRL = "eu-west-1"        # Ireland
    FRK = "eu-central-1"     # Frankfurt
    VRG = "us-east-1"        # N. Virginia
    NCA = "us-west-1"        # N. California
    ORE = "us-west-2"        # Oregon
    LOCAL = "local"          # same-host loopback


# Default RTTs (milliseconds) between region pairs, mirroring the figures the
# paper reports (IRL-FRK 20 ms, IRL-VRG 83 ms) plus public inter-region
# measurements for the remaining pairs.
_DEFAULT_RTTS: Dict[FrozenSet[str], float] = {
    frozenset({Region.IRL, Region.FRK}): 20.0,
    frozenset({Region.IRL, Region.VRG}): 83.0,
    frozenset({Region.FRK, Region.VRG}): 90.0,
    frozenset({Region.IRL, Region.NCA}): 150.0,
    frozenset({Region.IRL, Region.ORE}): 160.0,
    frozenset({Region.VRG, Region.NCA}): 70.0,
    frozenset({Region.VRG, Region.ORE}): 80.0,
    frozenset({Region.NCA, Region.ORE}): 22.0,
    frozenset({Region.FRK, Region.NCA}): 155.0,
    frozenset({Region.FRK, Region.ORE}): 165.0,
}

#: RTT between two distinct hosts in the same region.
INTRA_REGION_RTT_MS = 2.0
#: RTT between two processes colocated on the same host.
LOOPBACK_RTT_MS = 0.3


class Topology:
    """Symmetric RTT matrix over a set of regions with jittered one-way delays."""

    def __init__(self,
                 rtts: Optional[Dict[FrozenSet[str], float]] = None,
                 intra_region_rtt_ms: float = INTRA_REGION_RTT_MS,
                 loopback_rtt_ms: float = LOOPBACK_RTT_MS,
                 jitter_fraction: float = 0.05,
                 rng: Optional[random.Random] = None) -> None:
        self._rtts = dict(_DEFAULT_RTTS)
        if rtts:
            for pair, value in rtts.items():
                self._rtts[frozenset(pair)] = float(value)
        #: (region_a, region_b) -> base one-way delay; avoids building a
        #: ``frozenset`` per message on the send hot path.  Invalidated by
        #: :meth:`set_rtt` and by assigning :attr:`intra_region_rtt_ms`.
        self._one_way_base: Dict[Tuple[str, str], float] = {}
        #: Bumped whenever any configured latency changes; the network's
        #: per-(src, dst) route cache compares this to drop stale base
        #: delays without the topology knowing who caches them.
        self._version = 0
        self.intra_region_rtt_ms = intra_region_rtt_ms
        self.loopback_rtt_ms = loopback_rtt_ms
        self.jitter_fraction = jitter_fraction
        self._rng = rng if rng is not None else random.Random(0)

    @property
    def intra_region_rtt_ms(self) -> float:
        """RTT between two distinct hosts in the same region."""
        return self._intra_region_rtt_ms

    @intra_region_rtt_ms.setter
    def intra_region_rtt_ms(self, value: float) -> None:
        self._intra_region_rtt_ms = value
        self._one_way_base.clear()
        self._version += 1

    @property
    def loopback_rtt_ms(self) -> float:
        """RTT between two processes colocated on the same host."""
        return self._loopback_rtt_ms

    @loopback_rtt_ms.setter
    def loopback_rtt_ms(self, value: float) -> None:
        self._loopback_rtt_ms = value
        self._version += 1

    @property
    def jitter_fraction(self) -> float:
        """Upper bound of the uniform jitter applied to one-way delays."""
        return self._jitter_fraction

    @jitter_fraction.setter
    def jitter_fraction(self, value: float) -> None:
        self._jitter_fraction = value
        self._version += 1

    def set_rtt(self, region_a: str, region_b: str, rtt_ms: float) -> None:
        """Override the RTT between two regions."""
        if region_a == region_b:
            raise ValueError("use intra_region_rtt_ms for same-region RTT")
        self._rtts[frozenset({region_a, region_b})] = float(rtt_ms)
        self._one_way_base.clear()
        self._version += 1

    def rtt(self, region_a: str, region_b: str) -> float:
        """Baseline (jitter-free) round-trip time between two regions."""
        if region_a == region_b:
            return self.intra_region_rtt_ms
        key = frozenset({region_a, region_b})
        if key not in self._rtts:
            raise KeyError(f"no RTT configured between {region_a} and {region_b}")
        return self._rtts[key]

    def one_way(self, region_a: str, region_b: str,
                same_host: bool = False) -> float:
        """One-way delay sample between two endpoints (with jitter)."""
        if same_host:
            base = self.loopback_rtt_ms / 2.0
        else:
            key = (region_a, region_b)
            base = self._one_way_base.get(key)
            if base is None:
                base = self.rtt(region_a, region_b) / 2.0
                self._one_way_base[key] = base
        if self.jitter_fraction <= 0:
            return base
        jitter = self._rng.uniform(0.0, self.jitter_fraction) * base
        return base + jitter

    def regions(self) -> Iterable[str]:
        """All regions that appear in the configured RTT matrix."""
        seen = set()
        for pair in self._rtts:
            seen.update(pair)
        return sorted(seen)


def ec2_topology(rng: Optional[random.Random] = None,
                 jitter_fraction: float = 0.05) -> Topology:
    """Topology used by the main Cassandra/ZooKeeper experiments (IRL/FRK/VRG)."""
    return Topology(rng=rng, jitter_fraction=jitter_fraction)


def twissandra_topology(rng: Optional[random.Random] = None,
                        jitter_fraction: float = 0.05) -> Topology:
    """Topology used by the Twissandra case study (VRG/NCA/ORE, client in IRL)."""
    return Topology(rng=rng, jitter_fraction=jitter_fraction)


def replica_regions_default() -> Tuple[str, str, str]:
    """Replica placement used in most experiments (FRK, IRL, VRG)."""
    return (Region.FRK, Region.IRL, Region.VRG)


def replica_regions_twissandra() -> Tuple[str, str, str]:
    """Replica placement used for the Twissandra case study."""
    return (Region.VRG, Region.NCA, Region.ORE)


def round_robin_regions(count: int,
                        cycle: Optional[Iterable[str]] = None
                        ) -> Tuple[str, ...]:
    """Place ``count`` nodes round-robin over a region cycle.

    The scaling experiments use this to grow the paper's 3-region layout to
    arbitrarily many nodes: ``count=6`` puts two nodes in each of FRK, IRL
    and VRG.  ``cycle`` defaults to :func:`replica_regions_default`.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    regions = tuple(cycle) if cycle is not None else replica_regions_default()
    if not regions:
        raise ValueError("region cycle must be non-empty")
    return tuple(regions[i % len(regions)] for i in range(count))
