"""Tests for ZooKeeper failure detection, leader election, state sync, and
client session failover."""

import pytest

from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region
from repro.zookeeper_sim.cluster import ZooKeeperCluster
from repro.zookeeper_sim.config import ZooKeeperConfig


def _build(seed=7, preload=10):
    env = SimEnvironment(seed=seed)
    cluster = ZooKeeperCluster(env, leader_region=Region.IRL,
                               follower_regions=(Region.FRK, Region.VRG),
                               config=ZooKeeperConfig.fault_tolerant())
    if preload:
        cluster.preload_queue("/queue", [f"item-{i}" for i in range(preload)])
    cluster.enable_failure_detection()
    return env, cluster


class TestLeaderElection:
    def test_followers_elect_a_new_leader_after_crash(self):
        env, cluster = _build()
        env.run(until=500.0)
        cluster.leader.crash()
        env.run(until=5_000.0)

        new_leader = cluster.current_leader()
        assert new_leader is not None
        assert new_leader.name != cluster.leader.name
        assert new_leader.epoch == 1
        assert new_leader.promotions == 1
        # Exactly one server promoted itself.
        assert sum(s.promotions for s in cluster.servers) == 1
        # The surviving follower adopted the new leader.
        other = [f for f in cluster.followers if f is not new_leader][0]
        assert other.leader_name == new_leader.name
        assert other.epoch == 1

    def test_election_prefers_most_up_to_date_follower(self):
        """The candidate with the higher last-applied zxid wins even when
        name ordering favours the other."""
        env, cluster = _build()
        env.run(until=200.0)
        # Let some transactions commit, then hold one follower back by
        # cutting it off while more commits happen.
        client = cluster.add_client("writer", Region.IRL,
                                    connect_region=Region.IRL)
        behind = cluster.followers[1]   # wins name tie-breaks otherwise
        ahead = cluster.followers[0]
        for _ in range(3):
            client.enqueue("/queue", "x")
        env.run(until=1_000.0)
        env.network.partition(cluster.leader.name, behind.name)
        for _ in range(3):
            client.enqueue("/queue", "y")
        env.run(until=1_800.0)
        assert ahead.commit_log.last_applied > behind.commit_log.last_applied

        env.network.heal(cluster.leader.name, behind.name)
        cluster.leader.crash()
        env.run(until=8_000.0)
        new_leader = cluster.current_leader()
        assert new_leader is ahead

    def test_no_election_without_failure_detection(self):
        env = SimEnvironment(seed=7)
        cluster = ZooKeeperCluster(env, config=ZooKeeperConfig())  # defaults
        cluster.enable_failure_detection()  # no-op: heartbeats disabled
        cluster.leader.crash()
        env.run(until=10_000.0)
        assert cluster.current_leader() is None
        assert all(s.elections_started == 0 for s in cluster.servers)


class TestSessionsFailOver:
    def test_client_request_completes_through_new_leader(self):
        env, cluster = _build()
        client = cluster.add_client("app", Region.FRK,
                                    connect_region=Region.FRK, failover=True)
        env.run(until=500.0)
        cluster.leader.crash()
        env.run(until=5_000.0)

        results = []
        client.dequeue("/queue", on_final=results.append)
        env.run(until=12_000.0)
        assert results and results[0]["ok"]
        assert results[0]["result"]["item"] == "item-0"

    def test_client_fails_over_when_its_server_crashes(self):
        env, cluster = _build()
        follower = cluster.followers[0]
        client = cluster.add_client("app", Region.FRK,
                                    connect_region=Region.FRK, failover=True)
        assert client.server == follower.name
        env.run(until=300.0)
        follower.crash()

        results = []
        client.get_children("/queue", on_final=results.append)
        env.run(until=10_000.0)
        assert results and results[0]["ok"]
        assert len(results[0]["result"]) == 10
        assert client.retries >= 1
        assert client.failed_requests == 0

    def test_in_flight_write_survives_leader_crash_via_retry(self):
        """A write forwarded to a leader that dies before committing is
        re-issued (client timeout) and commits under the new leader."""
        env, cluster = _build()
        client = cluster.add_client("app", Region.FRK,
                                    connect_region=Region.FRK, failover=True)
        env.run(until=500.0)
        results = []
        client.enqueue("/queue", "precious", on_final=results.append)
        # Crash the leader immediately: the forward is still in flight.
        cluster.leader.crash()
        env.run(until=20_000.0)

        assert results and results[0]["ok"]
        new_leader = cluster.current_leader()
        children = new_leader.tree.get_children("/queue")
        items = [new_leader.tree.get(f"/queue/{c}") for c in children]
        assert "precious" in items


class TestCommitProgressUnderLoad:
    def test_no_commit_stall_after_election_under_steady_load(self):
        """Regression: a leader crash with in-flight proposals must not
        leave a zxid gap (or lost proposals from the adoption window) that
        stalls the new epoch's commit log forever."""
        env, cluster = _build(preload=0)
        cluster.preload_queue("/queue", [])  # create the (empty) queue node
        clients = [cluster.add_client(f"c{i}", region, connect_region=region,
                                      failover=True)
                   for i, region in enumerate(
                       (Region.IRL, Region.FRK, Region.VRG))]
        outcomes = {"ok": 0, "failed": 0}

        def record(resp):
            outcomes["ok" if resp["ok"] else "failed"] += 1

        counter = {"n": 0}

        def tick():
            for client in clients:
                counter["n"] += 1
                client.enqueue("/queue", f"v{counter['n']}", on_final=record)
            if env.now() < 10_000.0:
                env.scheduler.schedule(100.0, tick)

        env.scheduler.schedule(0.0, tick)
        env.scheduler.schedule(3_000.0, cluster.leader.crash)
        env.run(until=40_000.0)

        # Every in-flight and subsequent write committed (orphan proposals
        # are re-proposed gaplessly; lost adoption-window proposals are
        # retransmitted at sync; stalled followers re-sync themselves).
        assert outcomes["failed"] == 0
        assert outcomes["ok"] == counter["n"]
        live = [s for s in cluster.servers if s.alive]
        applied = {s.commit_log.last_applied for s in live}
        assert len(applied) == 1  # all live servers converged
        assert applied.pop() >= counter["n"]
        assert not any(s.commit_log.has_backlog() for s in live)

        # And the cluster still commits new work afterwards.
        probe = []
        clients[0].enqueue("/queue", "probe", on_final=probe.append)
        env.run(until=60_000.0)
        assert probe and probe[0]["ok"]


class TestZombieLeader:
    def test_partitioned_live_leader_demotes_and_resyncs_after_heal(self):
        """A leader partitioned from both followers (but alive) is deposed;
        when the partition heals, its stale proposals earn a redirect, it
        demotes itself, and a snapshot brings it back in line."""
        env, cluster = _build(preload=0)
        cluster.preload_queue("/queue", [])
        clients = [cluster.add_client(f"c{i}", region, connect_region=region,
                                      failover=True)
                   for i, region in enumerate(
                       (Region.IRL, Region.FRK, Region.VRG))]
        outcomes = {"ok": 0, "failed": 0}
        counter = {"n": 0}

        def tick():
            for client in clients:
                counter["n"] += 1
                client.enqueue("/queue", f"v{counter['n']}",
                               on_final=lambda r: outcomes.__setitem__(
                                   "ok" if r["ok"] else "failed",
                                   outcomes["ok" if r["ok"] else "failed"] + 1))
            if env.now() < 12_000.0:
                env.scheduler.schedule(100.0, tick)

        old_leader = cluster.leader

        def cut():
            for follower in cluster.followers:
                env.network.partition(old_leader.name, follower.name)

        def heal():
            for follower in cluster.followers:
                env.network.heal(old_leader.name, follower.name)

        env.scheduler.schedule(0.0, tick)
        env.scheduler.schedule(3_000.0, cut)
        env.scheduler.schedule(8_000.0, heal)
        env.run(until=60_000.0)

        assert outcomes["failed"] == 0
        assert outcomes["ok"] == counter["n"]
        # The deposed leader demoted itself and caught up via snapshot.
        assert not old_leader.is_leader
        assert old_leader.epoch == cluster.current_leader().epoch
        assert old_leader.snapshots_received >= 1
        applied = {s.commit_log.last_applied for s in cluster.servers}
        assert len(applied) == 1


class TestRecoveryAndSync:
    def test_old_leader_rejoins_as_follower_and_syncs(self):
        env, cluster = _build()
        client = cluster.add_client("app", Region.FRK,
                                    connect_region=Region.FRK, failover=True)
        env.run(until=500.0)
        old_leader = cluster.leader
        old_leader.crash()
        env.run(until=5_000.0)

        # Commit work the old leader never saw.
        done = []
        client.dequeue("/queue", on_final=done.append)
        client.enqueue("/queue", "after-crash", on_final=done.append)
        env.run(until=10_000.0)
        assert len(done) == 2

        old_leader.recover()
        env.run(until=15_000.0)

        new_leader = cluster.current_leader()
        assert new_leader is not old_leader
        assert not old_leader.is_leader
        assert old_leader.epoch == new_leader.epoch
        assert old_leader.commit_log.last_applied == \
            new_leader.commit_log.last_applied
        assert old_leader.tree.get_children("/queue") == \
            new_leader.tree.get_children("/queue")

    def test_crashed_follower_syncs_after_recovery(self):
        env, cluster = _build()
        client = cluster.add_client("app", Region.IRL,
                                    connect_region=Region.IRL, failover=True)
        follower = cluster.followers[0]
        env.run(until=300.0)
        follower.crash()

        done = []
        for _ in range(4):
            client.enqueue("/queue", "while-down", on_final=done.append)
        env.run(until=3_000.0)
        assert len(done) == 4
        assert follower.commit_log.last_applied == 0

        follower.recover()
        env.run(until=8_000.0)
        assert follower.commit_log.last_applied == \
            cluster.leader.commit_log.last_applied
        assert follower.tree.get_children("/queue") == \
            cluster.leader.tree.get_children("/queue")
