"""The mining/propagation process driving the simulated blockchain.

A :class:`BlockchainNetwork` owns one :class:`~repro.blockchain_sim.chain.Blockchain`
and, once started, mines a block every ``Exp(block_interval_ms)`` of simulated
time, including whatever transactions are pending in the mempool.  With
probability ``fork_probability`` the newly mined block is orphaned shortly
afterwards (a competing fork won), which demotes its transactions back to the
mempool — the event that makes shallow confirmations revocable and deep ones
"final with high probability".

Observers register per-transaction callbacks and are notified every time the
confirmation count of that transaction changes (including dropping back to 0
on an orphan).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.blockchain_sim.chain import Blockchain, Transaction
from repro.sim.scheduler import Scheduler

#: ``callback(confirmations, block_height)`` — called on every change.
ConfirmationCallback = Callable[[int, Optional[int]], None]


@dataclass
class BlockchainConfig:
    """Mining parameters (defaults scaled down from Bitcoin for fast runs)."""

    #: Mean time between blocks (ms of simulated time).
    block_interval_ms: float = 2_000.0
    #: Probability that a freshly mined block is orphaned by a competing fork.
    fork_probability: float = 0.05
    #: Delay after mining at which the orphaning (if any) is discovered.
    fork_resolution_ms: float = 400.0
    #: Confirmations after which a transaction is considered irrevocable.
    finality_depth: int = 6


class BlockchainNetwork:
    """Mines blocks over simulated time and tracks per-transaction watchers."""

    def __init__(self, scheduler: Scheduler,
                 config: Optional[BlockchainConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.scheduler = scheduler
        self.config = config if config is not None else BlockchainConfig()
        self.chain = Blockchain()
        self._rng = rng if rng is not None else random.Random(0)
        self._mempool: List[Transaction] = []
        self._watchers: Dict[str, List[ConfirmationCallback]] = {}
        self._running = False
        self.blocks_mined = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Begin mining blocks; idempotent."""
        if self._running:
            return
        self._running = True
        self._schedule_next_block()

    def stop(self) -> None:
        """Stop scheduling new blocks (pending events still run)."""
        self._running = False

    def _schedule_next_block(self) -> None:
        if not self._running:
            return
        delay = self._rng.expovariate(1.0 / self.config.block_interval_ms)
        self.scheduler.schedule(delay, self._mine_block)

    # -- transactions -----------------------------------------------------------
    def submit_transaction(self, transaction: Transaction) -> None:
        """Add a transaction to the mempool (included in the next block)."""
        self._mempool.append(transaction)

    def watch_transaction(self, tx_id: str,
                          callback: ConfirmationCallback) -> None:
        """Call ``callback`` whenever ``tx_id``'s confirmation count changes."""
        self._watchers.setdefault(tx_id, []).append(callback)

    def confirmations(self, tx_id: str) -> int:
        return self.chain.confirmations(tx_id)

    def mempool_size(self) -> int:
        return len(self._mempool)

    # -- mining ---------------------------------------------------------------------
    def _mine_block(self) -> None:
        if not self._running:
            return
        transactions, self._mempool = self._mempool, []
        self.chain.append_block(transactions, mined_at=self.scheduler.now())
        self.blocks_mined += 1
        self._notify_all()
        if self._rng.random() < self.config.fork_probability:
            self.scheduler.schedule(self.config.fork_resolution_ms,
                                    self._orphan_tip)
        self._schedule_next_block()

    def _orphan_tip(self) -> None:
        demoted = self.chain.orphan_tip()
        # Demoted transactions go back to the mempool and will be re-mined.
        self._mempool.extend(demoted)
        self._notify_all()

    def _notify_all(self) -> None:
        height = self.chain.height
        for tx_id, callbacks in list(self._watchers.items()):
            confirmations = self.chain.confirmations(tx_id)
            for callback in list(callbacks):
                callback(confirmations, height)
            if confirmations >= self.config.finality_depth:
                # Final with high probability: watchers are done.
                self._watchers.pop(tx_id, None)
