"""Tests for the speculate() combinator (Listing 3 semantics)."""

from hypothesis import given, strategies as st

from repro.core.consistency import STRONG, WEAK
from repro.core.correctable import Correctable
from repro.core.errors import OperationError
from repro.core.promise import Promise
from repro.core.speculation import SpeculationStats


class TestConfirmedSpeculation:
    def test_speculation_runs_on_preliminary(self):
        source = Correctable()
        calls = []
        source.speculate(lambda v: calls.append(v) or f"out:{v}")
        source.update("p", WEAK)
        assert calls == ["p"]

    def test_confirmed_speculation_closes_with_cached_output(self):
        source = Correctable()
        stats = SpeculationStats()
        derived = source.speculate(lambda v: f"out:{v}", stats=stats)
        source.update("same", WEAK)
        source.close("same", STRONG)
        assert derived.is_final()
        assert derived.value() == "out:same"
        assert stats.confirmed == 1
        assert stats.misspeculations == 0

    def test_function_not_rerun_when_confirmed(self):
        source = Correctable()
        calls = []
        source.speculate(lambda v: calls.append(v) or v)
        source.update("x", WEAK)
        source.close("x", STRONG)
        assert calls == ["x"]

    def test_identical_consecutive_views_speculate_once(self):
        source = Correctable()
        calls = []
        source.speculate(lambda v: calls.append(v) or v)
        source.update("x", WEAK)
        source.update("x", WEAK)
        source.close("x", STRONG)
        assert calls == ["x"]


class TestMisspeculation:
    def test_reruns_on_final_when_diverged(self):
        source = Correctable()
        stats = SpeculationStats()
        calls = []
        derived = source.speculate(lambda v: calls.append(v) or f"out:{v}",
                                   stats=stats)
        source.update("stale", WEAK)
        source.close("fresh", STRONG)
        assert calls == ["stale", "fresh"]
        assert derived.value() == "out:fresh"
        assert stats.misspeculations == 1
        assert "stale" in stats.wasted_inputs

    def test_abort_called_with_stale_input(self):
        source = Correctable()
        aborted = []
        stats = SpeculationStats()
        source.speculate(lambda v: v, abort_fn=aborted.append, stats=stats)
        source.update("stale", WEAK)
        source.close("fresh", STRONG)
        assert aborted == ["stale"]
        assert stats.aborts == 1

    def test_no_abort_when_confirmed(self):
        source = Correctable()
        aborted = []
        source.speculate(lambda v: v, abort_fn=aborted.append)
        source.update("v", WEAK)
        source.close("v", STRONG)
        assert aborted == []

    def test_no_preliminary_counts_as_plain_execution(self):
        source = Correctable()
        stats = SpeculationStats()
        derived = source.speculate(lambda v: f"out:{v}", stats=stats)
        source.close("only", STRONG)
        assert derived.value() == "out:only"
        assert stats.misspeculations == 0
        assert stats.confirmed == 1


class TestAsynchronousSpeculationWork:
    def test_promise_returning_speculation(self):
        source = Correctable()
        pending = {}

        def slow_work(value):
            promise = Promise()
            pending[value] = promise
            return promise

        derived = source.speculate(slow_work)
        source.update("p", WEAK)
        source.close("p", STRONG)
        # The final view matched, but the speculative work is still running.
        assert not derived.is_done()
        pending["p"].resolve("done")
        assert derived.value() == "done"

    def test_correctable_returning_speculation(self):
        source = Correctable()
        inner = Correctable()
        derived = source.speculate(lambda v: inner)
        source.update("p", WEAK)
        source.close("p", STRONG)
        inner.close("inner-result", STRONG)
        assert derived.value() == "inner-result"

    def test_speculation_work_finishing_before_final(self):
        source = Correctable()
        derived = source.speculate(lambda v: f"fast:{v}")
        source.update("p", WEAK)
        assert not derived.is_done()
        source.close("p", STRONG)
        assert derived.value() == "fast:p"


class TestSpeculationErrors:
    def test_exception_in_speculation_fails_derived(self):
        source = Correctable()

        def boom(_):
            raise OperationError("inner failure")

        derived = source.speculate(boom)
        source.update("p", WEAK)
        source.close("p", STRONG)
        assert derived.is_error()

    def test_source_error_propagates(self):
        source = Correctable()
        derived = source.speculate(lambda v: v)
        source.fail(OperationError("storage down"))
        assert derived.is_error()


class TestSpeculationStats:
    def test_hit_rate(self):
        stats = SpeculationStats(confirmed=3, misspeculations=1)
        assert stats.hit_rate() == 0.75
        assert stats.total_closed == 4

    def test_hit_rate_empty(self):
        assert SpeculationStats().hit_rate() == 0.0

    def test_merge(self):
        a = SpeculationStats(speculations_started=2, confirmed=1,
                             misspeculations=1, aborts=1,
                             wasted_inputs=["x"])
        b = SpeculationStats(speculations_started=3, confirmed=3)
        a.merge(b)
        assert a.speculations_started == 5
        assert a.confirmed == 4
        assert a.misspeculations == 1
        assert a.wasted_inputs == ["x"]


@given(st.integers(), st.integers())
def test_derived_always_reflects_final_input(preliminary, final):
    """Whatever the preliminary was, the derived result is f(final)."""
    source = Correctable()
    stats = SpeculationStats()
    derived = source.speculate(lambda v: ("result", v), stats=stats)
    source.update(preliminary, WEAK)
    source.close(final, STRONG)
    assert derived.value() == ("result", final)
    if preliminary == final:
        assert stats.misspeculations == 0
    else:
        assert stats.misspeculations == 1


@given(st.lists(st.integers(min_value=0, max_value=3), max_size=6),
       st.integers(min_value=0, max_value=3))
def test_speculation_function_runs_once_per_distinct_input(views, final):
    source = Correctable()
    calls = []
    source.speculate(lambda v: calls.append(v) or v)
    for view in views:
        source.update(view, WEAK)
    source.close(final, STRONG)
    # One call per distinct preliminary value, plus one for the final value
    # if it never appeared as a preliminary.
    expected = []
    for view in views:
        if view not in expected:
            expected.append(view)
    if final not in expected:
        expected.append(final)
    assert calls == expected
