"""The application-facing Correctables client (Section 3.2).

The API has exactly three methods:

* :meth:`CorrectableClient.invoke_weak` — one result, weakest level;
* :meth:`CorrectableClient.invoke_strong` — one result, strongest level;
* :meth:`CorrectableClient.invoke` — incremental consistency guarantees: one
  view per requested level, weakest first, the strongest closing the
  Correctable.

CamelCase aliases (``invokeWeak`` etc.) are provided for parity with the
paper's listings.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.core.consistency import ConsistencyLevel, sort_levels
from repro.core.correctable import Correctable
from repro.core.errors import BindingError, UnsupportedConsistencyError
from repro.core.operations import Operation


class CorrectableClient:
    """Entry point applications use to access a replicated store via a binding."""

    def __init__(self, binding, clock: Optional[Callable[[], float]] = None) -> None:
        self.binding = binding
        self._clock = clock if clock is not None else getattr(binding, "clock", None)
        # Lightweight instrumentation used by the evaluation harness.
        self.invocations = 0
        self.weak_invocations = 0
        self.strong_invocations = 0
        self.icg_invocations = 0

    # -- level bookkeeping --------------------------------------------------
    def available_levels(self) -> List[ConsistencyLevel]:
        """Consistency levels the binding advertises, weakest first."""
        levels = sort_levels(self.binding.consistency_levels())
        if not levels:
            raise BindingError("binding advertises no consistency levels")
        return levels

    def _validate(self, requested: Iterable[ConsistencyLevel]) -> List[ConsistencyLevel]:
        available = self.available_levels()
        requested = sort_levels(requested)
        if not requested:
            raise UnsupportedConsistencyError(requested, available)
        missing = [lv for lv in requested if lv not in available]
        if missing:
            raise UnsupportedConsistencyError(missing, available)
        return requested

    # -- the three API methods ------------------------------------------------
    def invoke(self, operation: Operation,
               levels: Optional[Iterable[ConsistencyLevel]] = None) -> Correctable:
        """Execute ``operation`` with incremental consistency guarantees.

        Returns a :class:`Correctable` that receives one view per requested
        level (weakest to strongest) and closes with the strongest one.  When
        ``levels`` is omitted, every level the binding offers is requested.
        """
        if levels is None:
            requested = self.available_levels()
        else:
            requested = self._validate(levels)
        self.invocations += 1
        if len(requested) > 1:
            self.icg_invocations += 1
        return self._submit(operation, requested)

    def invoke_weak(self, operation: Operation) -> Correctable:
        """Execute ``operation`` under the weakest available level only."""
        self.invocations += 1
        self.weak_invocations += 1
        return self._submit(operation, [self.available_levels()[0]])

    def invoke_strong(self, operation: Operation) -> Correctable:
        """Execute ``operation`` under the strongest available level only."""
        self.invocations += 1
        self.strong_invocations += 1
        return self._submit(operation, [self.available_levels()[-1]])

    # CamelCase aliases matching the paper's listings.
    invokeWeak = invoke_weak
    invokeStrong = invoke_strong

    # -- plumbing ---------------------------------------------------------------
    def _submit(self, operation: Operation,
                levels: List[ConsistencyLevel]) -> Correctable:
        correctable = Correctable(clock=self._clock)
        strongest_requested = levels[-1]

        def _callback(level: ConsistencyLevel, value, metadata=None, error=None):
            metadata = metadata or {}
            if error is not None:
                if not correctable.is_done():
                    correctable.fail(error)
                return
            if level not in levels:
                raise BindingError(
                    f"binding delivered unrequested level {level.name}")
            if level == strongest_requested:
                if correctable.is_done():
                    return
                if metadata.get("is_confirmation"):
                    latest = correctable.latest_view()
                    confirmed = latest.value if latest is not None else value
                    correctable.close(confirmed, level, metadata=metadata,
                                      is_confirmation=True)
                else:
                    correctable.close(value, level, metadata=metadata)
            else:
                correctable.update(value, level, metadata=metadata)

        self.binding.submit_operation(operation, levels, _callback)
        return correctable
