"""Sweep-engine tests: determinism across job counts, crash isolation,
order-independent seed derivation, and the figure families' point grids."""

import pytest

from repro.bench.sweep import (
    SweepFailure,
    SweepPoint,
    derive_point_rng,
    make_points,
    point_seed,
    resolve_jobs,
    run_sweep,
)


def _square_point(point: SweepPoint) -> dict:
    return {"index": point.index, "value": point.kwargs["n"] ** 2}


def _crashy_point(point: SweepPoint) -> dict:
    if point.kwargs["n"] == 2:
        raise RuntimeError("simulated point crash")
    return {"value": point.kwargs["n"]}


def _points(count: int):
    return make_points("test", (({"n": n}, {"n": n}) for n in range(count)))


class TestResolveJobs:
    def test_defaults_to_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs("1") == 1

    def test_accepts_integers_and_strings(self):
        assert resolve_jobs(4) == 4
        assert resolve_jobs("8") == 8

    def test_auto_uses_available_cores(self):
        assert resolve_jobs("auto") >= 1

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_jobs("fast")
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestMakePoints:
    def test_indices_follow_grid_order(self):
        points = _points(4)
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert all(p.family == "test" for p in points)

    def test_label_lookup(self):
        point = _points(3)[2]
        assert point.label("n") == 2
        assert point.label("missing", "fallback") == "fallback"

    def test_spec_names_family_index_and_labels(self):
        assert _points(2)[1].spec() == "test[1](n=1)"


class TestRunSweep:
    def test_serial_executes_in_grid_order(self):
        result = run_sweep(_points(5), _square_point, jobs=1)
        assert result.jobs == 1
        assert [r["value"] for r in result.records()] == [0, 1, 4, 9, 16]

    def test_parallel_matches_serial(self):
        serial = run_sweep(_points(6), _square_point, jobs=1)
        parallel = run_sweep(_points(6), _square_point, jobs=3)
        assert parallel.jobs == 3
        assert parallel.records() == serial.records()

    def test_per_point_wall_timings_recorded(self):
        result = run_sweep(_points(3), _square_point, jobs=1)
        timings = result.point_timings()
        assert len(timings) == 3
        assert all(wall >= 0.0 for _, wall in timings)

    def test_single_point_runs_inline_even_with_jobs(self):
        result = run_sweep(_points(1), _square_point, jobs=4)
        assert result.jobs == 1
        assert result.records() == [{"index": 0, "value": 0}]


class TestCrashIsolation:
    def test_failed_point_does_not_kill_the_sweep(self):
        result = run_sweep(_points(5), _crashy_point, jobs=1)
        assert len(result.outcomes) == 5
        assert len(result.failed()) == 1
        assert result.failed()[0].point.kwargs["n"] == 2
        assert "simulated point crash" in result.failed()[0].error

    def test_records_raises_with_failed_specs(self):
        result = run_sweep(_points(5), _crashy_point, jobs=1)
        with pytest.raises(SweepFailure) as excinfo:
            result.records()
        assert "test[2](n=2)" in str(excinfo.value)
        assert "1/5" in str(excinfo.value)

    def test_parallel_crash_isolation(self):
        result = run_sweep(_points(5), _crashy_point, jobs=2)
        assert len(result.failed()) == 1
        survivors = [o.record["value"] for o in result.outcomes if o.ok]
        assert survivors == [0, 1, 3, 4]


class TestSeedDerivation:
    def test_point_seed_is_order_independent(self):
        grid = [("C1", 2), ("C2", 2), ("C1", 6), ("C2", 6)]
        forward = make_points("fig", (
            ({"system": s, "threads": t}, {}) for s, t in grid))
        shuffled = make_points("fig", (
            ({"system": s, "threads": t}, {}) for s, t in reversed(grid)))
        seeds_fwd = {p.labels: point_seed(42, p) for p in forward}
        seeds_rev = {p.labels: point_seed(42, p) for p in shuffled}
        assert seeds_fwd == seeds_rev

    def test_point_seed_ignores_label_insertion_order(self):
        a = SweepPoint(index=0, family="f",
                       labels=(("system", "C1"), ("threads", 2)))
        b = SweepPoint(index=7, family="f",
                       labels=(("threads", 2), ("system", "C1")))
        assert point_seed(42, a) == point_seed(42, b)

    def test_distinct_cells_get_distinct_seeds(self):
        points = make_points("fig", (
            ({"system": s}, {}) for s in ("C1", "C2", "CC2")))
        seeds = {point_seed(42, p) for p in points}
        assert len(seeds) == 3

    def test_derive_point_rng_reproducible(self):
        point = SweepPoint(index=0, family="f", labels=(("x", 1),))
        assert derive_point_rng(42, point).random() == \
            derive_point_rng(42, point).random()


class TestFigureSweepsParallelEqualsSerial:
    """The acceptance gate: --jobs 2 output byte-identical to --jobs 1."""

    def test_fig06_slice(self):
        from repro.bench.fig06_load import run_fig06

        kwargs = dict(workloads=("A",), systems=("C1", "CC2"),
                      thread_counts=(2,), duration_ms=2_500.0,
                      warmup_ms=500.0, cooldown_ms=250.0, record_count=60,
                      seed=11)
        assert run_fig06(jobs=1, **kwargs) == run_fig06(jobs=2, **kwargs)

    def test_fig09_slice(self):
        from repro.bench.fig09_zk_latency import run_fig09

        assert run_fig09(samples=15, seed=7, jobs=1) == \
            run_fig09(samples=15, seed=7, jobs=2)

    @pytest.mark.slow
    def test_fig10_and_fig12_slices(self):
        from repro.bench.fig10_zk_bandwidth import run_fig10
        from repro.bench.fig12_tickets import run_fig12

        assert run_fig10(stocks=(40,), client_counts=(1, 2), seed=7,
                         jobs=1) == \
            run_fig10(stocks=(40,), client_counts=(1, 2), seed=7, jobs=2)
        assert run_fig12(stock=60, threshold=10, seed=7, jobs=1) == \
            run_fig12(stock=60, threshold=10, seed=7, jobs=2)

    @pytest.mark.slow
    def test_fig08_overhead_merge_matches_serial(self):
        from repro.bench.fig08_bandwidth import run_fig08

        kwargs = dict(configs=(("A", "latest"),), threads=4,
                      duration_ms=2_500.0, warmup_ms=500.0,
                      cooldown_ms=250.0, record_count=200, seed=11)
        assert run_fig08(jobs=1, **kwargs) == run_fig08(jobs=2, **kwargs)

    @pytest.mark.slow
    def test_fig05_and_fig07_slices(self):
        from repro.bench.fig05_single_latency import run_fig05
        from repro.bench.fig07_divergence import run_fig07

        assert run_fig05(samples=20, record_count=30, seed=7, jobs=1) == \
            run_fig05(samples=20, record_count=30, seed=7, jobs=2)
        kwargs = dict(configs=(("A", "latest"), ("B", "latest")),
                      thread_counts=(4,), duration_ms=2_500.0,
                      warmup_ms=500.0, cooldown_ms=250.0, record_count=200,
                      seed=11)
        assert run_fig07(jobs=1, **kwargs) == run_fig07(jobs=2, **kwargs)

    @pytest.mark.slow
    def test_fig11_slice(self):
        from repro.bench.fig11_apps import run_fig11

        kwargs = dict(apps=("ads",), systems=("C2", "CC2"), workloads=("B",),
                      thread_counts=(1,), duration_ms=2_500.0,
                      warmup_ms=500.0, cooldown_ms=250.0, profile_count=40,
                      ref_count=80, seed=11)
        assert run_fig11(jobs=1, **kwargs) == run_fig11(jobs=2, **kwargs)

    @pytest.mark.slow
    def test_fig13_slice_including_zookeeper(self):
        from repro.bench.fig13_faults import run_fig13_all

        kwargs = dict(scenarios=("baseline", "replica-crash"),
                      threads_per_client=1, duration_ms=3_000.0,
                      warmup_ms=500.0, cooldown_ms=250.0, record_count=60,
                      seed=11, include_zookeeper=True,
                      zk=dict(duration_ms=6_000.0, crash_at_ms=1_500.0,
                              crash_duration_ms=2_500.0,
                              threads_per_client=1, queue_depth=400))
        assert run_fig13_all(jobs=1, **kwargs) == \
            run_fig13_all(jobs=3, **kwargs)

    @pytest.mark.slow
    def test_ablation_slices(self):
        from repro.bench.ablations import (
            run_confirmation_optimization_ablation,
            run_ticket_threshold_ablation,
            run_view_count_ablation,
        )

        assert run_ticket_threshold_ablation(
                thresholds=(0, 10), stock=60, seed=7, jobs=1) == \
            run_ticket_threshold_ablation(
                thresholds=(0, 10), stock=60, seed=7, jobs=2)
        assert run_view_count_ablation(jobs=1) == \
            run_view_count_ablation(jobs=2)
        assert run_confirmation_optimization_ablation(
                threads=4, duration_ms=2_500.0, seed=7, jobs=1) == \
            run_confirmation_optimization_ablation(
                threads=4, duration_ms=2_500.0, seed=7, jobs=2)
