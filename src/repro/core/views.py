"""Views: the values a Correctable delivers.

A :class:`View` pairs an operation result with the consistency level it
satisfies and bookkeeping used by the evaluation harness (arrival time,
whether the storage sent a full value or just a confirmation message).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.consistency import ConsistencyLevel


@dataclass
class View:
    """One incremental view on the result of an operation."""

    value: Any
    consistency: ConsistencyLevel
    #: Simulated (or wall-clock) time at which the view was delivered.
    timestamp: Optional[float] = None
    #: True when the storage replaced the payload with a small confirmation
    #: because the final value equals the preliminary one (the ``*CC``
    #: optimization of Section 5.2).
    is_confirmation: bool = False
    #: Free-form binding metadata (replica that answered, quorum size, ...).
    metadata: Dict[str, Any] = field(default_factory=dict)

    def same_value(self, other: "View") -> bool:
        """Whether two views carry the same result value."""
        return self.value == other.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", confirmation" if self.is_confirmation else ""
        return (f"View({self.value!r}, {self.consistency.name}"
                f", t={self.timestamp}{flag})")
