"""Figure 5: single-request read latencies in Cassandra.

The paper compares baseline Cassandra with read quorums 1, 2, 3 (C1, C2, C3)
against Correctable Cassandra issuing ICG reads whose final view uses quorum
2 or 3 (CC2, CC3).  The client is in Ireland, the coordinator in Frankfurt.
The headline observations to reproduce:

* the preliminary view of CC2/CC3 tracks C1 (the client-coordinator RTT);
* the final view of CC2/CC3 tracks C2/C3 respectively;
* the latency gap (speculation window) is ≈ the RTT to the farthest quorum
  member — ~20 ms for CC2 and much larger for CC3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.bench.common import (
    build_cassandra_scenario,
    cassandra_config_for,
    make_kv_issue,
)
from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.metrics.latency import LatencyRecorder
from repro.metrics.summary import format_table
from repro.sim.rand import derive_rng
from repro.sim.topology import Region

DEFAULT_SYSTEMS = ("C1", "C2", "C3", "CC2", "CC3")


def _measure_single_requests(system: str, samples: int, seed: int,
                             record_count: int) -> Dict[str, Optional[dict]]:
    """Issue ``samples`` sequential reads and summarize their latencies."""
    scenario = build_cassandra_scenario(
        seed=seed, record_count=record_count,
        client_regions=(Region.IRL,),
        contacts={Region.IRL: Region.FRK},
        config=cassandra_config_for(system, value_size_bytes=100))
    client = scenario.client_in(Region.IRL)
    issue = make_kv_issue(client, system)
    rng = derive_rng(seed, f"fig05-{system}")
    preliminary = LatencyRecorder(f"{system}-preliminary")
    final = LatencyRecorder(f"{system}-final")
    state = {"remaining": samples}

    def _issue_next() -> None:
        if state["remaining"] <= 0:
            return
        state["remaining"] -= 1
        key = scenario.dataset.key(rng.randrange(record_count))
        issue("read", key, None, _done)

    def _done(info: dict) -> None:
        final.record(info["final_latency_ms"])
        if info.get("preliminary_latency_ms") is not None:
            preliminary.record(info["preliminary_latency_ms"])
        _issue_next()

    _issue_next()
    scenario.env.run_until_idle()
    return {
        "preliminary": preliminary.summary() if preliminary.count else None,
        "final": final.summary(),
    }


def build_fig05_points(systems: Iterable[str] = DEFAULT_SYSTEMS,
                       samples: int = 200, record_count: int = 200,
                       seed: int = 42) -> List[SweepPoint]:
    """One sweep point per system label."""
    return make_points("fig05", (
        ({"system": system},
         dict(system=system, samples=samples, seed=seed,
              record_count=record_count))
        for system in systems))


def run_fig05_point(point: SweepPoint) -> Dict:
    return _measure_single_requests(**point.kwargs)


def run_fig05(systems: Iterable[str] = DEFAULT_SYSTEMS, samples: int = 200,
              record_count: int = 200, seed: int = 42,
              jobs: JobsSpec = 1) -> Dict[str, Dict]:
    """Regenerate the Figure 5 data series.

    Returns a mapping ``system -> {"preliminary": summary|None, "final": summary}``.
    """
    points = build_fig05_points(systems=systems, samples=samples,
                                record_count=record_count, seed=seed)
    sweep = run_sweep(points, run_fig05_point, jobs=jobs)
    return {point.label("system"): record
            for point, record in zip(points, sweep.records())}


def latency_gap_ms(results: Dict[str, Dict], system: str) -> float:
    """The mean preliminary-to-final gap for an ICG system (the speculation window)."""
    entry = results[system]
    if entry["preliminary"] is None:
        return 0.0
    return entry["final"]["mean_ms"] - entry["preliminary"]["mean_ms"]


def format_fig05(results: Dict[str, Dict]) -> str:
    """Render the figure as a text table (one row per system and view)."""
    rows: List[list] = []
    for system, entry in results.items():
        if entry["preliminary"] is not None:
            rows.append([system, "preliminary",
                         entry["preliminary"]["mean_ms"],
                         entry["preliminary"]["p99_ms"]])
        rows.append([system, "final",
                     entry["final"]["mean_ms"], entry["final"]["p99_ms"]])
    return format_table(
        ["system", "view", "mean latency (ms)", "p99 latency (ms)"], rows,
        title="Figure 5 — Cassandra single-request read latency by quorum configuration")
