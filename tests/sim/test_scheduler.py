"""Tests for the simulated clock and event scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import Clock
from repro.sim.scheduler import Scheduler


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now() == 0.0

    def test_custom_start(self):
        assert Clock(start=10.0).now() == 10.0

    def test_advance(self):
        clock = Clock()
        clock.advance_to(5.0)
        assert clock.now() == 5.0

    def test_advance_backwards_raises(self):
        clock = Clock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_to_same_time_allowed(self):
        clock = Clock(start=3.0)
        clock.advance_to(3.0)
        assert clock.now() == 3.0


class TestScheduling:
    def test_events_run_in_time_order(self, scheduler):
        order = []
        scheduler.schedule(10, order.append, "b")
        scheduler.schedule(5, order.append, "a")
        scheduler.schedule(20, order.append, "c")
        scheduler.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_clock_advances_with_events(self, scheduler):
        times = []
        scheduler.schedule(7.5, lambda: times.append(scheduler.now()))
        scheduler.run_until_idle()
        assert times == [7.5]
        assert scheduler.now() == 7.5

    def test_same_time_events_run_in_submission_order(self, scheduler):
        order = []
        for name in "abcde":
            scheduler.schedule(1.0, order.append, name)
        scheduler.run_until_idle()
        assert order == list("abcde")

    def test_negative_delay_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self, scheduler):
        scheduler.schedule(5, lambda: None)
        scheduler.run_until_idle()
        with pytest.raises(ValueError):
            scheduler.schedule_at(1.0, lambda: None)

    def test_call_soon_runs_at_current_time(self, scheduler):
        seen = []
        scheduler.schedule(3, lambda: scheduler.call_soon(seen.append,
                                                          scheduler.now()))
        scheduler.run_until_idle()
        assert seen == [3.0]

    def test_cancelled_event_does_not_run(self, scheduler):
        seen = []
        event = scheduler.schedule(1, seen.append, "x")
        event.cancel()
        scheduler.run_until_idle()
        assert seen == []

    def test_events_scheduled_from_events(self, scheduler):
        seen = []

        def first():
            seen.append("first")
            scheduler.schedule(5, lambda: seen.append("second"))

        scheduler.schedule(1, first)
        scheduler.run_until_idle()
        assert seen == ["first", "second"]
        assert scheduler.now() == 6.0

    def test_kwargs_passed(self, scheduler):
        seen = {}
        scheduler.schedule(1, seen.update, answer=42)
        scheduler.run_until_idle()
        assert seen == {"answer": 42}


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self, scheduler):
        seen = []
        scheduler.schedule(5, seen.append, "early")
        scheduler.schedule(50, seen.append, "late")
        scheduler.run(until=10)
        assert seen == ["early"]
        assert scheduler.now() == 10
        assert scheduler.pending() == 1

    def test_run_resumes_after_until(self, scheduler):
        seen = []
        scheduler.schedule(50, seen.append, "late")
        scheduler.run(until=10)
        scheduler.run_until_idle()
        assert seen == ["late"]

    def test_run_max_events(self, scheduler):
        seen = []
        for i in range(10):
            scheduler.schedule(i, seen.append, i)
        scheduler.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_step_returns_false_when_empty(self, scheduler):
        assert scheduler.step() is False

    def test_step_runs_one_event(self, scheduler):
        seen = []
        scheduler.schedule(1, seen.append, 1)
        scheduler.schedule(2, seen.append, 2)
        assert scheduler.step() is True
        assert seen == [1]

    def test_runaway_guard(self, scheduler):
        def reschedule():
            scheduler.schedule(1, reschedule)

        scheduler.schedule(1, reschedule)
        with pytest.raises(RuntimeError):
            scheduler.run_until_idle(max_events=100)

    def test_events_executed_counter(self, scheduler):
        for i in range(5):
            scheduler.schedule(i, lambda: None)
        scheduler.run_until_idle()
        assert scheduler.events_executed == 5


class TestFastPathScheduling:
    def test_schedule_call_runs_fn_with_args(self, scheduler):
        seen = []
        scheduler.schedule_call(5.0, seen.append, ("x",))
        scheduler.run_until_idle()
        assert seen == ["x"]
        assert scheduler.now() == 5.0

    def test_schedule_call_negative_delay_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.schedule_call(-1.0, lambda: None)

    def test_schedule_call_at_in_past_rejected(self, scheduler):
        scheduler.schedule(5, lambda: None)
        scheduler.run_until_idle()
        with pytest.raises(ValueError):
            scheduler.schedule_call_at(1.0, lambda: None)

    def test_schedule_call_interleaves_with_events_in_seq_order(self, scheduler):
        order = []
        scheduler.schedule(1.0, order.append, "a")
        scheduler.schedule_call(1.0, order.append, ("b",))
        scheduler.schedule(1.0, order.append, "c")
        scheduler.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_schedule_call_at_kwargs(self, scheduler):
        seen = {}
        scheduler.schedule_call_at(2.0, seen.update, (), {"answer": 42})
        scheduler.run_until_idle()
        assert seen == {"answer": 42}


class TestCancellationBookkeeping:
    def test_pending_counts_cancelled_by_default(self, scheduler):
        live = scheduler.schedule(1, lambda: None)
        dead = scheduler.schedule(2, lambda: None)
        dead.cancel()
        assert scheduler.pending() == 2
        assert scheduler.pending(live_only=True) == 1
        live.cancel()
        assert scheduler.pending(live_only=True) == 0

    def test_cancel_after_execution_is_inert(self, scheduler):
        fired = scheduler.schedule(1, lambda: None)
        queued = scheduler.schedule(10, lambda: None)
        scheduler.run(until=5)
        fired.cancel()  # late cancel of an already-fired timeout
        assert scheduler.pending() == 1
        assert scheduler.pending(live_only=True) == 1
        queued.cancel()
        assert scheduler.pending(live_only=True) == 0

    def test_cancel_after_step_is_inert(self, scheduler):
        fired = scheduler.schedule(1, lambda: None)
        scheduler.schedule(10, lambda: None)
        assert scheduler.step() is True
        fired.cancel()
        assert scheduler.pending(live_only=True) == 1

    def test_cancel_of_pushed_back_head_still_counted(self, scheduler):
        late = scheduler.schedule(50, lambda: None)
        scheduler.run(until=10)  # pops and re-queues the head entry
        late.cancel()
        assert scheduler.pending(live_only=True) == 0
        scheduler.run_until_idle()
        assert scheduler.events_executed == 0

    def test_double_cancel_counted_once(self, scheduler):
        event = scheduler.schedule(1, lambda: None)
        event.cancel()
        event.cancel()
        assert scheduler.pending(live_only=True) == 0
        assert scheduler.pending() == 1

    def test_mass_cancellation_compacts_heap(self, scheduler):
        events = [scheduler.schedule(i + 1, lambda: None) for i in range(2000)]
        for event in events[:1500]:
            event.cancel()
        # The lazy purge kicks in once cancellations dominate: the heap
        # shrinks without running anything.
        assert scheduler.pending() < 2000
        assert scheduler.pending(live_only=True) == 500
        scheduler.run_until_idle()
        assert scheduler.events_executed == 500

    def test_cancelled_events_skipped_after_compaction(self, scheduler):
        seen = []
        keep = scheduler.schedule(10, seen.append, "keep")
        cancelled = [scheduler.schedule(5, seen.append, f"drop{i}")
                     for i in range(1000)]
        for event in cancelled:
            event.cancel()
        scheduler.run_until_idle()
        assert seen == ["keep"]

    def test_purge_during_run_keeps_future_events(self, scheduler):
        seen = []
        later = [scheduler.schedule(50 + i, seen.append, i)
                 for i in range(600)]

        def cancel_most():
            for event in later[:590]:
                event.cancel()

        scheduler.schedule(1, cancel_most)
        scheduler.run_until_idle()
        assert seen == list(range(590, 600))


class TestTimingWheel:
    """Edge cases of the timing-wheel backend (overflow ring, cancellation
    inside buckets, kill-switch transitions).  Every test cross-checks the
    O(1) live counter against the O(n) :meth:`Scheduler._scan_live` audit."""

    def audit(self, scheduler):
        assert scheduler.pending(live_only=True) == scheduler._scan_live()

    def test_overflow_heap_migrates_into_wheel(self, scheduler):
        # Horizon is 1024 slots x 1 ms: 1500/2500/5000 ms start on the
        # overflow heap, 100/900 ms in wheel buckets.
        order = []
        for delay in (2500.0, 100.0, 5000.0, 900.0, 1500.0):
            scheduler.schedule(delay, order.append, delay)
        assert len(scheduler._heap) == 3
        assert scheduler._wheel_count == 2
        self.audit(scheduler)
        scheduler.run_until_idle()
        assert order == [100.0, 900.0, 1500.0, 2500.0, 5000.0]
        assert not scheduler._heap
        self.audit(scheduler)

    def test_overflow_migration_across_many_horizons(self, scheduler):
        # Timestamps spread over ~6 wheel horizons force repeated lazy
        # migration sweeps; interleaved near events keep the cursor moving.
        observed = []
        delays = [float(i * 613 % 6000) + 0.25 for i in range(64)]
        for delay in delays:
            scheduler.schedule(delay, lambda: observed.append(scheduler.now()))
        self.audit(scheduler)
        scheduler.run_until_idle()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)
        self.audit(scheduler)

    def test_same_tick_submission_order_after_migration(self, scheduler):
        # Two entries at the same far-future instant arrive via the overflow
        # heap; migration must preserve (time, seq) submission order.
        order = []
        scheduler.schedule(3000.0, order.append, "first")
        scheduler.schedule(3000.0, order.append, "second")
        scheduler.run_until_idle()
        assert order == ["first", "second"]

    def test_cancel_inside_noncursor_bucket(self, scheduler):
        seen = []
        keep = scheduler.schedule(700.0, seen.append, "keep")
        drop = scheduler.schedule(700.0, seen.append, "drop")
        assert scheduler._wheel_count == 2
        drop.cancel()
        assert scheduler.pending(live_only=True) == 1
        self.audit(scheduler)
        scheduler.run_until_idle()
        assert seen == ["keep"]
        assert scheduler.pending() == 0

    def test_cancel_overflow_entry_before_migration(self, scheduler):
        seen = []
        dead = scheduler.schedule(4000.0, seen.append, "dead")
        scheduler.schedule(4500.0, seen.append, "live")
        dead.cancel()
        self.audit(scheduler)
        scheduler.run_until_idle()
        assert seen == ["live"]
        assert scheduler.events_executed == 1

    def test_mass_cancel_purges_wheel_buckets(self, scheduler):
        # All 2000 events live in wheel buckets (within the horizon); the
        # lazy purge must compact the buckets themselves, not just the heap.
        events = [scheduler.schedule(float(i % 1000) + 1.5, lambda: None)
                  for i in range(2000)]
        assert scheduler._wheel_count == 2000
        for event in events[:1500]:
            event.cancel()
        assert scheduler.pending() < 2000
        assert scheduler.pending(live_only=True) == 500
        self.audit(scheduler)
        scheduler.run_until_idle()
        assert scheduler.events_executed == 500

    def test_wheel_off_dumps_buckets_then_on_reanchors(self, scheduler):
        order = []
        scheduler.schedule(50.0, order.append, "wheel")
        scheduler.schedule(2000.0, order.append, "overflow")
        scheduler.wheel = False
        # The dump moved every bucketed entry to the heap; accounting and
        # execution order are unchanged.
        assert scheduler._wheel_count == 0
        assert len(scheduler._heap) == 2
        self.audit(scheduler)
        scheduler.run(until=100.0)
        assert order == ["wheel"]
        scheduler.wheel = True
        scheduler.schedule(10.0, order.append, "late-wheel")
        self.audit(scheduler)
        scheduler.run_until_idle()
        assert order == ["wheel", "late-wheel", "overflow"]
        assert scheduler.events_executed == 3

    def test_wheel_toggle_matches_heap_trace(self):
        # The same schedule executes in the same (time, seq) order with the
        # wheel on, off, and toggled mid-run.
        def load(scheduler):
            for i in range(200):
                scheduler.schedule(float(i * 37 % 1500) + 0.5, lambda: None)

        def trace_with(toggle):
            scheduler = Scheduler()
            trace = scheduler.start_trace()
            load(scheduler)
            if toggle == "off":
                scheduler.wheel = False
            scheduler.run(until=750.0)
            if toggle == "mid":
                scheduler.wheel = False
            scheduler.run_until_idle()
            return trace

        assert trace_with("on") == trace_with("off") == trace_with("mid")

    def test_run_until_leaves_cursor_consistent(self, scheduler):
        # Stopping at an `until` bound inside the horizon must keep the
        # insert invariant: a new earlier-but-future event still runs first.
        seen = []
        scheduler.schedule(500.0, seen.append, "far")
        scheduler.run(until=200.0)
        assert scheduler.now() == 200.0
        scheduler.schedule(100.0, seen.append, "near")
        self.audit(scheduler)
        scheduler.run_until_idle()
        assert seen == ["near", "far"]


class TestTrace:
    def test_trace_records_time_and_seq(self, scheduler):
        trace = scheduler.start_trace()
        scheduler.schedule(2.0, lambda: None)
        scheduler.schedule(1.0, lambda: None)
        scheduler.run_until_idle()
        assert [t for t, _ in trace] == [1.0, 2.0]
        assert len({seq for _, seq in trace}) == 2

    def test_stop_trace(self, scheduler):
        trace = scheduler.start_trace()
        scheduler.stop_trace()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run_until_idle()
        assert trace == []


@given(st.lists(st.floats(min_value=0, max_value=1000,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_execution_times_are_monotone(delays):
    scheduler = Scheduler()
    observed = []
    for delay in delays:
        scheduler.schedule(delay, lambda: observed.append(scheduler.now()))
    scheduler.run_until_idle()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert scheduler.now() == max(delays)
