#!/usr/bin/env python
"""Ad serving with speculation (Section 4.2 / Listing 4 / Figure 11).

Fetching personalized ads is a two-step operation: read the user's list of ad
references, then fetch every referenced ad.  This example compares the
baseline (strong read of the references, then fetch) against the ICG version
(speculatively prefetch on the preliminary reference list) and prints the
latency of both, plus what happens when a concurrent profile update causes a
misspeculation.

Run with::

    python examples/ad_serving.py
"""

from repro.apps.ads import AdServingSystem
from repro.apps.datasets import AdsDataset
from repro.bindings.cassandra import CassandraBinding
from repro.cassandra_sim.cluster import CassandraCluster
from repro.cassandra_sim.config import CassandraConfig
from repro.core import CorrectableClient
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region


def main() -> None:
    env = SimEnvironment(seed=7)
    dataset = AdsDataset(profile_count=100, ad_count=300,
                         max_ads_per_profile=8, seed=7)
    cluster = CassandraCluster(env, CassandraConfig())
    cluster.preload(dataset.initial_items())

    node = cluster.add_client("ad-frontend", region=Region.IRL,
                              contact_region=Region.FRK)
    client = CorrectableClient(CassandraBinding(node))
    ads_system = AdServingSystem(client, dataset)

    profile = "profile:7"
    print(f"profile {profile} references {len(dataset.ad_refs(profile))} ads\n")

    # Baseline: wait for the strongly consistent reference list first.
    ads_system.fetch_ads_by_user_id(
        profile,
        lambda info: print(f"baseline (no speculation): {len(info['ads'])} ads "
                           f"in {info['latency_ms']:.1f} ms"),
        speculate=False)
    env.run_until_idle()

    # ICG: prefetch on the preliminary view, confirm with the final one.
    ads_system.fetch_ads_by_user_id(
        profile,
        lambda info: print(f"with ICG speculation:      {len(info['ads'])} ads "
                           f"in {info['latency_ms']:.1f} ms "
                           f"(confirmed={info['speculation_confirmed']})"))
    env.run_until_idle()

    # Misspeculation: the profile changes while we are reading it.
    print("\nupdating the profile concurrently with the next fetch ...")
    ads_system.fetch_ads_by_user_id(
        profile,
        lambda info: print(f"concurrent update:         {len(info['ads'])} ads "
                           f"in {info['latency_ms']:.1f} ms "
                           f"(confirmed={info['speculation_confirmed']})"))
    env.scheduler.schedule(5.0, ads_system.update_profile, profile)
    env.run_until_idle()

    stats = ads_system.speculation_stats
    print(f"\nspeculation stats: started={stats.speculations_started} "
          f"confirmed={stats.confirmed} misspeculations={stats.misspeculations}")


if __name__ == "__main__":
    main()
