"""Tests for the synthetic app datasets and the Table 1 catalog."""

import random

import pytest

from repro.apps.catalog import (
    APPLICATION_CATALOG,
    ConsistencyCategory,
    recommend_category,
    use_cases,
)
from repro.apps.datasets import AdsDataset, TwissandraDataset


class TestAdsDataset:
    def test_reference_counts_within_bounds(self):
        dataset = AdsDataset(profile_count=200, ad_count=500)
        for profile_key in dataset.profile_keys():
            refs = dataset.ad_refs(profile_key)
            assert 1 <= len(refs) <= 40
            for ref in refs:
                assert ref.startswith("ad:")
                assert 0 <= int(ref.split(":")[1]) < 500

    def test_deterministic_for_same_seed(self):
        a = AdsDataset(profile_count=50, ad_count=100, seed=3)
        b = AdsDataset(profile_count=50, ad_count=100, seed=3)
        assert a.initial_items() == b.initial_items()

    def test_different_seed_differs(self):
        a = AdsDataset(profile_count=50, ad_count=100, seed=3)
        b = AdsDataset(profile_count=50, ad_count=100, seed=4)
        assert a.initial_items() != b.initial_items()

    def test_initial_items_cover_profiles_and_ads(self):
        dataset = AdsDataset(profile_count=10, ad_count=20)
        items = dataset.initial_items()
        assert len(items) == 30
        assert len(dataset.ad_body("ad:0")) == dataset.ad_body_bytes

    def test_random_refs_respect_bounds(self):
        dataset = AdsDataset(profile_count=10, ad_count=20)
        rng = random.Random(0)
        for _ in range(20):
            refs = dataset.random_refs(rng)
            assert 1 <= len(refs) <= 40

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            AdsDataset(profile_count=0)


class TestTwissandraDataset:
    def test_timelines_reference_valid_tweets(self):
        dataset = TwissandraDataset(user_count=100, tweet_count=300)
        for key in dataset.timeline_keys():
            timeline = dataset.timeline(key)
            assert 1 <= len(timeline) <= dataset.timeline_length
            for tweet in timeline:
                assert 0 <= int(tweet.split(":")[1]) < 300

    def test_tweet_bodies_fixed_size(self):
        dataset = TwissandraDataset(user_count=5, tweet_count=10)
        assert len(dataset.tweet_body("tweet:3")) == dataset.tweet_body_bytes

    def test_initial_items_count(self):
        dataset = TwissandraDataset(user_count=5, tweet_count=10)
        assert len(dataset.initial_items()) == 15

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            TwissandraDataset(user_count=0)


class TestCatalog:
    def test_all_three_categories_present(self):
        categories = {case.category for case in APPLICATION_CATALOG}
        assert categories == set(ConsistencyCategory)

    def test_use_cases_filter(self):
        icg_cases = use_cases(ConsistencyCategory.ICG)
        assert all(case.category is ConsistencyCategory.ICG
                   for case in icg_cases)
        assert any("advertising" == case.name for case in icg_cases)

    def test_recommendation_weak(self):
        category, _ = recommend_category(requires_correct_results=False,
                                         benefits_from_fast_weak_views=True)
        assert category is ConsistencyCategory.WEAK

    def test_recommendation_strong(self):
        category, _ = recommend_category(requires_correct_results=True,
                                         benefits_from_fast_weak_views=False)
        assert category is ConsistencyCategory.STRONG

    def test_recommendation_icg(self):
        category, reason = recommend_category(requires_correct_results=True,
                                              benefits_from_fast_weak_views=True)
        assert category is ConsistencyCategory.ICG
        assert reason
