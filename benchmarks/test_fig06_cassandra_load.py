"""Figure 6 — Correctable Cassandra latency vs throughput under YCSB A/B/C."""

import pytest

from repro.bench.fig06_load import format_fig06, run_fig06


@pytest.mark.benchmark(group="fig06")
def test_fig06_latency_vs_throughput(benchmark, save_report):
    records = benchmark.pedantic(
        run_fig06,
        kwargs=dict(workloads=("A", "B", "C"), systems=("C1", "C2", "CC2"),
                    thread_counts=(2, 6, 12, 24, 48), duration_ms=8_000.0,
                    warmup_ms=2_000.0, cooldown_ms=1_000.0,
                    record_count=1_000, seed=42),
        rounds=1, iterations=1)
    save_report("fig06_cassandra_load", format_fig06(records))

    for workload in ("A", "B", "C"):
        rows = [r for r in records if r["workload"] == workload]
        by_system_low_load = {r["system"]: r for r in rows
                              if r["threads_per_client"] == 2}
        # CC2's two views bracket the C1/C2 baselines.
        assert by_system_low_load["CC2"]["preliminary_mean_ms"] < \
            by_system_low_load["CC2"]["final_mean_ms"]
        assert by_system_low_load["C1"]["final_mean_ms"] < \
            by_system_low_load["C2"]["final_mean_ms"]
        # Throughput rises with offered load for every system.
        for system in ("C1", "C2", "CC2"):
            series = sorted((r for r in rows if r["system"] == system),
                            key=lambda r: r["threads_per_client"])
            assert series[0]["throughput_ops_s"] < series[-1]["throughput_ops_s"]
