"""Tests for latency recording, bandwidth probes, divergence, and tables."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.bandwidth import BandwidthProbe
from repro.metrics.divergence import DivergenceCounter
from repro.metrics.latency import HistogramRecorder, LatencyRecorder
from repro.metrics.summary import format_row, format_table
from repro.sim.environment import SimEnvironment
from repro.sim.node import Node
from repro.sim.topology import Region


class TestLatencyRecorder:
    def test_mean(self):
        recorder = LatencyRecorder()
        recorder.extend([10, 20, 30])
        assert recorder.mean() == 20
        assert recorder.count == 3

    def test_empty_summaries_are_zero(self):
        recorder = LatencyRecorder()
        assert recorder.mean() == 0
        assert recorder.p99() == 0
        assert recorder.minimum() == 0 and recorder.maximum() == 0
        assert recorder.stddev() == 0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_percentiles(self):
        recorder = LatencyRecorder()
        recorder.extend(range(1, 101))
        assert recorder.p50() == pytest.approx(50.5)
        assert recorder.percentile(100) == 100
        assert recorder.p99() == pytest.approx(99.01)

    def test_percentile_bounds_validated(self):
        recorder = LatencyRecorder()
        recorder.record(1)
        with pytest.raises(ValueError):
            recorder.percentile(0)
        with pytest.raises(ValueError):
            recorder.percentile(101)

    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(42)
        assert recorder.p50() == 42 and recorder.p99() == 42

    def test_merge(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.extend([1, 2])
        b.extend([3, 4])
        a.merge(b)
        assert a.count == 4 and a.maximum() == 4

    def test_stddev(self):
        recorder = LatencyRecorder()
        recorder.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert recorder.stddev() == pytest.approx(2.138, abs=0.01)

    def test_summary_keys(self):
        recorder = LatencyRecorder("reads")
        recorder.record(5)
        summary = recorder.summary()
        assert summary["name"] == "reads"
        assert summary["count"] == 1
        assert summary["mean_ms"] == 5

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=200))
    def test_percentiles_bounded_by_min_max(self, samples):
        recorder = LatencyRecorder()
        recorder.extend(samples)
        for p in (1, 25, 50, 75, 99, 100):
            value = recorder.percentile(p)
            assert recorder.minimum() <= value <= recorder.maximum()
        assert recorder.p50() <= recorder.p99()


class TestLatencyRecorderBulk:
    def test_extend_rejects_any_negative_without_partial_append(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.extend([1.0, 2.0, -3.0])
        assert recorder.count == 0

    def test_extend_accepts_generator(self):
        recorder = LatencyRecorder()
        recorder.extend(float(i) for i in range(10))
        assert recorder.count == 10 and recorder.maximum() == 9.0

    def test_extend_empty(self):
        recorder = LatencyRecorder()
        recorder.extend([])
        assert recorder.count == 0


class TestHistogramRecorder:
    def test_empty_summaries_are_zero(self):
        recorder = HistogramRecorder()
        assert recorder.mean() == 0 and recorder.p99() == 0
        assert recorder.minimum() == 0 and recorder.maximum() == 0
        assert recorder.stddev() == 0 and recorder.count == 0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            HistogramRecorder().record(-1)

    def test_mean_min_max_are_exact(self):
        recorder = HistogramRecorder()
        recorder.extend([10.25, 20.5, 30.75])
        assert recorder.mean() == pytest.approx((10.25 + 20.5 + 30.75) / 3)
        assert recorder.minimum() == 10.25
        assert recorder.maximum() == 30.75

    def test_percentiles_within_quantization_error(self):
        exact = LatencyRecorder()
        hist = HistogramRecorder()
        # A dense, strictly increasing sweep: neighbouring samples are close,
        # so rank-method differences stay within the quantization bound.
        samples = [i * 0.377 for i in range(1, 500)]
        exact.extend(samples)
        hist.extend(samples)
        for p in (50, 90, 99):
            assert hist.percentile(p) == pytest.approx(
                exact.percentile(p), rel=5e-3)

    def test_extreme_percentiles_clamped_to_true_extremes(self):
        recorder = HistogramRecorder()
        recorder.extend([5.0, 7.0, 1234.567])
        assert recorder.percentile(100) == 1234.567
        assert recorder.percentile(1) >= 5.0

    def test_percentile_bounds_validated(self):
        recorder = HistogramRecorder()
        recorder.record(1)
        with pytest.raises(ValueError):
            recorder.percentile(0)
        with pytest.raises(ValueError):
            recorder.percentile(101)

    def test_stddev_close_to_exact(self):
        exact = LatencyRecorder()
        hist = HistogramRecorder()
        samples = [2, 4, 4, 4, 5, 5, 7, 9]
        exact.extend(samples)
        hist.extend(samples)
        assert hist.stddev() == pytest.approx(exact.stddev(), rel=1e-9)

    def test_merge(self):
        a, b = HistogramRecorder(), HistogramRecorder()
        a.extend([1.0, 2.0])
        b.extend([3.0, 400.0])
        a.merge(b)
        assert a.count == 4
        assert a.maximum() == 400.0
        assert a.mean() == pytest.approx(101.5)

    def test_merge_incompatible_resolution_rejected(self):
        a = HistogramRecorder(resolution_ms=0.001)
        b = HistogramRecorder(resolution_ms=0.01)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_summary_keys_match_latency_recorder(self):
        exact, hist = LatencyRecorder("x"), HistogramRecorder("x")
        exact.record(5)
        hist.record(5)
        assert set(hist.summary()) == set(exact.summary())

    def test_memory_is_bounded(self):
        recorder = HistogramRecorder()
        for i in range(50_000):
            recorder.record(0.01 + (i % 3000) * 0.071)
        assert recorder.count == 50_000
        # Bin storage depends on the value range, not the sample count.
        assert len(recorder._counts) < 40_000

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=200))
    def test_percentiles_bounded_by_min_max(self, samples):
        recorder = HistogramRecorder()
        recorder.extend(samples)
        for p in (1, 25, 50, 75, 99, 100):
            value = recorder.percentile(p)
            assert recorder.minimum() <= value <= recorder.maximum()
        assert recorder.p50() <= recorder.p99() or \
            recorder.p50() == pytest.approx(recorder.p99())


class TestDivergenceCounter:
    def test_record_matching(self):
        counter = DivergenceCounter()
        assert counter.record("a", "a") is False
        assert counter.divergence_rate() == 0

    def test_record_diverging(self):
        counter = DivergenceCounter()
        assert counter.record("a", "b") is True
        counter.record("x", "x")
        assert counter.divergence_rate() == pytest.approx(0.5)
        assert counter.divergence_percent() == pytest.approx(50.0)

    def test_missing_preliminary_not_counted(self):
        counter = DivergenceCounter()
        counter.record(None, "x", had_preliminary=False)
        assert counter.total == 0
        assert counter.missing_preliminary == 1

    def test_record_outcome(self):
        counter = DivergenceCounter()
        counter.record_outcome(True)
        counter.record_outcome(False)
        counter.record_outcome(False, had_preliminary=False)
        assert counter.diverged == 1 and counter.matched == 1
        assert counter.missing_preliminary == 1

    def test_merge(self):
        a, b = DivergenceCounter(), DivergenceCounter()
        a.record_outcome(True)
        b.record_outcome(False)
        a.merge(b)
        assert a.total == 2

    def test_empty_rate_is_zero(self):
        assert DivergenceCounter().divergence_rate() == 0.0


class _Sink(Node):
    def handle_message(self, message):
        pass


class TestBandwidthProbe:
    def _env_with_nodes(self):
        env = SimEnvironment(seed=1)
        a = _Sink("client", Region.IRL, env.network)
        b = _Sink("server", Region.FRK, env.network)
        c = _Sink("other", Region.VRG, env.network)
        return env, a, b, c

    def test_window_scoping(self):
        env, a, b, _ = self._env_with_nodes()
        env.network.send("client", "server", "x", size_bytes=100)
        probe = BandwidthProbe(env.network, ["client"], ["server"])
        probe.start()
        env.network.send("client", "server", "x", size_bytes=40)
        env.network.send("server", "client", "x", size_bytes=60)
        probe.stop()
        env.network.send("client", "server", "x", size_bytes=500)
        assert probe.bytes_transferred() == 100

    def test_only_selected_links_counted(self):
        env, a, b, c = self._env_with_nodes()
        probe = BandwidthProbe(env.network, ["client"], ["server"])
        probe.start()
        env.network.send("client", "other", "x", size_bytes=999)
        env.network.send("client", "server", "x", size_bytes=10)
        assert probe.bytes_transferred() == 10

    def test_kilobytes_per_op(self):
        env, a, b, _ = self._env_with_nodes()
        probe = BandwidthProbe(env.network, ["client"], ["server"])
        probe.start()
        env.network.send("client", "server", "x", size_bytes=3000)
        assert probe.kilobytes_per_op(3) == pytest.approx(1.0)
        assert probe.kilobytes_per_op(0) == 0.0

    def test_unstarted_probe_raises(self):
        env, *_ = self._env_with_nodes()
        probe = BandwidthProbe(env.network, ["client"], ["server"])
        with pytest.raises(RuntimeError):
            probe.stop()
        with pytest.raises(RuntimeError):
            probe.bytes_transferred()


class TestTableFormatting:
    def test_format_table_aligns_columns(self):
        table = format_table(["name", "value"],
                             [["a", 1], ["longer-name", 2.5]],
                             title="Title")
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        row = format_row([1.23456, "x"], [8, 3])
        assert "1.23" in row

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table
