"""An in-memory binding for tests, examples, and unit benchmarks.

:class:`LocalStore` is a single-process key-value store (plus FIFO queues)
that remembers the previous value of every key; :class:`LocalBinding` exposes
it under two consistency levels:

* ``WEAK``  — may return the *previous* value of a key with a configurable
  probability, modelling the staleness an eventually consistent replica would
  exhibit;
* ``STRONG`` — always returns the authoritative value.

When given a :class:`~repro.sim.scheduler.Scheduler`, view delivery is
delayed by configurable latencies so the weak/strong latency gap of the paper
can be reproduced without a full cluster simulation.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.bindings.base import Binding, CallbackType
from repro.core.consistency import ConsistencyLevel, STRONG, WEAK
from repro.core.errors import OperationError
from repro.core.operations import Operation
from repro.sim.scheduler import Scheduler


class LocalStore:
    """A toy storage engine: versioned key-value pairs plus named FIFO queues."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self._previous: Dict[str, Any] = {}
        self._queues: Dict[str, Deque[Any]] = {}

    # -- key-value ---------------------------------------------------------
    def get(self, key: str) -> Any:
        if key not in self._data:
            raise OperationError(f"key not found: {key!r}")
        return self._data[key]

    def get_stale(self, key: str) -> Any:
        """The previous value of ``key`` (falls back to the current one)."""
        if key in self._previous:
            return self._previous[key]
        return self.get(key)

    def put(self, key: str, value: Any) -> None:
        if key in self._data:
            self._previous[key] = self._data[key]
        self._data[key] = value

    def contains(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> List[str]:
        return list(self._data.keys())

    # -- queues --------------------------------------------------------------
    def queue(self, name: str) -> Deque[Any]:
        return self._queues.setdefault(name, deque())

    def enqueue(self, name: str, item: Any) -> int:
        q = self.queue(name)
        q.append(item)
        return len(q)

    def dequeue(self, name: str) -> Any:
        q = self.queue(name)
        if not q:
            return None
        return q.popleft()

    def peek(self, name: str) -> Any:
        q = self.queue(name)
        return q[0] if q else None

    def queue_length(self, name: str) -> int:
        return len(self.queue(name))


class LocalBinding(Binding):
    """Binding over a :class:`LocalStore` with optional delays and staleness."""

    def __init__(self, store: Optional[LocalStore] = None,
                 scheduler: Optional[Scheduler] = None,
                 weak_delay_ms: float = 2.0,
                 strong_delay_ms: float = 50.0,
                 stale_probability: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        self.store = store if store is not None else LocalStore()
        self.scheduler = scheduler
        self.weak_delay_ms = weak_delay_ms
        self.strong_delay_ms = strong_delay_ms
        self.stale_probability = stale_probability
        self._rng = rng if rng is not None else random.Random(0)
        self.operations_submitted = 0
        if scheduler is not None:
            self.clock = scheduler.now

    # -- Binding API ---------------------------------------------------------
    def consistency_levels(self) -> List[ConsistencyLevel]:
        return [WEAK, STRONG]

    def submit_operation(self, operation: Operation,
                         levels: List[ConsistencyLevel],
                         callback: CallbackType) -> None:
        levels = self.validate_levels(levels)
        self.operations_submitted += 1
        if WEAK in levels:
            self._deliver(self.weak_delay_ms, callback, WEAK, operation,
                          weak=True)
        if STRONG in levels:
            self._deliver(self.strong_delay_ms, callback, STRONG, operation,
                          weak=False)

    # -- execution -------------------------------------------------------------
    def _deliver(self, delay_ms: float, callback: CallbackType,
                 level: ConsistencyLevel, operation: Operation,
                 weak: bool) -> None:
        def _run() -> None:
            try:
                value = self._execute(operation, weak=weak)
            except OperationError as exc:
                callback(level, None, error=exc)
                return
            callback(level, value, metadata={"weak": weak})

        if self.scheduler is None:
            _run()
        else:
            self.scheduler.schedule(delay_ms, _run)

    def _execute(self, operation: Operation, weak: bool) -> Any:
        name = operation.name
        key = operation.key
        if name == "read":
            if weak and self.stale_probability > 0 and \
                    self._rng.random() < self.stale_probability:
                return self.store.get_stale(key)
            return self.store.get(key)
        if name == "write":
            value = operation.args[0]
            if not weak:
                # Only the authoritative (strong) execution mutates the store;
                # the weak view is an optimistic acknowledgement.
                self.store.put(key, value)
            return value
        if name == "enqueue":
            item = operation.args[0]
            if weak:
                return self.store.queue_length(key) + 1
            return self.store.enqueue(key, item)
        if name == "dequeue":
            if weak:
                # Simulate the dequeue on local state: report the head and the
                # stock that would remain after taking it (same semantics as
                # the Correctable ZooKeeper preliminary).
                head = self.store.peek(key)
                remaining = max(0, self.store.queue_length(key) - 1) \
                    if head is not None else 0
                return {"item": head, "remaining": remaining}
            item = self.store.dequeue(key)
            return {"item": item, "remaining": self.store.queue_length(key)}
        raise self.unsupported_operation(operation)
