"""Array-backend vs per-draw equality for the vectorized generators.

The determinism seam (:mod:`repro.workloads.fastrand`) promises that chunked
generation reproduces the historical per-draw ``random.Random`` sequences
bit for bit — same operations, same keys, same values, same gaps, and the
same generator state afterwards.  These tests pin that contract on every
consumer of the seam.
"""

from __future__ import annotations

import random

import pytest

from repro.workloads import fastrand
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.records import Dataset, make_value
from repro.workloads.ycsb import OperationGenerator, workload_by_name


def _per_draw_generator(spec, dataset, rng) -> OperationGenerator:
    """A generator pinned to the historical per-draw path.

    ``_streams = False`` is the generator's own "per-draw only" sentinel
    (the state it reaches when a chooser cannot be vectorized), so the
    reference consumes the rng exactly as the pre-seam code did.
    """
    generator = OperationGenerator(spec, dataset, rng)
    generator._streams = False
    return generator


class TestOperationStreamEquality:
    @pytest.mark.parametrize("workload", ["A", "B"])
    def test_prefill_matches_per_draw(self, workload):
        # A shared rng interleaves key and mix draws, so only one-double
        # choosers (zipfian) can vectorize; uniform is covered through the
        # independent-stream path below.
        spec = workload_by_name(workload).with_distribution("zipfian")
        # Separate datasets: the shared value stream must advance in the
        # same global order on both sides.
        vec = OperationGenerator(spec, Dataset(400, seed=3),
                                 random.Random(9))
        ref = _per_draw_generator(spec, Dataset(400, seed=3),
                                  random.Random(9))
        assert vec.prefill(300) >= 300
        ops_vec = [vec.next_operation() for _ in range(300)]
        ops_ref = [ref.next_operation() for _ in range(300)]
        assert ops_vec == ops_ref
        assert (vec.reads_generated, vec.updates_generated) == \
            (ref.reads_generated, ref.updates_generated)
        # After syncing the stream back, the source rng has consumed
        # exactly the same Mersenne Twister words as the per-draw path.
        vec.sync_streams()
        assert vec._rng.getstate() == ref._rng.getstate()

    @pytest.mark.parametrize("distribution", ["zipfian", "uniform"])
    def test_seeded_generators_with_independent_streams_match(
            self, distribution):
        spec = workload_by_name("A").with_distribution(distribution)
        vec = OperationGenerator.seeded(spec, Dataset(250, seed=1), 42,
                                        "vec-test")
        ref = OperationGenerator.seeded(spec, Dataset(250, seed=1), 42,
                                        "vec-test")
        ref._streams = False
        assert vec.prefill(200) >= 200
        assert [vec.next_operation() for _ in range(200)] == \
            [ref.next_operation() for _ in range(200)]

    def test_auto_chunk_engagement_is_seamless(self):
        """Crossing the auto-chunk threshold must not perturb the stream."""
        spec = workload_by_name("A")
        vec = OperationGenerator(spec, Dataset(300, seed=2),
                                 random.Random(5))
        ref = _per_draw_generator(spec, Dataset(300, seed=2),
                                  random.Random(5))
        n = 500  # crosses _AUTO_CHUNK_AFTER mid-sequence
        assert [vec.next_operation() for _ in range(n)] == \
            [ref.next_operation() for _ in range(n)]

    def test_latest_distribution_stays_per_draw(self):
        """A stateful chooser cannot vectorize; prefill reports 0 draws."""
        spec = workload_by_name("A").with_distribution("latest")
        generator = OperationGenerator(spec, Dataset(100, seed=4),
                                       random.Random(6))
        assert generator.prefill(64) == 0
        op_type, key, _ = generator.next_operation()
        assert op_type in ("read", "update") and key


class TestArrivalAndValueStreams:
    def test_poisson_prefill_matches_expovariate(self):
        arrivals = PoissonArrivals(200.0, random.Random(5))
        reference = random.Random(5)
        arrivals.prefill(400)
        gaps = [arrivals.next_gap_ms() for _ in range(400)]
        assert gaps == [reference.expovariate(0.2) for _ in range(400)]

    def test_poisson_auto_chunk_matches_expovariate(self):
        arrivals = PoissonArrivals(150.0, random.Random(8))
        reference = random.Random(8)
        gaps = [arrivals.next_gap_ms() for _ in range(500)]
        assert gaps == [reference.expovariate(0.15) for _ in range(500)]

    def test_dataset_value_stream_matches_make_value(self):
        dataset = Dataset(10, value_size_bytes=24, seed=6)
        reference = random.Random(6)
        values = [dataset.random_value() for _ in range(40)]
        assert values == [make_value(reference, 24) for _ in range(40)]


class TestBackends:
    def test_pure_stream_reproduces_random(self):
        stream = fastrand.make_stream(random.Random(17), backend="array")
        reference = random.Random(17)
        assert list(stream.doubles(257)) == \
            [reference.random() for _ in range(257)]

    @pytest.mark.skipif(not fastrand.HAVE_NUMPY,
                        reason="numpy backend unavailable")
    def test_array_and_numpy_backends_produce_identical_streams(self):
        pure = fastrand.make_stream(random.Random(17), backend="array")
        mirror = fastrand.make_stream(random.Random(17), backend="numpy")
        assert [float(v) for v in mirror.doubles(257)] == \
            list(pure.doubles(257))
        pure2 = fastrand.make_stream(random.Random(23), backend="array")
        mirror2 = fastrand.make_stream(random.Random(23), backend="numpy")
        assert list(fastrand.exponential_gaps(mirror2, 100, 0.25)) == \
            list(fastrand.exponential_gaps(pure2, 100, 0.25))

    @pytest.mark.skipif(not fastrand.HAVE_NUMPY,
                        reason="numpy backend unavailable")
    def test_backend_sync_restores_identical_rng_state(self):
        rng_pure, rng_mirror = random.Random(31), random.Random(31)
        pure = fastrand.make_stream(rng_pure, backend="array")
        mirror = fastrand.make_stream(rng_mirror, backend="numpy")
        pure.doubles(100)
        mirror.doubles(100)
        pure.sync()
        mirror.sync()
        assert rng_pure.getstate() == rng_mirror.getstate()
