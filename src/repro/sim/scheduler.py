"""Event scheduler: the heart of the discrete-event simulation.

Events are callbacks ordered by (time, sequence-number).  The sequence number
makes execution order deterministic for events scheduled at the same instant,
which in turn makes every experiment in :mod:`repro.bench` reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.clock import Clock


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Scheduler.schedule` so callers can
    cancel pending work (e.g. a timeout that is no longer needed).
    """

    __slots__ = ("time", "seq", "fn", "args", "kwargs", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, kwargs: dict) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, seq={self.seq}, {state})"


class Scheduler:
    """Discrete-event scheduler with a simulated :class:`Clock`."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: list[Event] = []
        self._seq = 0
        self._events_executed = 0

    @property
    def events_executed(self) -> int:
        """Number of events run so far (useful for runaway detection)."""
        return self._events_executed

    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock.now()

    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 **kwargs: Any) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now() + delay, fn, *args, **kwargs)

    def schedule_at(self, timestamp: float, fn: Callable[..., Any],
                    *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn`` at an absolute simulated time."""
        if timestamp < self.now():
            raise ValueError(
                f"cannot schedule in the past: {timestamp} < {self.now()}"
            )
        event = Event(timestamp, self._seq, fn, args, kwargs)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, fn: Callable[..., Any], *args: Any,
                  **kwargs: Any) -> Event:
        """Schedule ``fn`` at the current instant (after pending same-time events)."""
        return self.schedule(0.0, fn, *args, **kwargs)

    def step(self) -> bool:
        """Run the next pending event.

        Returns:
            True if an event was executed, False if the queue was empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self._events_executed += 1
            event.fn(*event.args, **event.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed.

        ``until`` is an absolute simulated time; events scheduled strictly
        after it remain queued and the clock stops at ``until``.
        """
        executed = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                self.clock.advance_to(until)
                return
            if max_events is not None and executed >= max_events:
                return
            heapq.heappop(self._heap)
            self.clock.advance_to(event.time)
            self._events_executed += 1
            executed += 1
            event.fn(*event.args, **event.kwargs)
        if until is not None and until > self.now():
            self.clock.advance_to(until)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain.  Guards against runaway simulations."""
        self.run(max_events=max_events)
        if self._heap and self._events_executed >= max_events:
            raise RuntimeError(
                f"simulation did not converge after {max_events} events"
            )
