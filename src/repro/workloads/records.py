"""Dataset generation: YCSB-style records.

YCSB stores records named ``user0 .. userN`` with fixed-size values; the
divergence experiments use a deliberately small dataset (1 K records) so
that read activity concentrates on a hot set.
"""

from __future__ import annotations

import random
import string
from typing import Dict, List

_PRINTABLE = string.ascii_letters + string.digits
_PRINTABLE_LEN = len(_PRINTABLE)          # 62
_PRINTABLE_BITS = _PRINTABLE_LEN.bit_length()  # 6


def make_value(rng: random.Random, size_bytes: int = 100) -> str:
    """A random printable string of ``size_bytes`` characters.

    This is an inlined, loop-hoisted equivalent of
    ``"".join(rng.choice(_PRINTABLE) for _ in range(size_bytes))``: it
    consumes exactly the same ``getrandbits`` sequence ``Random.choice``
    does (draw ``bit_length(62)`` bits, reject values >= 62), so both the
    produced strings and the generator state after the call are
    bit-identical to the original implementation — value generation is a
    hot path, but it must never perturb seeded experiments.
    """
    if size_bytes <= 0:
        raise ValueError("value size must be positive")
    getrandbits = rng.getrandbits
    table = _PRINTABLE
    bits = _PRINTABLE_BITS
    limit = _PRINTABLE_LEN
    chars = []
    append = chars.append
    for _ in range(size_bytes):
        r = getrandbits(bits)
        while r >= limit:
            r = getrandbits(bits)
        append(table[r])
    return "".join(chars)


class Dataset:
    """A named collection of YCSB records."""

    def __init__(self, record_count: int = 1000, value_size_bytes: int = 100,
                 key_prefix: str = "user", seed: int = 0) -> None:
        if record_count <= 0:
            raise ValueError("record_count must be positive")
        self.record_count = record_count
        self.value_size_bytes = value_size_bytes
        self.key_prefix = key_prefix
        self._rng = random.Random(seed)

    def key(self, index: int) -> str:
        """The key of record ``index``."""
        if not 0 <= index < self.record_count:
            raise IndexError(f"record index out of range: {index}")
        return f"{self.key_prefix}{index}"

    def keys(self) -> List[str]:
        return [self.key(i) for i in range(self.record_count)]

    def initial_value(self, index: int) -> str:
        """A deterministic initial value for record ``index``."""
        rng = random.Random((index + 1) * 2654435761)
        return make_value(rng, self.value_size_bytes)

    def initial_items(self) -> Dict[str, str]:
        """Key → value mapping used to preload a cluster."""
        return {self.key(i): self.initial_value(i)
                for i in range(self.record_count)}

    def random_value(self) -> str:
        """A fresh value for an update operation."""
        return make_value(self._rng, self.value_size_bytes)
