"""Client-side request failover shared by the storage clients.

Both the Cassandra and ZooKeeper clients recover from an unresponsive
endpoint the same way: a per-request timeout fires, the request is re-sent
to the next endpoint in a rotation, and after a bounded number of re-sends
the caller gets a terminal error.  This mixin holds that machinery once so
the two stacks cannot drift apart.
"""

from __future__ import annotations

from typing import Any, Dict


class FailoverMixin:
    """Timeout-driven request failover over a rotation of endpoints.

    Mixed into client :class:`~repro.sim.node.Node` subclasses.  The host
    class provides:

    * ``self.scheduler`` and ``self._pending`` (request id → pending-request
      object with ``attempts``, ``rotation_index``, ``timeout_event`` and
      ``on_final`` attributes), plus ``self.retries`` /
      ``self.failed_requests`` counters;
    * :meth:`_redispatch` — re-send the request to the next endpoint (and
      re-arm the timeout via :meth:`_arm_request_timeout`);
    * :meth:`_failover_retries` — how many re-sends before giving up;
    * :meth:`_timeout_failure_response` — the error payload delivered to
      ``on_final`` when retries are exhausted.
    """

    def _arm_request_timeout(self, pending: Any, req_id: int,
                             timeout_ms: float) -> None:
        if timeout_ms > 0:
            pending.timeout_event = self.scheduler.schedule(
                timeout_ms, self._on_request_timeout, req_id)

    def _on_request_timeout(self, req_id: int) -> None:
        pending = self._pending.get(req_id)
        if pending is None:
            return
        pending.timeout_event = None
        if pending.attempts < self._failover_retries():
            pending.attempts += 1
            pending.rotation_index += 1
            self.retries += 1
            self._redispatch(pending)
            return
        self.failed_requests += 1
        del self._pending[req_id]
        if pending.on_final is not None:
            pending.on_final(self._timeout_failure_response(pending))

    @staticmethod
    def _settle(pending: Any) -> None:
        """Cancel the pending timeout once a final response arrived."""
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
            pending.timeout_event = None

    # -- host hooks ---------------------------------------------------------
    def _redispatch(self, pending: Any) -> None:
        raise NotImplementedError

    def _failover_retries(self) -> int:
        raise NotImplementedError

    def _timeout_failure_response(self, pending: Any) -> Dict[str, Any]:
        raise NotImplementedError
