"""Tests for the declarative fault scripts (events, schedules, scenarios)."""

import pytest

from repro.faults import FaultEvent, FaultSchedule, FaultScheduleBuilder, Scenario
from repro.faults.scenarios import get_scenario, scenario_names


class TestFaultEvent:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "explode", "replica:0")

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "crash", "replica:0")

    def test_rejects_missing_target(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "crash", "")

    def test_pair_actions_need_a_peer(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "partition", "region:a")

    def test_slow_needs_positive_factor(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "slow", "replica:0", value=0.0)


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule((
            FaultEvent(500.0, "recover", "n"),
            FaultEvent(100.0, "crash", "n"),
        ))
        assert [e.action for e in schedule] == ["crash", "recover"]
        assert schedule.duration_ms() == 500.0

    def test_shifted_moves_every_event(self):
        schedule = FaultSchedule((FaultEvent(100.0, "crash", "n"),))
        shifted = schedule.shifted(50.0)
        assert [e.at_ms for e in shifted] == [150.0]
        # The original is unchanged (immutability).
        assert [e.at_ms for e in schedule] == [100.0]

    def test_merged_combines_and_reorders(self):
        first = FaultSchedule((FaultEvent(300.0, "recover", "n"),))
        second = FaultSchedule((FaultEvent(100.0, "crash", "n"),))
        merged = first.merged(second)
        assert [e.at_ms for e in merged] == [100.0, 300.0]

    def test_builder_windows(self):
        schedule = (FaultScheduleBuilder()
                    .crash_window("n", at_ms=1_000.0, duration_ms=2_000.0)
                    .partition_window("region:a", "region:b", 500.0, 1_000.0)
                    .slow_window("m", 0.0, 100.0, factor=5.0)
                    .build())
        actions = [(e.at_ms, e.action) for e in schedule]
        assert actions == [
            (0.0, "slow"), (100.0, "restore_speed"),
            (500.0, "partition"), (1_000.0, "crash"),
            (1_500.0, "heal"), (3_000.0, "recover"),
        ]
        assert len(schedule) == 6

    def test_builder_flapping_produces_cycles(self):
        schedule = (FaultScheduleBuilder()
                    .flapping("region:a", "region:b", at_ms=0.0,
                              up_ms=200.0, down_ms=100.0, cycles=3)
                    .build())
        partitions = [e for e in schedule if e.action == "partition"]
        heals = [e for e in schedule if e.action == "heal"]
        assert len(partitions) == 3 and len(heals) == 3
        assert [e.at_ms for e in partitions] == [0.0, 300.0, 600.0]
        assert [e.at_ms for e in heals] == [100.0, 400.0, 700.0]


class TestScenarioLibrary:
    def test_registry_contains_the_documented_scenarios(self):
        names = scenario_names()
        for expected in ("replica-crash", "wan-partition", "flapping-link",
                         "slow-follower", "leader-crash",
                         "coordinator-crash-mid-commit",
                         "participant-crash-after-prepare"):
            assert expected in names

    def test_get_scenario_builds_with_overrides(self):
        scenario = get_scenario("replica-crash", at_ms=10.0, duration_ms=20.0)
        assert isinstance(scenario, Scenario)
        assert [e.at_ms for e in scenario.schedule] == [10.0, 30.0]
        assert [e.action for e in scenario.schedule] == ["crash", "recover"]

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError):
            get_scenario("meteor-strike")

    def test_coordinator_crash_mid_commit_is_a_crash_window(self):
        scenario = get_scenario("coordinator-crash-mid-commit",
                                at_ms=100.0, duration_ms=400.0)
        assert [(e.at_ms, e.action, e.target) for e in scenario.schedule] == [
            (100.0, "crash", "txn-coordinator:0"),
            (500.0, "recover", "txn-coordinator:0"),
        ]

    def test_participant_crash_after_prepare_targets_a_participant(self):
        scenario = get_scenario("participant-crash-after-prepare")
        assert [e.action for e in scenario.schedule] == ["crash", "recover"]
        assert all(e.target == "txn-participant:0"
                   for e in scenario.schedule)
        override = get_scenario("participant-crash-after-prepare",
                                target="txn-participant:2")
        assert all(e.target == "txn-participant:2"
                   for e in override.schedule)

    def test_every_scenario_builds_with_defaults(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            assert len(scenario.schedule) > 0
            assert scenario.description
