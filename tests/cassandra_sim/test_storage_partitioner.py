"""Tests for the LWW storage engine, versions, and the ring partitioner."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.cassandra_sim.partitioner import (
    RingPartitioner,
    node_tokens,
    token_in_range,
)
from repro.cassandra_sim.storage import ColumnarTable, LocalTable
from repro.cassandra_sim.versions import VersionedValue, resolve


class TestVersions:
    def test_newer_than_none(self):
        assert VersionedValue("a", (1.0, "n1", 1)).newer_than(None)

    def test_timestamp_ordering(self):
        older = VersionedValue("a", (1.0, "n1", 1))
        newer = VersionedValue("b", (2.0, "n1", 1))
        assert newer.newer_than(older)
        assert not older.newer_than(newer)

    def test_tie_broken_by_writer_then_sequence(self):
        a = VersionedValue("a", (1.0, "node-a", 1))
        b = VersionedValue("b", (1.0, "node-b", 1))
        assert b.newer_than(a)
        c = VersionedValue("c", (1.0, "node-b", 2))
        assert c.newer_than(b)

    def test_resolve_picks_newest(self):
        versions = [VersionedValue("a", (1.0, "x", 1)),
                    None,
                    VersionedValue("b", (3.0, "x", 1)),
                    VersionedValue("c", (2.0, "x", 1))]
        assert resolve(versions).value == "b"

    def test_resolve_all_missing(self):
        assert resolve([None, None]) is None

    def test_resolve_empty(self):
        assert resolve([]) is None


class TestLocalTable:
    def test_read_missing_returns_none(self):
        assert LocalTable().read("nope") is None

    def test_apply_then_read(self):
        table = LocalTable()
        version = VersionedValue("v", (1.0, "n", 1))
        assert table.apply("k", version)
        assert table.read("k") == version
        assert table.contains("k")
        assert len(table) == 1

    def test_stale_write_ignored(self):
        table = LocalTable()
        newer = VersionedValue("new", (5.0, "n", 1))
        older = VersionedValue("old", (1.0, "n", 1))
        table.apply("k", newer)
        assert not table.apply("k", older)
        assert table.read("k").value == "new"
        assert table.writes_ignored == 1

    def test_counters(self):
        table = LocalTable()
        table.read("a")
        table.apply("a", VersionedValue("v", (1.0, "n", 1)))
        assert table.reads == 1
        assert table.writes_applied == 1


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.sampled_from(["n1", "n2", "n3"]),
                          st.integers(min_value=0, max_value=10),
                          st.integers()),
                min_size=1, max_size=30))
def test_lww_register_converges_regardless_of_order(writes):
    """Applying the same writes in any order yields the same final value.

    Timestamps are unique in the simulator (per-coordinator sequence numbers
    break ties), so duplicate timestamps are collapsed before checking.
    """
    unique = {}
    for ts, writer, seq, value in writes:
        unique.setdefault((ts, writer, seq), value)
    versions = [VersionedValue(value, timestamp)
                for timestamp, value in unique.items()]
    forward, backward = LocalTable(), LocalTable()
    for version in versions:
        forward.apply("k", version)
    for version in reversed(versions):
        backward.apply("k", version)
    assert forward.read("k") == backward.read("k")
    assert forward.read("k") == resolve(versions)


class TestColumnarTable:
    def test_read_missing_returns_none(self):
        assert ColumnarTable().read("nope") is None

    def test_roundtrip_reconstructs_exact_versions(self):
        table = ColumnarTable()
        version = VersionedValue("v", (1.25, "n", 3))
        assert table.apply("k", version)
        got = table.read("k")
        assert got == version
        assert type(got.timestamp[0]) is float
        assert type(got.timestamp[2]) is int

    def test_tie_breaking_matches_tuple_order(self):
        table = ColumnarTable()
        table.apply("k", VersionedValue("a", (1.0, "node-a", 5)))
        assert table.apply("k", VersionedValue("b", (1.0, "node-b", 1)))
        assert not table.apply("k", VersionedValue("c", (1.0, "node-a", 9)))
        assert table.read("k").value == "b"

    def test_from_table_carries_rows_and_counters(self):
        source = LocalTable()
        source.apply("a", VersionedValue("x", (1.0, "n", 1)))
        source.apply("b", VersionedValue("y", (2.0, "n", 2)))
        source.read("a")
        columnar = ColumnarTable.from_table(source)
        assert len(columnar) == 2
        assert columnar.keys() == source.keys()
        assert columnar.reads == source.reads
        assert columnar.writes_applied == source.writes_applied
        assert list(columnar.items()) == list(source.items())


@given(st.lists(
    st.tuples(st.sampled_from(["k1", "k2", "k3", "k4"]),
              st.booleans(),
              st.floats(min_value=0, max_value=100, allow_nan=False),
              st.sampled_from(["n1", "n2", "n3"]),
              st.integers(min_value=0, max_value=10),
              st.integers()),
    max_size=60))
def test_columnar_table_equivalent_to_local_table(ops):
    """Both backends agree on every operation of any read/write sequence.

    This is the contract that lets clusters flip to columnar storage above
    the record threshold without changing any experiment's results: reads,
    apply outcomes (including LWW tie-breaking), lengths, key order and
    counters are pairwise identical at every step.
    """
    local, columnar = LocalTable(), ColumnarTable()
    for key, is_write, ts, writer, seq, value in ops:
        if is_write:
            version = VersionedValue(value, (ts, writer, seq))
            assert local.apply(key, version) == columnar.apply(key, version)
        else:
            assert local.read(key) == columnar.read(key)
        assert local.contains(key) == columnar.contains(key)
        assert local.get(key) == columnar.get(key)
    assert len(local) == len(columnar)
    assert local.keys() == columnar.keys()
    assert list(local.items()) == list(columnar.items())
    for counter in ("reads", "writes_applied", "writes_ignored"):
        assert getattr(local, counter) == getattr(columnar, counter)


class TestPartitioner:
    def test_preference_list_size(self):
        partitioner = RingPartitioner(["a", "b", "c"], replication_factor=3)
        assert sorted(partitioner.replicas_for("key1")) == ["a", "b", "c"]

    def test_rf_smaller_than_cluster(self):
        partitioner = RingPartitioner(["a", "b", "c", "d", "e"],
                                      replication_factor=3)
        replicas = partitioner.replicas_for("some-key")
        assert len(replicas) == 3
        assert len(set(replicas)) == 3

    def test_deterministic(self):
        p1 = RingPartitioner(["a", "b", "c"], 2)
        p2 = RingPartitioner(["a", "b", "c"], 2)
        for i in range(50):
            assert p1.replicas_for(f"k{i}") == p2.replicas_for(f"k{i}")

    def test_primary_is_first_replica(self):
        partitioner = RingPartitioner(["a", "b", "c", "d"], 2)
        key = "user42"
        assert partitioner.primary_for(key) == partitioner.replicas_for(key)[0]

    def test_is_replica(self):
        partitioner = RingPartitioner(["a", "b", "c"], 3)
        assert partitioner.is_replica("a", "anything")

    def test_rf_zero_rejected(self):
        with pytest.raises(ValueError):
            RingPartitioner(["a"], 0)

    def test_rf_larger_than_cluster_rejected(self):
        with pytest.raises(ValueError):
            RingPartitioner(["a", "b"], 3)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            RingPartitioner([], 1)

    def test_distribution_roughly_balanced(self):
        partitioner = RingPartitioner([f"n{i}" for i in range(5)],
                                      replication_factor=1, vnodes_per_node=32)
        counts = {f"n{i}": 0 for i in range(5)}
        for i in range(2000):
            counts[partitioner.primary_for(f"key-{i}")] += 1
        for count in counts.values():
            assert count > 100  # no node owns a vanishing share

    @given(st.text(min_size=1, max_size=40))
    def test_replicas_unique_for_any_key(self, key):
        partitioner = RingPartitioner(["a", "b", "c", "d"], 3)
        replicas = partitioner.replicas_for(key)
        assert len(replicas) == len(set(replicas)) == 3

    def test_preference_list_is_immutable(self):
        """The cached entry is a tuple: callers cannot corrupt the cache."""
        partitioner = RingPartitioner(["a", "b", "c", "d"], 2)
        replicas = partitioner.replicas_for("k")
        assert isinstance(replicas, tuple)
        with pytest.raises(TypeError):
            replicas[0] = "evil"
        assert partitioner.replicas_for("k") == replicas

    def test_vnodes_zero_rejected(self):
        with pytest.raises(ValueError):
            RingPartitioner(["a"], 1, vnodes_per_node=0)

    def test_token_in_range_wraps(self):
        assert token_in_range(5, 3, 10)
        assert not token_in_range(10, 3, 10)  # half-open
        assert token_in_range(1, 2**63, 10)   # wrapping range
        assert token_in_range(2**63, 2**63, 10)


KEYS = [f"user{i}" for i in range(300)]


def ring_fingerprint(partitioner):
    digest = hashlib.sha256()
    for token, node in partitioner.token_layout():
        digest.update(f"{token}:{node}\n".encode())
    return digest.hexdigest()


class TestRingEdits:
    def make(self, n=5, rf=3, vnodes=8):
        return RingPartitioner([f"n{i}" for i in range(n)], rf,
                               vnodes_per_node=vnodes)

    def test_add_node_bumps_version_and_layout(self):
        partitioner = self.make()
        before = partitioner.token_layout()
        change = partitioner.add_node("n5")
        assert partitioner.version == 1
        assert partitioner.contains("n5")
        assert "n5" in partitioner.node_names
        after = partitioner.token_layout()
        assert set(after) == set(before) | {
            (token, "n5") for token in node_tokens("n5", 8)}
        assert change.kind == "join" and change.node == "n5"

    def test_layout_independent_of_join_order(self):
        """The determinism contract: membership set ⇒ layout, not history."""
        a = RingPartitioner(["n0", "n1", "n2"], 2)
        a.add_node("n3")
        a.add_node("n4")
        b = RingPartitioner(["n4", "n2", "n0"], 2)
        b.add_node("n1")
        b.add_node("n3")
        assert a.token_layout() == b.token_layout()
        for key in KEYS:
            assert a.replicas_for(key) == b.replicas_for(key)

    def test_same_edit_schedule_same_plans(self):
        """Same schedule ⇒ identical layouts and streaming plans."""
        runs = []
        for _ in range(2):
            partitioner = self.make()
            plans = [partitioner.add_node("n5"),
                     partitioner.decommission("n1"),
                     partitioner.remove_node("n3")]
            runs.append((partitioner.token_layout(),
                         tuple(p.tasks for p in plans)))
        assert runs[0] == runs[1]

    def test_ring_golden_fingerprint(self):
        """Committed layout hash: any change to the token function, the
        vnode naming scheme, or the sort order shows up here."""
        partitioner = self.make(n=4, rf=2, vnodes=4)
        partitioner.add_node("n4", vnodes=2)
        partitioner.decommission("n0")
        assert ring_fingerprint(partitioner) == (
            "21320a591856505fa6434308a5dd9a0ec69a867999c4036419f7aa2f20f5d40b")

    def test_join_streams_exactly_the_gained_ranges(self):
        partitioner = self.make()
        change = partitioner.plan_join("n5")
        partitioner.begin(change)
        partitioner.commit(change)
        for key in KEYS:
            owners = partitioner.replicas_for(key)
            if "n5" not in owners:
                continue
            matching = [task for task in change.tasks
                        if task.target == "n5" and task.contains_key(key)]
            assert len(matching) == 1, key

    def test_no_task_targets_an_existing_owner(self):
        partitioner = self.make()
        change = partitioner.plan_join("n5")
        for task in change.tasks:
            # The target must not already own the range's keys.
            for key in KEYS:
                if not task.contains_key(key):
                    continue
                assert task.target not in partitioner.replicas_for(key)

    def test_decommission_sources_from_leaving_node(self):
        partitioner = self.make()
        change = partitioner.plan_decommission("n2")
        assert change.tasks  # n2 owned something
        assert all(task.source == "n2" for task in change.tasks)

    def test_remove_sources_from_survivors(self):
        partitioner = self.make()
        change = partitioner.plan_remove("n2")
        assert change.tasks
        assert all(task.source != "n2" for task in change.tasks)

    def test_pending_replicas_exposed_between_begin_and_commit(self):
        partitioner = self.make()
        change = partitioner.plan_join("n5")
        assert partitioner.pending_replicas_for(KEYS[0]) == ()
        partitioner.begin(change)
        gaining = [key for key in KEYS
                   if partitioner.pending_replicas_for(key) == ("n5",)]
        assert gaining  # some keys move to the joiner
        for key in gaining:
            assert "n5" not in partitioner.replicas_for(key)  # not yet serving
        partitioner.commit(change)
        for key in gaining:
            assert "n5" in partitioner.replicas_for(key)
        assert partitioner.pending_replicas_for(KEYS[0]) == ()

    def test_abort_leaves_ring_untouched(self):
        partitioner = self.make()
        before = partitioner.token_layout()
        change = partitioner.plan_join("n5")
        partitioner.begin(change)
        partitioner.abort(change)
        assert partitioner.token_layout() == before
        assert partitioner.version == 0
        assert not partitioner.contains("n5")

    def test_stale_plan_rejected(self):
        partitioner = self.make()
        stale = partitioner.plan_join("n5")
        partitioner.add_node("n6")
        with pytest.raises(ValueError):
            partitioner.begin(stale)

    def test_concurrent_changes_rejected(self):
        partitioner = self.make()
        partitioner.begin(partitioner.plan_join("n5"))
        with pytest.raises(RuntimeError):
            partitioner.plan_join("n6")

    def test_removal_below_rf_rejected(self):
        partitioner = RingPartitioner(["a", "b", "c"], 3)
        with pytest.raises(ValueError):
            partitioner.plan_decommission("a")

    def test_duplicate_join_rejected(self):
        partitioner = self.make()
        with pytest.raises(ValueError):
            partitioner.plan_join("n0")

    def test_remove_unknown_node_rejected(self):
        partitioner = self.make()
        with pytest.raises(ValueError):
            partitioner.plan_remove("ghost")

    def test_cache_invalidated_by_commit(self):
        partitioner = RingPartitioner([f"n{i}" for i in range(6)], 2,
                                      vnodes_per_node=16)
        before = {key: partitioner.replicas_for(key) for key in KEYS}
        partitioner.decommission("n4")
        moved = 0
        for key in KEYS:
            owners = partitioner.replicas_for(key)
            assert "n4" not in owners
            assert len(owners) == len(set(owners)) == 2
            if owners != before[key]:
                moved += 1
        assert moved > 0


@given(st.lists(st.sampled_from(["join", "decommission", "remove"]),
                min_size=1, max_size=6),
       st.integers(min_value=0, max_value=10_000))
def test_every_key_keeps_exactly_rf_replicas_across_any_edit_sequence(
        kinds, key_salt):
    """The RF invariant: any legal rebalance schedule preserves, for every
    key, a preference list of exactly ``replication_factor`` distinct live
    nodes (and never a node that has left the ring)."""
    partitioner = RingPartitioner([f"seed{i}" for i in range(4)], 3,
                                  vnodes_per_node=4)
    keys = [f"k{key_salt}-{i}" for i in range(40)]
    next_id = 0
    for kind in kinds:
        if kind == "join" or len(partitioner.node_names) - 1 < 3:
            partitioner.add_node(f"added{next_id}")
            next_id += 1
        elif kind == "decommission":
            partitioner.decommission(sorted(partitioner.node_names)[0])
        else:
            partitioner.remove_node(sorted(partitioner.node_names)[-1])
        live = set(partitioner.node_names)
        for key in keys:
            owners = partitioner.replicas_for(key)
            assert len(owners) == len(set(owners)) == 3
            assert set(owners) <= live
