"""Tests for the YCSB request distributions."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.distributions import (
    LatestKeyChooser,
    ScrambledZipfianKeyChooser,
    UniformKeyChooser,
    ZipfianKeyChooser,
    make_key_chooser,
)


class TestFactory:
    def test_known_names(self):
        rng = random.Random(0)
        assert isinstance(make_key_chooser("uniform", 10, rng),
                          UniformKeyChooser)
        assert isinstance(make_key_chooser("zipfian", 10, rng),
                          ZipfianKeyChooser)
        assert isinstance(make_key_chooser("latest", 10, rng),
                          LatestKeyChooser)
        assert isinstance(make_key_chooser("scrambled_zipfian", 10, rng),
                          ScrambledZipfianKeyChooser)

    def test_case_insensitive(self):
        assert isinstance(make_key_chooser("Zipfian", 10, random.Random(0)),
                          ZipfianKeyChooser)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_key_chooser("exponential", 10, random.Random(0))

    def test_zero_records_rejected(self):
        for cls in (UniformKeyChooser, ZipfianKeyChooser, LatestKeyChooser):
            with pytest.raises(ValueError):
                cls(0, random.Random(0))


class TestBounds:
    @given(st.sampled_from(["uniform", "zipfian", "latest",
                            "scrambled_zipfian"]),
           st.integers(min_value=1, max_value=500),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60)
    def test_indices_always_in_range(self, name, record_count, seed):
        chooser = make_key_chooser(name, record_count, random.Random(seed))
        for _ in range(50):
            index = chooser.next_index()
            assert 0 <= index < record_count


class TestSkew:
    def test_zipfian_head_is_popular(self):
        chooser = ZipfianKeyChooser(1000, random.Random(1))
        counts = Counter(chooser.next_index() for _ in range(20_000))
        head_share = sum(counts[i] for i in range(10)) / 20_000
        assert head_share > 0.35          # the hottest 1% gets >35% of requests

    def test_uniform_is_not_skewed(self):
        chooser = UniformKeyChooser(1000, random.Random(1))
        counts = Counter(chooser.next_index() for _ in range(20_000))
        head_share = sum(counts[i] for i in range(10)) / 20_000
        assert head_share < 0.05

    def test_latest_favours_recent_records(self):
        chooser = LatestKeyChooser(1000, random.Random(1))
        counts = Counter(chooser.next_index() for _ in range(20_000))
        recent_share = sum(counts[i] for i in range(990, 1000)) / 20_000
        assert recent_share > 0.35

    def test_scrambled_zipfian_spreads_hot_keys(self):
        chooser = ScrambledZipfianKeyChooser(1000, random.Random(1))
        counts = Counter(chooser.next_index() for _ in range(20_000))
        # Still skewed overall, but the head is not concentrated on index 0..9.
        head_share = sum(counts[i] for i in range(10)) / 20_000
        assert head_share < 0.2
        assert counts.most_common(1)[0][1] / 20_000 > 0.05

    def test_determinism_given_seeded_rng(self):
        a = ZipfianKeyChooser(100, random.Random(7))
        b = ZipfianKeyChooser(100, random.Random(7))
        assert [a.next_index() for _ in range(20)] == \
            [b.next_index() for _ in range(20)]

    def test_latest_notify_insert_keeps_indices_valid(self):
        chooser = LatestKeyChooser(50, random.Random(2))
        for i in range(200):
            chooser.notify_insert(i % 50)
            assert 0 <= chooser.next_index() < 50
