#!/usr/bin/env python
"""An online wallet tracking transaction confirmations (Section 4.5).

The merchant submits a payment and watches it harden: the Correctable's
preliminary views report the mempool acceptance and each confirmation
milestone, and the final view arrives once the transaction is six blocks deep
(irrevocable with high probability).  The merchant ships the goods early for
small amounts and waits for finality for large ones — the same
application-driven choice as the ticket shop, with more than two views.

Run with::

    python examples/bitcoin_wallet.py
"""

from repro.bindings.blockchain import BlockchainBinding, transfer
from repro.blockchain_sim.network import BlockchainConfig, BlockchainNetwork
from repro.core import CorrectableClient
from repro.sim.scheduler import Scheduler


def main() -> None:
    scheduler = Scheduler()
    network = BlockchainNetwork(scheduler,
                                BlockchainConfig(block_interval_ms=1_500.0,
                                                 fork_probability=0.08))
    network.start()
    client = CorrectableClient(BlockchainBinding(network))

    def track(label: str, amount: float, ship_at_confirmations: int) -> None:
        shipped = {"done": False}

        def on_view(view) -> None:
            confirmations = view.value["confirmations"]
            print(f"[{scheduler.now():8.0f} ms] {label}: "
                  f"{view.consistency.name:<12} ({confirmations} confirmations)")
            if not shipped["done"] and confirmations >= ship_at_confirmations:
                shipped["done"] = True
                print(f"[{scheduler.now():8.0f} ms] {label}: shipping goods "
                      f"after {confirmations} confirmation(s)")

        correctable = client.invoke(transfer("alice", "merchant", amount))
        correctable.set_callbacks(on_update=on_view, on_final=on_view)

    print("small purchase: ship after 1 confirmation")
    track("espresso (0.0001 BTC)", 0.0001, ship_at_confirmations=1)
    print("large purchase: wait for finality (6 confirmations)")
    track("car (1.2 BTC)", 1.2, ship_at_confirmations=6)

    # Run 30 (simulated) seconds of mining.
    scheduler.run(until=30_000.0)
    network.stop()
    print(f"\nchain height: {network.chain.height} blocks "
          f"({network.chain.orphaned_blocks} orphaned)")
    print(f"merchant balance on chain: "
          f"{network.chain.balance('merchant'):.4f} BTC")


if __name__ == "__main__":
    main()
