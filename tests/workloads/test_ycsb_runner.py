"""Tests for YCSB workload specs, datasets, and the closed-loop runner."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.scheduler import Scheduler
from repro.workloads.records import Dataset, make_value
from repro.workloads.runner import ClosedLoopRunner
from repro.workloads.ycsb import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    OperationGenerator,
    WorkloadSpec,
    workload_by_name,
)


class TestDataset:
    def test_keys_and_values(self):
        dataset = Dataset(record_count=10, value_size_bytes=50)
        assert dataset.key(0) == "user0"
        assert len(dataset.keys()) == 10
        assert len(dataset.initial_value(3)) == 50

    def test_initial_values_deterministic(self):
        a = Dataset(record_count=5)
        b = Dataset(record_count=5)
        assert a.initial_items() == b.initial_items()

    def test_out_of_range_key_rejected(self):
        with pytest.raises(IndexError):
            Dataset(record_count=5).key(5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Dataset(record_count=0)
        with pytest.raises(ValueError):
            make_value(random.Random(0), 0)

    def test_custom_prefix(self):
        dataset = Dataset(record_count=3, key_prefix="profile:")
        assert dataset.key(2) == "profile:2"

    def test_make_value_size(self):
        assert len(make_value(random.Random(0), 100)) == 100


class TestWorkloadSpecs:
    def test_core_workload_mixes(self):
        assert WORKLOAD_A.read_proportion == 0.5
        assert WORKLOAD_B.read_proportion == 0.95
        assert WORKLOAD_C.read_proportion == 1.0

    def test_lookup_by_name(self):
        assert workload_by_name("a") is WORKLOAD_A
        assert workload_by_name("C") is WORKLOAD_C
        with pytest.raises(KeyError):
            workload_by_name("Z")

    def test_invalid_proportions_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", read_proportion=0.5, update_proportion=0.2)

    def test_with_distribution_preserves_mix(self):
        spec = WORKLOAD_A.with_distribution("latest")
        assert spec.request_distribution == "latest"
        assert spec.read_proportion == WORKLOAD_A.read_proportion


class TestOperationGenerator:
    def test_read_only_workload_generates_only_reads(self):
        generator = OperationGenerator(WORKLOAD_C, Dataset(record_count=10),
                                       random.Random(1))
        ops = [generator.next_operation() for _ in range(100)]
        assert all(op[0] == "read" for op in ops)
        assert all(op[2] is None for op in ops)

    def test_mixed_workload_ratio_close_to_spec(self):
        generator = OperationGenerator(WORKLOAD_A, Dataset(record_count=100),
                                       random.Random(2))
        ops = [generator.next_operation() for _ in range(2000)]
        reads = sum(1 for op in ops if op[0] == "read")
        assert 0.45 < reads / 2000 < 0.55
        assert generator.reads_generated + generator.updates_generated == 2000

    def test_update_carries_value(self):
        generator = OperationGenerator(WORKLOAD_A, Dataset(record_count=10),
                                       random.Random(3))
        values = [op[2] for op in (generator.next_operation()
                                   for _ in range(50)) if op[0] == "update"]
        assert values and all(isinstance(v, str) and len(v) == 100
                              for v in values)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20)
    def test_keys_belong_to_dataset(self, seed):
        dataset = Dataset(record_count=25)
        generator = OperationGenerator(WORKLOAD_B, dataset, random.Random(seed))
        keys = set(dataset.keys())
        for _ in range(50):
            _, key, _ = generator.next_operation()
            assert key in keys


class _InstantIssue:
    """Completes every operation after a fixed simulated delay."""

    def __init__(self, scheduler, latency_ms=10.0):
        self.scheduler = scheduler
        self.latency_ms = latency_ms
        self.issued = 0

    def __call__(self, op_type, key, value, done):
        self.issued += 1
        self.scheduler.schedule(self.latency_ms, done,
                                {"final_latency_ms": self.latency_ms,
                                 "preliminary_latency_ms": self.latency_ms / 2,
                                 "diverged": False})


class TestClosedLoopRunner:
    def _make_runner(self, scheduler, issue, threads=2, duration=1000.0,
                     warmup=200.0, cooldown=100.0, think=0.0):
        dataset = Dataset(record_count=10)
        return ClosedLoopRunner(
            scheduler=scheduler, issue=issue,
            make_generator=lambda i: OperationGenerator(
                WORKLOAD_C, dataset, random.Random(i)),
            threads=threads, duration_ms=duration, warmup_ms=warmup,
            cooldown_ms=cooldown, think_time_ms=think, label="test")

    def test_throughput_matches_closed_loop_arithmetic(self):
        scheduler = Scheduler()
        issue = _InstantIssue(scheduler, latency_ms=10.0)
        runner = self._make_runner(scheduler, issue, threads=2)
        result = runner.run()
        # 2 threads, 10 ms per op -> 200 ops/s; the measured window is 700 ms.
        assert result.throughput_ops_per_sec() == pytest.approx(200, rel=0.1)
        assert result.final_latency.mean() == pytest.approx(10.0)
        assert result.preliminary_latency.mean() == pytest.approx(5.0)

    def test_warmup_and_cooldown_excluded(self):
        scheduler = Scheduler()
        issue = _InstantIssue(scheduler)
        runner = self._make_runner(scheduler, issue)
        result = runner.run()
        assert result.measured_ops < result.total_ops

    def test_think_time_reduces_throughput(self):
        results = {}
        for think in (0.0, 40.0):
            scheduler = Scheduler()
            issue = _InstantIssue(scheduler)
            runner = self._make_runner(scheduler, issue, think=think)
            results[think] = runner.run().throughput_ops_per_sec()
        assert results[40.0] < results[0.0]

    def test_divergence_recorded(self):
        scheduler = Scheduler()
        toggler = {"n": 0}

        def issue(op_type, key, value, done):
            toggler["n"] += 1
            diverged = toggler["n"] % 4 == 0
            scheduler.schedule(10, done, {"final_latency_ms": 10,
                                          "diverged": diverged})

        runner = self._make_runner(scheduler, issue, threads=1)
        result = runner.run()
        assert 0 < result.divergence.divergence_percent() < 100

    def test_validation_errors(self):
        scheduler = Scheduler()
        issue = _InstantIssue(scheduler)
        with pytest.raises(ValueError):
            self._make_runner(scheduler, issue, threads=0)
        with pytest.raises(ValueError):
            self._make_runner(scheduler, issue, duration=100.0, warmup=80.0,
                              cooldown=30.0)

    def test_summary_fields(self):
        scheduler = Scheduler()
        runner = self._make_runner(scheduler, _InstantIssue(scheduler))
        result = runner.run()
        summary = result.summary()
        assert {"label", "throughput_ops_s", "final_mean_ms",
                "divergence_pct"} <= set(summary)
