"""Figure 11: speculation case studies — ad serving and Twissandra.

Both applications perform a two-step read (fetch a reference list, then fetch
the referenced objects).  The baseline reads the reference list with strong
consistency and only then fetches the objects; the Correctable Cassandra
variant reads the reference list with ICG and speculatively prefetches on the
preliminary view.  Shapes to reproduce:

* CC2 cuts end-to-end latency substantially (the paper reports 100 ms → 60 ms
  for the ads system before saturation, ≈40 %);
* the throughput cost is small (≈6 % for the ads system);
* Twissandra shows the same effect at higher absolute latencies because its
  replicas (Virginia / N. California / Oregon) are farther from the client;
* misspeculation stays rare (divergence < 1 %).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.apps.ads import AdServingSystem
from repro.apps.datasets import AdsDataset, TwissandraDataset
from repro.apps.twissandra import Twissandra
from repro.bench.common import cassandra_config_for, make_generator_factory
from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.bindings.cassandra import CassandraBinding
from repro.cassandra_sim.cluster import CassandraCluster
from repro.core.client import CorrectableClient
from repro.metrics.summary import format_table
from repro.sim.environment import SimEnvironment
from repro.sim.rand import derive_rng
from repro.sim.topology import Region, replica_regions_twissandra
from repro.workloads.records import Dataset
from repro.workloads.runner import ClosedLoopRunner
from repro.workloads.ycsb import workload_by_name

DEFAULT_APPS = ("ads", "twissandra")
DEFAULT_SYSTEMS = ("C2", "CC2")
DEFAULT_WORKLOADS = ("A", "B", "C")
DEFAULT_THREADS = (1, 3)

#: Remote contact map for load clients in the ads deployment (FRK/IRL/VRG).
_ADS_CONTACTS = {Region.IRL: Region.FRK, Region.FRK: Region.VRG,
                 Region.VRG: Region.IRL}
#: The Twissandra deployment places replicas in VRG/NCA/ORE; all load clients
#: sit in IRL-adjacent regions and connect to a remote replica.
_TWISSANDRA_CONTACTS = {Region.IRL: Region.VRG, Region.NCA: Region.ORE,
                        Region.ORE: Region.NCA}


class _AppDeployment:
    """One app wired to a preloaded cluster with per-region app instances."""

    def __init__(self, app_name: str, seed: int,
                 profile_count: int, ref_count: int) -> None:
        self.app_name = app_name
        self.env = SimEnvironment(seed=seed)
        config = cassandra_config_for("CC2")
        if app_name == "ads":
            self.dataset = AdsDataset(profile_count=profile_count,
                                      ad_count=ref_count, seed=seed)
            replica_regions = None
            contacts = _ADS_CONTACTS
            key_prefix = "profile:"
        elif app_name == "twissandra":
            self.dataset = TwissandraDataset(user_count=profile_count,
                                             tweet_count=ref_count, seed=seed)
            replica_regions = replica_regions_twissandra()
            contacts = _TWISSANDRA_CONTACTS
            key_prefix = "timeline:"
        else:
            raise ValueError(f"unknown application {app_name!r}")
        self.cluster = CassandraCluster(self.env, config,
                                        replica_regions=replica_regions)
        self.cluster.preload(self.dataset.initial_items())
        # A key-only Dataset drives the YCSB generator over app keys.
        record_count = (profile_count if app_name == "ads"
                        else self.dataset.user_count)
        self.key_dataset = Dataset(record_count=record_count,
                                   key_prefix=key_prefix, seed=seed)
        self.apps: Dict[str, object] = {}
        for region, contact in contacts.items():
            node = self.cluster.add_client(f"{app_name}-client-{region}",
                                           region=region,
                                           contact_region=contact)
            client = CorrectableClient(CassandraBinding(node))
            if app_name == "ads":
                self.apps[region] = AdServingSystem(
                    client, self.dataset, rng=derive_rng(seed, f"ads-{region}"))
            else:
                self.apps[region] = Twissandra(
                    client, self.dataset, rng=derive_rng(seed, f"tw-{region}"))
        self.measured_region = Region.IRL

    def issue_function(self, region: str, speculate: bool) -> Callable:
        app = self.apps[region]

        def _issue(op_type: str, key: str, value: Optional[str], done) -> None:
            if op_type == "read":
                if self.app_name == "ads":
                    app.fetch_ads_by_user_id(
                        key, lambda info: done(
                            {"final_latency_ms": info["latency_ms"]}),
                        speculate=speculate)
                else:
                    app.get_timeline(
                        key, lambda info: done(
                            {"final_latency_ms": info["latency_ms"]}),
                        speculate=speculate)
            else:
                if self.app_name == "ads":
                    app.update_profile(key, lambda info: done(
                        {"final_latency_ms": info["latency_ms"]}))
                else:
                    app.post_tweet(key, value or "hello world",
                                   lambda info: done(
                                       {"final_latency_ms": info["latency_ms"]}))

        return _issue


def build_fig11_points(apps: Iterable[str] = DEFAULT_APPS,
                       systems: Iterable[str] = DEFAULT_SYSTEMS,
                       workloads: Iterable[str] = DEFAULT_WORKLOADS,
                       thread_counts: Sequence[int] = DEFAULT_THREADS,
                       duration_ms: float = 6_000.0,
                       warmup_ms: float = 1_500.0,
                       cooldown_ms: float = 1_000.0, profile_count: int = 300,
                       ref_count: int = 600,
                       seed: int = 42) -> List[SweepPoint]:
    """One sweep point per (app, workload, system, thread count) cell."""
    return make_points("fig11", (
        ({"app": app_name, "workload": workload_name, "system": system,
          "threads": threads},
         dict(app=app_name, workload=workload_name, system=system,
              threads=threads, duration_ms=duration_ms, warmup_ms=warmup_ms,
              cooldown_ms=cooldown_ms, profile_count=profile_count,
              ref_count=ref_count, seed=seed))
        for app_name in apps
        for workload_name in workloads
        for system in systems
        for threads in thread_counts))


def run_fig11_point(point: SweepPoint) -> Dict:
    """Run one (app, workload, system, thread count) deployment."""
    kwargs = point.kwargs
    app_name, workload_name = kwargs["app"], kwargs["workload"]
    system, threads, seed = kwargs["system"], kwargs["threads"], kwargs["seed"]
    spec = workload_by_name(workload_name)
    speculate = system.startswith("CC")
    deployment = _AppDeployment(app_name, seed, kwargs["profile_count"],
                                kwargs["ref_count"])
    runners = {}
    for region in deployment.apps:
        runner = ClosedLoopRunner(
            scheduler=deployment.env.scheduler,
            issue=deployment.issue_function(region, speculate),
            make_generator=make_generator_factory(
                spec, deployment.key_dataset, seed,
                f"{app_name}-{system}-{region}"),
            threads=threads, duration_ms=kwargs["duration_ms"],
            warmup_ms=kwargs["warmup_ms"], cooldown_ms=kwargs["cooldown_ms"],
            label=f"{app_name}-{system}-{workload_name}-{region}")
        runners[region] = runner
    for runner in runners.values():
        runner.start()
    end = max(r.end_time for r in runners.values())
    deployment.env.run(until=end + 120_000.0)
    measured = runners[deployment.measured_region].result
    measured_app = deployment.apps[deployment.measured_region]
    stats = getattr(measured_app, "speculation_stats")
    return {
        "app": app_name,
        "workload": workload_name,
        "system": system,
        "threads_per_client": threads,
        "throughput_ops_s": measured.throughput_ops_per_sec(),
        "latency_mean_ms": measured.final_latency.mean(),
        "latency_p99_ms": measured.final_latency.p99(),
        "read_latency_mean_ms": measured.read_latency.mean(),
        "misspeculation_pct":
            100.0 * (1.0 - stats.hit_rate())
            if stats.total_closed else 0.0,
        "measured_ops": measured.measured_ops,
    }


def run_fig11(apps: Iterable[str] = DEFAULT_APPS,
              systems: Iterable[str] = DEFAULT_SYSTEMS,
              workloads: Iterable[str] = DEFAULT_WORKLOADS,
              thread_counts: Sequence[int] = DEFAULT_THREADS,
              duration_ms: float = 6_000.0, warmup_ms: float = 1_500.0,
              cooldown_ms: float = 1_000.0, profile_count: int = 300,
              ref_count: int = 600, seed: int = 42,
              jobs: JobsSpec = 1) -> List[Dict]:
    """Regenerate the Figure 11 latency-vs-throughput series for both apps.

    ``C2`` denotes the no-speculation baseline (strong reads only), ``CC2``
    the ICG + speculation variant.  The measured client is in Ireland.
    """
    points = build_fig11_points(
        apps=apps, systems=systems, workloads=workloads,
        thread_counts=thread_counts, duration_ms=duration_ms,
        warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
        profile_count=profile_count, ref_count=ref_count, seed=seed)
    return run_sweep(points, run_fig11_point, jobs=jobs).records()


def format_fig11(records: List[Dict]) -> str:
    rows = [[r["app"], r["workload"], r["system"], r["threads_per_client"],
             r["throughput_ops_s"], r["read_latency_mean_ms"],
             r["latency_mean_ms"], r["misspeculation_pct"]] for r in records]
    return format_table(
        ["app", "workload", "system", "threads/client", "throughput (ops/s)",
         "read latency (ms)", "overall latency (ms)", "misspeculation (%)"],
        rows,
        title="Figure 11 — application-level speculation (baseline C2 vs CC2)")
