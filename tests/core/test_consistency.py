"""Tests for consistency levels and their ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.core.consistency import (
    CACHED,
    CAUSAL,
    STRONG,
    WEAK,
    ConsistencyLevel,
    sort_levels,
    strongest,
    weakest,
)


class TestPredefinedLevels:
    def test_canonical_ordering(self):
        assert CACHED < WEAK < CAUSAL < STRONG

    def test_strong_is_strongest(self):
        assert strongest([WEAK, STRONG, CAUSAL]) is STRONG

    def test_cached_is_weakest(self):
        assert weakest([STRONG, CACHED, WEAK]) is CACHED

    def test_names(self):
        assert WEAK.name == "weak"
        assert STRONG.name == "strong"
        assert str(CAUSAL) == "causal"

    def test_comparison_operators(self):
        assert WEAK <= WEAK
        assert STRONG >= CAUSAL
        assert not (STRONG < WEAK)
        assert STRONG > WEAK

    def test_equality_and_hash(self):
        assert WEAK == ConsistencyLevel("weak", 10)
        assert hash(WEAK) == hash(ConsistencyLevel("weak", 10))
        assert WEAK != STRONG


class TestRegistry:
    def test_register_returns_same_instance(self):
        level = ConsistencyLevel.register("weak", 10)
        assert level is WEAK

    def test_register_conflicting_strength_rejected(self):
        with pytest.raises(ValueError):
            ConsistencyLevel.register("weak", 99)

    def test_register_new_level(self):
        level = ConsistencyLevel.register("session", 15)
        assert WEAK < level < CAUSAL
        assert ConsistencyLevel.by_name("session") is level

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            ConsistencyLevel.by_name("does-not-exist")

    def test_known_levels_sorted(self):
        levels = ConsistencyLevel.known_levels()
        strengths = [lv.strength for lv in levels]
        assert strengths == sorted(strengths)
        assert WEAK in levels and STRONG in levels


class TestSortLevels:
    def test_sorts_weakest_first(self):
        assert sort_levels([STRONG, WEAK]) == [WEAK, STRONG]

    def test_removes_duplicates(self):
        assert sort_levels([WEAK, WEAK, STRONG, WEAK]) == [WEAK, STRONG]

    def test_empty_strongest_raises(self):
        with pytest.raises(ValueError):
            strongest([])

    def test_empty_weakest_raises(self):
        with pytest.raises(ValueError):
            weakest([])

    def test_single_level(self):
        assert strongest([WEAK]) is WEAK
        assert weakest([WEAK]) is WEAK


@given(st.lists(st.sampled_from([CACHED, WEAK, CAUSAL, STRONG]), min_size=1))
def test_sort_levels_is_monotone(levels):
    ordered = sort_levels(levels)
    strengths = [lv.strength for lv in ordered]
    assert strengths == sorted(strengths)
    assert len(set(ordered)) == len(ordered)


@given(st.lists(st.sampled_from([CACHED, WEAK, CAUSAL, STRONG]), min_size=1))
def test_strongest_weakest_bracket_all(levels):
    top, bottom = strongest(levels), weakest(levels)
    for level in levels:
        assert bottom <= level <= top
