"""Measurement utilities shared by tests, examples, and benchmark harnesses."""

from repro.metrics.latency import HistogramRecorder, LatencyRecorder
from repro.metrics.bandwidth import BandwidthProbe
from repro.metrics.divergence import DivergenceCounter
from repro.metrics.queueing import AdmissionStats
from repro.metrics.summary import format_table, format_row

__all__ = [
    "AdmissionStats",
    "HistogramRecorder",
    "LatencyRecorder",
    "BandwidthProbe",
    "DivergenceCounter",
    "format_table",
    "format_row",
]
