"""Figure 16 — 2PC transactions with speculative PREPARED views under faults."""

import pytest

from repro.bench.fig16_txn import (
    DEFAULT_SCENARIOS,
    DEFAULT_TXN_SIZES,
    build_fig16_points,
    format_fig16,
    run_fig16,
    run_fig16_point,
)


@pytest.mark.benchmark(group="fig16")
def test_fig16_txn(benchmark, save_report):
    records = benchmark.pedantic(
        lambda: run_fig16(seed=42), rounds=1, iterations=1)
    save_report("fig16_txn", format_fig16(records))

    assert len(records) == len(DEFAULT_SCENARIOS) * len(DEFAULT_TXN_SIZES)

    for record in records:
        cell = (record["scenario"], record["keys_per_txn"])
        # Every submitted transaction reached a known outcome: the client
        # never timed out a transaction into an unknown state, and
        # run_fig16_point already raised if the atomicity audit failed.
        assert record["unresolved"] == 0, cell
        assert (record["committed"] + record["aborted"]
                == record["submitted"]), cell
        assert record["committed"] > 0, cell
        assert record["commit_mean_ms"] > 0, cell
        # The speculative PREPARED view never lied in these runs: every
        # transaction whose participants all voted yes went on to commit.
        assert record["prepared_views"] == record["committed"] \
            + record["prepared_mismatched"] + record["prepared_unresolved"], \
            cell
        assert record["prepared_accuracy_pct"] == 100.0, cell

    by_cell = {(r["scenario"], r["keys_per_txn"]): r for r in records}

    # Baseline: no faults, no takeovers, no retries; aborts only from lock
    # conflicts, which grow with transaction size.
    for size in DEFAULT_TXN_SIZES:
        base = by_cell[("baseline", size)]
        assert base["takeovers"] == 0
        assert base["client_retries"] == 0
        assert base["faults_applied"] == 0
        assert base["final_epoch"] == 1
    assert (by_cell[("baseline", 3)]["lock_conflicts"]
            > by_cell[("baseline", 1)]["lock_conflicts"])

    # Coordinator crash: exactly one standby takeover, epoch moved forward,
    # recovery well under a second, and the client paid retries while the
    # group was headless — but still resolved every transaction.
    for size in DEFAULT_TXN_SIZES:
        crash = by_cell[("coordinator-crash-mid-commit", size)]
        assert crash["takeovers"] == 1, size
        assert crash["final_epoch"] == 2, size
        assert 0 < crash["time_to_recover_ms"] < 1_000.0, size
        assert crash["client_retries"] > 0, size
        assert crash["commit_p99_ms"] > by_cell[("baseline", size)][
            "commit_p99_ms"], size

    # Participant crash and partition: the protocol refuses to guess, so
    # transactions touching the silent node abort — more than baseline.
    for scenario in ("participant-crash-after-prepare", "wan-partition"):
        for size in DEFAULT_TXN_SIZES:
            assert (by_cell[(scenario, size)]["abort_rate_pct"]
                    > by_cell[("baseline", size)]["abort_rate_pct"]), \
                (scenario, size)


@pytest.mark.slow
def test_fig16_decision_window_mismatch():
    """A wide decision-log window makes the speculative view fallible.

    With the decision write stretched to 60 ms, decisions queue behind the
    coordinator's serial log and the crash lands between PREPARED notices
    and durable decisions: the successor finds prepared-only transactions,
    its termination protocol aborts them, and the client's speculative
    "will commit" views turn out wrong — exactly the revocation path the
    Correctable API exists to expose.  The atomicity audit still passes:
    wrong speculation, correct outcome.
    """
    [point] = build_fig16_points(
        scenarios=("coordinator-crash-mid-commit",), txn_sizes=(2,),
        nodes=3, rate_txn_s=25.0, duration_ms=6_000.0,
        fault_at_ms=2_500.0, fault_duration_ms=2_500.0,
        decision_log_ms=60.0, record_count=120, seed=42)
    record = run_fig16_point(point)
    assert record["takeovers"] == 1
    assert record["committed"] > 0
    assert record["prepared_mismatched"] > 0
    assert record["prepared_accuracy_pct"] < 100.0
    assert record["unresolved"] == 0
