"""Declarative sweep engine: run a figure's grid serially or across processes.

Every figure family in :mod:`repro.bench` regenerates its data by running a
grid of independent deterministic simulations (fig06 alone is 3 workloads ×
3 systems × 3 thread counts).  This module factors that shape out: a family
describes its grid as a list of self-contained :class:`SweepPoint`\\ s and a
pure top-level ``run_point(point) -> record`` function, and
:func:`run_sweep` executes the points either in-process (``jobs=1``, the
default) or across a ``multiprocessing`` worker pool (``jobs=N`` or
``jobs="auto"``).

Guarantees, regardless of ``jobs``:

* **Determinism** — a point's record depends only on the point itself (its
  builder kwargs carry the seed), never on execution order; worker results
  are merged sorted by point index, so parallel output is byte-identical to
  serial output.
* **Crash isolation** — a point that raises does not kill the sweep; the
  failure is captured with the point's spec and full traceback, and the
  remaining points still run.  :meth:`SweepResult.records` raises
  :class:`SweepFailure` listing the failed specs only once everything else
  has completed.
* **Per-point wall timing** — each :class:`PointOutcome` reports how long
  its simulation took on the host, which the perf harness records in
  ``BENCH_perf.json``.

Workers are plain ``concurrent.futures.ProcessPoolExecutor`` processes (not
``multiprocessing.Pool`` daemons), so sweeps compose: the perf harness can
fan scenarios across processes while one scenario internally runs a parallel
sweep of its own.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union,
)

import multiprocessing

from repro.sim.rand import derive_rng, derive_seed

#: A point runner must be a module-level function so it pickles by qualified
#: name; it receives one point and returns that point's figure record.
PointRunner = Callable[["SweepPoint"], Any]

JobsSpec = Union[None, int, str]


@dataclass(frozen=True)
class SweepPoint:
    """One self-contained cell of a figure grid.

    ``labels`` identify the cell (system/workload/thread-count labels, used
    for reporting and seed derivation); ``kwargs`` are the builder arguments
    the family's ``run_point`` consumes.  Both must contain only picklable
    values (strings, numbers, tuples).
    """

    index: int
    family: str
    labels: Tuple[Tuple[str, Any], ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def label(self, key: str, default: Any = None) -> Any:
        for name, value in self.labels:
            if name == key:
                return value
        return default

    def spec(self) -> str:
        """Compact human-readable identity, used in failure reports."""
        labels = ", ".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.family}[{self.index}]({labels})"


def make_points(family: str,
                cells: Iterable[Tuple[Dict[str, Any], Dict[str, Any]]]
                ) -> List[SweepPoint]:
    """Number a family's ``(labels, kwargs)`` cells into sweep points."""
    return [SweepPoint(index=index, family=family,
                       labels=tuple(labels.items()), kwargs=dict(kwargs))
            for index, (labels, kwargs) in enumerate(cells)]


def point_seed(master_seed: int, point: SweepPoint) -> int:
    """Deterministic per-point seed, independent of the point's position.

    Derived from the family name and the (sorted) labels only — never from
    ``point.index`` — so reordering, slicing, or extending a grid does not
    change the seed any existing cell receives.
    """
    name = ",".join(f"{k}={v}" for k, v in sorted(point.labels))
    return derive_seed(master_seed, f"{point.family}:{name}")


def derive_point_rng(master_seed: int, point: SweepPoint):
    """A ``random.Random`` seeded by :func:`point_seed`."""
    return derive_rng(master_seed, f"point:{point_seed(master_seed, point)}")


def resolve_jobs(jobs: JobsSpec) -> int:
    """Normalize a ``--jobs`` value: ``None``/``1`` serial, ``"auto"`` = cores."""
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs == "auto":
            try:
                return max(1, len(os.sched_getaffinity(0)))
            except AttributeError:  # pragma: no cover - non-Linux hosts
                return max(1, os.cpu_count() or 1)
        if not jobs.isdigit():
            raise ValueError(f"jobs must be a positive integer or 'auto', "
                             f"got {jobs!r}")
        jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass
class PointOutcome:
    """Result of executing one point: a record or a captured failure."""

    point: SweepPoint
    record: Any = None
    error: Optional[str] = None
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


class SweepFailure(RuntimeError):
    """Raised once a sweep has finished with at least one failed point.

    The message carries each failed point's spec *and* its captured
    traceback — the original exceptions happened in worker processes, so
    this is the only place their root cause surfaces.
    """

    def __init__(self, outcomes: Sequence[PointOutcome]) -> None:
        self.outcomes = list(outcomes)
        self.failed = [o for o in outcomes if not o.ok]
        specs = "; ".join(o.point.spec() for o in self.failed)
        details = "\n".join(
            f"--- {o.point.spec()} ---\n{(o.error or '').rstrip()}"
            for o in self.failed)
        super().__init__(
            f"{len(self.failed)}/{len(self.outcomes)} sweep points failed: "
            f"{specs}\n{details}")


@dataclass
class SweepResult:
    """All point outcomes (sorted by index) plus sweep-level accounting."""

    outcomes: List[PointOutcome]
    jobs: int
    wall_s: float

    def records(self) -> List[Any]:
        """The records in grid order; raises :class:`SweepFailure` if any
        point failed (crash isolation means the rest still completed)."""
        if any(not outcome.ok for outcome in self.outcomes):
            raise SweepFailure(self.outcomes)
        return [outcome.record for outcome in self.outcomes]

    def failed(self) -> List[PointOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def point_timings(self) -> List[Tuple[str, float]]:
        return [(outcome.point.spec(), outcome.wall_s)
                for outcome in self.outcomes]


def _execute_point(run_point: PointRunner, point: SweepPoint) -> PointOutcome:
    """Run one point, capturing wall time and any crash (never raises)."""
    start = time.perf_counter()
    try:
        record = run_point(point)
        return PointOutcome(point=point, record=record,
                            wall_s=time.perf_counter() - start)
    except Exception:
        return PointOutcome(point=point,
                            error=traceback.format_exc(),
                            wall_s=time.perf_counter() - start)


def pool_context():
    """Prefer fork (no re-import, inherits the loaded package) when available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])


def run_sweep(points: Sequence[SweepPoint], run_point: PointRunner,
              jobs: JobsSpec = 1) -> SweepResult:
    """Execute every point and merge the outcomes in grid order.

    ``run_point`` must be a module-level function (it is pickled by name for
    the worker processes) and must depend only on the point it receives.
    """
    jobs = resolve_jobs(jobs)
    start = time.perf_counter()
    if jobs == 1 or len(points) <= 1:
        outcomes = [_execute_point(run_point, point) for point in points]
        return SweepResult(outcomes=outcomes, jobs=1,
                           wall_s=time.perf_counter() - start)
    outcomes = []
    workers = min(jobs, len(points))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=pool_context()) as pool:
        futures = [pool.submit(_execute_point, run_point, point)
                   for point in points]
        for future in as_completed(futures):
            outcomes.append(future.result())
    outcomes.sort(key=lambda outcome: outcome.point.index)
    return SweepResult(outcomes=outcomes, jobs=jobs,
                       wall_s=time.perf_counter() - start)
