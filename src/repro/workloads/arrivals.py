"""Deterministic arrival processes for open-loop load generation.

A closed loop issues the next operation when the previous one completes; an
open loop issues operations when an external *arrival process* says users
showed up, whether or not the store has kept pace.  This module provides the
arrival processes the open-loop runner schedules from:

* :class:`UniformArrivals` — a constant inter-arrival gap (paced load, the
  shape most load generators call "fixed rate");
* :class:`PoissonArrivals` — exponentially distributed gaps (memoryless
  arrivals, the classic model for many independent users);
* :class:`BurstArrivals` — a two-phase on/off process: Poisson arrivals at a
  burst rate for ``on_ms``, then at a (possibly zero) off rate for
  ``off_ms``, repeating.  Models flash crowds and diurnal spikes.

Every process draws from a ``random.Random`` the caller seeds through
:mod:`repro.sim.rand` (``derive_rng(seed, name)``), so a given seed always
produces the same arrival trace — the property the ``--jobs N`` sweep
determinism and the golden figure hashes rely on.  Processes are consumed
through :meth:`ArrivalProcess.next_gap_ms`; :func:`arrival_trace` collects a
prefix of absolute arrival times for tests and examples.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.workloads import fastrand

#: Names understood by :func:`make_arrival_process`.
ARRIVAL_KINDS = ("uniform", "poisson", "burst")

#: Per-draw gaps before a Poisson process auto-engages chunked precompute.
_AUTO_CHUNK_AFTER = 192
_CHUNK_MIN = 128
_CHUNK_MAX = 4096


class ArrivalProcess:
    """Base class: a stream of inter-arrival gaps in milliseconds."""

    #: Nominal offered rate in operations per second (informational).
    rate_ops_s: float = 0.0

    def next_gap_ms(self) -> float:
        """The gap between the previous arrival and the next one."""
        raise NotImplementedError


class UniformArrivals(ArrivalProcess):
    """A constant inter-arrival gap: exactly ``rate_ops_s`` per second."""

    def __init__(self, rate_ops_s: float,
                 rng: Optional[random.Random] = None) -> None:
        if rate_ops_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_ops_s}")
        self.rate_ops_s = rate_ops_s
        self._gap_ms = 1000.0 / rate_ops_s

    def next_gap_ms(self) -> float:
        return self._gap_ms


class PoissonArrivals(ArrivalProcess):
    """Exponentially distributed gaps with mean ``1000 / rate_ops_s`` ms.

    High-volume processes precompute gap chunks through the
    :mod:`repro.workloads.fastrand` seam — same ``expovariate`` sequence
    bit-for-bit, amortized; short-lived processes stay per-draw.
    """

    def __init__(self, rate_ops_s: float, rng: random.Random) -> None:
        if rate_ops_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_ops_s}")
        self.rate_ops_s = rate_ops_s
        self._rate_per_ms = rate_ops_s / 1000.0
        self._rng = rng
        self._buf: List[float] = []
        self._pos = 0
        self._chunk = _CHUNK_MIN
        self._draws = 0
        self._stream = None

    def next_gap_ms(self) -> float:
        pos = self._pos
        buf = self._buf
        if pos < len(buf):
            self._pos = pos + 1
            return buf[pos]
        if self._stream is None:
            if self._draws < _AUTO_CHUNK_AFTER:
                self._draws += 1
                return self._rng.expovariate(self._rate_per_ms)
            self._stream = fastrand.make_stream(self._rng)
        self._buf = buf = fastrand.exponential_gaps(
            self._stream, self._chunk, self._rate_per_ms)
        if self._chunk < _CHUNK_MAX:
            self._chunk *= 2
        self._pos = 1
        return buf[0]

    def prefill(self, n: int) -> int:
        """Precompute the next ``n`` gaps (open-loop runners batch these)."""
        if self._stream is None:
            self._stream = fastrand.make_stream(self._rng)
        if self._pos:
            self._buf = self._buf[self._pos:]
            self._pos = 0
        need = n - len(self._buf)
        if need > 0:
            self._buf.extend(fastrand.exponential_gaps(
                self._stream, need, self._rate_per_ms))
        return len(self._buf)


class BurstArrivals(ArrivalProcess):
    """On/off Poisson arrivals: ``on_rate_ops_s`` for ``on_ms``, then
    ``off_rate_ops_s`` for ``off_ms``, repeating from the start of the run.

    The phase clock is internal to the process (it advances with the gaps it
    hands out), so the trace depends only on the parameters and the seed —
    not on when the runner starts consuming it.
    """

    def __init__(self, on_rate_ops_s: float, rng: random.Random,
                 on_ms: float = 1_000.0, off_ms: float = 1_000.0,
                 off_rate_ops_s: float = 0.0) -> None:
        if on_rate_ops_s <= 0:
            raise ValueError(f"burst rate must be positive, got {on_rate_ops_s}")
        if off_rate_ops_s < 0:
            raise ValueError("off rate must be non-negative")
        if on_ms <= 0 or off_ms < 0:
            raise ValueError("phase lengths must be positive (on) and "
                             "non-negative (off)")
        self.on_rate_ops_s = on_rate_ops_s
        self.off_rate_ops_s = off_rate_ops_s
        self.on_ms = on_ms
        self.off_ms = off_ms
        period = on_ms + off_ms
        # Mean rate over one on/off period (informational).
        self.rate_ops_s = ((on_rate_ops_s * on_ms + off_rate_ops_s * off_ms)
                           / period) if period > 0 else on_rate_ops_s
        self._rng = rng
        self._in_burst = True
        self._phase_left_ms = on_ms

    def _phase_rate_per_ms(self) -> float:
        rate = self.on_rate_ops_s if self._in_burst else self.off_rate_ops_s
        return rate / 1000.0

    def _advance_phase(self) -> None:
        self._in_burst = not self._in_burst
        self._phase_left_ms = self.on_ms if self._in_burst else self.off_ms

    def next_gap_ms(self) -> float:
        # Walk phases until a draw lands inside the current one.  Exponential
        # gaps are memoryless, so redrawing at each phase boundary keeps the
        # per-phase rates exact while staying fully deterministic in the rng.
        total = 0.0
        while True:
            if self._phase_left_ms <= 0:
                self._advance_phase()
                continue
            rate = self._phase_rate_per_ms()
            if rate <= 0:
                total += self._phase_left_ms
                self._phase_left_ms = 0.0
                continue
            gap = self._rng.expovariate(rate)
            if gap < self._phase_left_ms:
                self._phase_left_ms -= gap
                return total + gap
            total += self._phase_left_ms
            self._phase_left_ms = 0.0


def make_arrival_process(kind: str, rate_ops_s: float,
                         rng: random.Random, **params) -> ArrivalProcess:
    """Factory mapping process names to instances.

    ``rate_ops_s`` is the nominal offered rate; for ``burst`` it is the
    *on-phase* rate and ``params`` may carry ``on_ms`` / ``off_ms`` /
    ``off_rate_ops_s``.
    """
    normalized = kind.lower()
    if normalized == "uniform":
        return UniformArrivals(rate_ops_s, rng)
    if normalized == "poisson":
        return PoissonArrivals(rate_ops_s, rng)
    if normalized == "burst":
        return BurstArrivals(rate_ops_s, rng, **params)
    raise ValueError(f"unknown arrival process {kind!r}; "
                     f"choose from {list(ARRIVAL_KINDS)}")


def arrival_trace(process: ArrivalProcess, count: int,
                  start_ms: float = 0.0) -> List[float]:
    """The first ``count`` absolute arrival times of ``process``.

    Consumes the process.  Used by the determinism tests (same seed ⇒ same
    trace) and by examples that want to show a schedule up front.
    """
    times: List[float] = []
    at = start_ms
    for _ in range(count):
        at += process.next_gap_ms()
        times.append(at)
    return times
