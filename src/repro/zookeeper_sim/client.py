"""Client node for the simulated ZooKeeper ensemble.

Offers the low-level znode operations (``create``, ``delete``, ``get``,
``get_children``) plus the queue-oriented operations used by Correctable
ZooKeeper (``enqueue``, ``dequeue``).  Every operation takes callbacks; an
operation submitted with ``icg=True`` receives a preliminary callback from
the contacted server's local simulation before the final (Zab-committed)
result arrives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.sim.network import MESSAGE_HEADER_BYTES, Message, Network
from repro.sim.node import Node
from repro.zookeeper_sim.config import ZooKeeperConfig

#: ``callback(response_dict)`` with keys ok/result/error/latency_ms.
ResponseCallback = Callable[[Dict[str, Any]], None]


@dataclass
class _PendingRequest:
    op: str
    sent_at: float
    on_preliminary: Optional[ResponseCallback] = None
    on_final: Optional[ResponseCallback] = None
    metadata: Dict[str, Any] = field(default_factory=dict)


class ZKClient(Node):
    """A client connected to one server of the ensemble."""

    def __init__(self, name: str, region: str, network: Network,
                 server: str, config: ZooKeeperConfig,
                 host: Optional[str] = None) -> None:
        super().__init__(name, region, network, host=host)
        self.server = server
        self.config = config
        self._req_ids = itertools.count(1)
        self._pending: Dict[int, _PendingRequest] = {}
        self.requests_sent = 0

    # -- generic request plumbing -------------------------------------------
    def submit(self, op: str, path: str, data: Any = None,
               sequential: bool = False, icg: bool = False,
               on_preliminary: Optional[ResponseCallback] = None,
               on_final: Optional[ResponseCallback] = None,
               request_size: Optional[int] = None) -> int:
        """Send one operation to the connected server; returns the request id."""
        req_id = next(self._req_ids)
        self.requests_sent += 1
        self._pending[req_id] = _PendingRequest(
            op=op, sent_at=self.scheduler.now(),
            on_preliminary=on_preliminary, on_final=on_final)
        if request_size is None:
            request_size = (MESSAGE_HEADER_BYTES + self.config.path_size_bytes
                            + (self.config.element_size_bytes if data is not None
                               else 0))
        self.send(self.server, "zk_request",
                  {"req_id": req_id, "op": op, "path": path, "data": data,
                   "sequential": sequential, "icg": icg},
                  size_bytes=request_size)
        return req_id

    # -- convenience wrappers ---------------------------------------------------
    def create(self, path: str, data: Any = None, sequential: bool = False,
               icg: bool = False,
               on_preliminary: Optional[ResponseCallback] = None,
               on_final: Optional[ResponseCallback] = None) -> int:
        return self.submit("create", path, data=data, sequential=sequential,
                           icg=icg, on_preliminary=on_preliminary,
                           on_final=on_final)

    def delete(self, path: str,
               on_final: Optional[ResponseCallback] = None) -> int:
        return self.submit("delete", path, on_final=on_final)

    def get(self, path: str,
            on_final: Optional[ResponseCallback] = None) -> int:
        return self.submit("get", path, on_final=on_final)

    def get_children(self, path: str,
                     on_final: Optional[ResponseCallback] = None) -> int:
        return self.submit("get_children", path, on_final=on_final)

    def enqueue(self, queue_path: str, item: Any, icg: bool = False,
                on_preliminary: Optional[ResponseCallback] = None,
                on_final: Optional[ResponseCallback] = None) -> int:
        """Append ``item`` to the queue (a sequential create under the queue)."""
        return self.submit("enqueue", queue_path, data=item, icg=icg,
                           on_preliminary=on_preliminary, on_final=on_final)

    def dequeue(self, queue_path: str, icg: bool = False,
                on_preliminary: Optional[ResponseCallback] = None,
                on_final: Optional[ResponseCallback] = None) -> int:
        """Atomically remove the queue head (server-side, constant-size messages)."""
        return self.submit("dequeue", queue_path, icg=icg,
                           on_preliminary=on_preliminary, on_final=on_final)

    # -- responses ------------------------------------------------------------------
    def on_zk_preliminary(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.get(payload["req_id"])
        if pending is None or pending.on_preliminary is None:
            return
        pending.on_preliminary({
            "ok": payload["ok"],
            "result": payload["result"],
            "error": None,
            "latency_ms": self.scheduler.now() - pending.sent_at,
            "preliminary": True,
        })

    def on_zk_response(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.pop(payload["req_id"], None)
        if pending is None:
            return
        if pending.on_final is not None:
            pending.on_final({
                "ok": payload["ok"],
                "result": payload.get("result"),
                "error": payload.get("error"),
                "latency_ms": self.scheduler.now() - pending.sent_at,
                "preliminary": False,
            })
