#!/usr/bin/env python
"""Progressive display of news items (Section 4.4 / Listing 6).

A news service replicated with a primary-backup scheme, fronted by a local
cache on the phone.  One logical ``invoke`` yields up to three incremental
views — cache, backup, primary — and the reader simply refreshes its display
whenever a fresher view arrives.

Run with::

    python examples/news_reader.py
"""

from repro.apps.news import NewsReader
from repro.bindings.cached_store import CachedStoreBinding
from repro.bindings.primary_backup import PrimaryBackupBinding, PrimaryBackupStore
from repro.core import CorrectableClient
from repro.sim.scheduler import Scheduler


def main() -> None:
    scheduler = Scheduler()
    store = PrimaryBackupStore(scheduler=scheduler, replication_lag_ms=60.0)
    binding = CachedStoreBinding(
        PrimaryBackupBinding(store, scheduler=scheduler,
                             backup_rtt_ms=20.0, primary_rtt_ms=90.0),
        scheduler=scheduler, cache_latency_ms=0.5)
    reader = NewsReader(CorrectableClient(binding))

    # The publisher pushes the morning edition; the phone caches it.
    reader.publish(["sunrise over the alps", "local elections tonight"])
    scheduler.run_until_idle()

    # Fresh stories land on the primary, but the backup has not caught up yet
    # and the phone cache still has the morning edition.
    store.write(NewsReader.NEWS_KEY,
                ["BREAKING: glacier marathon rescheduled",
                 "sunrise over the alps", "local elections tonight"])

    def refresh(items, consistency):
        print(f"[{scheduler.now():6.1f} ms] view from {consistency:>7}: "
              f"{items[0]!r} (+{len(items) - 1} more)")

    print("reading the front page with one invoke():")
    reader.get_latest_news(refresh=refresh)
    scheduler.run_until_idle()

    print(f"\nfinal display: {reader.latest_display()[0]!r}")
    print(f"views delivered for this read: "
          f"{[entry['consistency'] for entry in reader.display_history]}")


if __name__ == "__main__":
    main()
