"""Request-distribution generators (YCSB semantics).

* *Uniform* — every record equally likely;
* *Zipfian* — popularity follows a Zipf law with the YCSB constant 0.99,
  independent of insertion order (implemented with the Gray et al. generator
  YCSB uses);
* *Scrambled Zipfian* — Zipfian popularity hashed over the key space;
* *Latest* — like Zipfian but anchored at the most recently inserted record,
  so reads skew towards what was just written.  This is the distribution
  under which the paper observes up to 25 % divergence (Figure 7).

A chooser consumes draws from the ``random.Random`` it is given; when the
same instance also feeds other decisions (e.g. the read/update mix), the two
streams perturb each other — changing the mix silently changes which keys
get chosen.  :meth:`repro.workloads.ycsb.OperationGenerator.seeded`
therefore passes each chooser a dedicated, label-keyed stream (the same
convention as the sweep engine's ``derive_point_rng``), so key choice is
independent of every other draw made with the same seed.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Optional


class UniformKeyChooser:
    """Uniformly random record indices in ``[0, record_count)``."""

    #: Vectorized draw pattern (see ``OperationGenerator.prefill``):
    #: ``randrange`` consumes a data-dependent number of MT words per draw.
    vector_kind = "words"

    def __init__(self, record_count: int, rng: random.Random) -> None:
        if record_count <= 0:
            raise ValueError("record_count must be positive")
        self.record_count = record_count
        self._rng = rng

    def next_index(self) -> int:
        return self._rng.randrange(self.record_count)

    def indices_from_stream(self, stream, n: int) -> list:
        """``n`` indices drawn exactly like ``next_index`` from ``stream``.

        ``Random.randrange(upper)`` draws ``upper.bit_length()`` bits and
        rejects values >= upper; the stream reproduces that word pattern.
        """
        acc = stream.accepted(n, self.record_count.bit_length(),
                              self.record_count)
        return acc.tolist() if hasattr(acc, "tolist") else list(acc)

    def notify_insert(self, index: int) -> None:  # pragma: no cover - no-op
        """Uniform choice does not depend on recency."""


class ZipfianKeyChooser:
    """The YCSB Zipfian generator (Gray et al.), constant 0.99.

    Item 0 is the most popular, item 1 the second most popular, and so on.
    """

    ZIPFIAN_CONSTANT = 0.99

    #: ``(n, theta) -> zeta(n, theta)``; the harmonic sum is O(n) to compute
    #: and identical for every chooser over the same key space, so open-loop
    #: runs with thousands of per-session generators compute it once.
    _zeta_cache: dict = {}

    def __init__(self, record_count: int, rng: random.Random,
                 theta: Optional[float] = None) -> None:
        if record_count <= 0:
            raise ValueError("record_count must be positive")
        self.record_count = record_count
        self._rng = rng
        self.theta = self.ZIPFIAN_CONSTANT if theta is None else theta
        cache_key = (record_count, self.theta)
        if cache_key not in self._zeta_cache:
            self._zeta_cache[cache_key] = self._zeta(record_count, self.theta)
        self._zetan = self._zeta_cache[cache_key]
        self._zeta2 = self._zeta(2, self.theta)
        self._alpha = 1.0 / (1.0 - self.theta)
        denominator = 1 - self._zeta2 / self._zetan
        if abs(denominator) < 1e-12:
            # Degenerate key spaces (1 or 2 records): the generic formula has
            # a zero denominator; any eta works because next_index clamps.
            self._eta = 0.0
        else:
            self._eta = ((1 - (2.0 / record_count) ** (1 - self.theta))
                         / denominator)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    #: One ``random()`` double per draw — the pattern ``prefill`` vectorizes.
    vector_kind = "doubles"

    def next_index(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return min(1, self.record_count - 1)
        index = int(self.record_count *
                    (self._eta * u - self._eta + 1) ** self._alpha)
        return min(index, self.record_count - 1)

    def indices_from_doubles(self, us) -> list:
        """Map uniform draws to indices exactly as ``next_index`` does.

        The transform stays scalar Python on purpose: numpy's SIMD ``pow``
        differs from libm by 1 ulp on some inputs, which could flip a
        truncated index and desync seeded experiments (see
        :mod:`repro.workloads.fastrand`).
        """
        zetan = self._zetan
        eta = self._eta
        alpha = self._alpha
        rc = self.record_count
        half = 1.0 + 0.5 ** self.theta
        nm1 = rc - 1
        second = 1 if rc > 1 else 0
        out = []
        append = out.append
        for u in us:
            uz = u * zetan
            if uz < 1.0:
                append(0)
            elif uz < half:
                append(second)
            else:
                index = int(rc * (eta * u - eta + 1) ** alpha)
                append(index if index < nm1 else nm1)
        return out

    def notify_insert(self, index: int) -> None:  # pragma: no cover - no-op
        """Plain Zipfian popularity ignores recency."""


class ScrambledZipfianKeyChooser:
    """Zipfian popularity spread over the key space by hashing."""

    #: Consumes exactly the underlying Zipfian's one double per draw.
    vector_kind = "doubles"

    def __init__(self, record_count: int, rng: random.Random,
                 theta: Optional[float] = None) -> None:
        self.record_count = record_count
        self._zipfian = ZipfianKeyChooser(record_count, rng, theta=theta)

    def next_index(self) -> int:
        raw = self._zipfian.next_index()
        digest = hashlib.md5(str(raw).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.record_count

    def indices_from_doubles(self, us) -> list:
        rc = self.record_count
        md5 = hashlib.md5
        from_bytes = int.from_bytes
        return [from_bytes(md5(str(raw).encode("utf-8")).digest()[:8],
                           "big") % rc
                for raw in self._zipfian.indices_from_doubles(us)]

    def notify_insert(self, index: int) -> None:  # pragma: no cover - no-op
        """Scrambled Zipfian ignores recency."""


class LatestKeyChooser:
    """YCSB's *Latest* distribution: skewed towards recently inserted records.

    The generator draws a Zipfian offset from the most recent record, so the
    newest records are the hottest — the workload that maximizes the chance
    of reading a key while its latest write is still propagating.
    """

    #: Stateful (``notify_insert`` moves the anchor mid-stream): draws can
    #: not be precomputed, so generators keep the per-draw path.
    vector_kind = None

    def __init__(self, record_count: int, rng: random.Random,
                 theta: Optional[float] = None) -> None:
        if record_count <= 0:
            raise ValueError("record_count must be positive")
        self.record_count = record_count
        self._latest = record_count - 1
        self._zipfian = ZipfianKeyChooser(record_count, rng, theta=theta)

    def next_index(self) -> int:
        offset = self._zipfian.next_index()
        index = self._latest - offset
        if index < 0:
            index += self.record_count
        return index % self.record_count

    def notify_insert(self, index: int) -> None:
        """Track the most recent record touched by an insert/update."""
        self._latest = max(self._latest, index) if index >= 0 else self._latest
        # YCSB's Latest generator follows the insertion frontier; updates to
        # existing records keep the frontier where it is.


def make_key_chooser(name: str, record_count: int,
                     rng: random.Random,
                     theta: Optional[float] = None):
    """Factory mapping YCSB distribution names to generator instances.

    ``theta`` dials the Zipf skew for the zipfian-family distributions
    (``None`` keeps the YCSB constant 0.99); the uniform distribution
    ignores it.
    """
    normalized = name.lower()
    if normalized == "uniform":
        return UniformKeyChooser(record_count, rng)
    if normalized == "zipfian":
        return ZipfianKeyChooser(record_count, rng, theta=theta)
    if normalized == "scrambled_zipfian":
        return ScrambledZipfianKeyChooser(record_count, rng, theta=theta)
    if normalized == "latest":
        return LatestKeyChooser(record_count, rng, theta=theta)
    raise ValueError(f"unknown request distribution: {name!r}")
