"""Cluster assembly and membership orchestration for the simulated deployment.

A cluster is built either the historical way (``replica_regions``: one node
per region, names derived as ``cassandra-{i}-{region}``) or from an explicit
``nodes`` list of ``(name, region)`` pairs — which is what
:class:`repro.core.cluster_spec.ClusterSpec` produces for larger rings.

Live membership changes run through :class:`~repro.cassandra_sim.rebalance.
RingRebalance`: :meth:`CassandraCluster.join_node`,
:meth:`~CassandraCluster.decommission_node` and
:meth:`~CassandraCluster.remove_node` orchestrate bootstrap → stream →
announce → serve on the simulation scheduler, optionally deferred to a
future instant (``at_ms``) so an experiment can trigger a rebalance in the
middle of a load run.  Forced removal pairs with the fault machinery: crash
a replica with :class:`~repro.faults.injector.FaultInjector`, then
``remove_node`` re-replicates its ranges from the survivors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cassandra_sim.client import CassandraClient
from repro.cassandra_sim.config import CassandraConfig
from repro.cassandra_sim.partitioner import RingPartitioner
from repro.cassandra_sim.rebalance import RingRebalance
from repro.cassandra_sim.replica import CassandraReplica
from repro.cassandra_sim.storage import ColumnarTable
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region, replica_regions_default


class CassandraCluster:
    """A replicated Cassandra deployment inside one simulation environment."""

    def __init__(self, env: SimEnvironment,
                 config: Optional[CassandraConfig] = None,
                 replica_regions: Optional[Sequence[str]] = None,
                 nodes: Optional[Sequence[Tuple[str, str]]] = None) -> None:
        self.env = env
        self.config = config if config is not None else CassandraConfig()
        if nodes is not None:
            if replica_regions is not None:
                raise ValueError("pass either nodes or replica_regions, not both")
            members = [(str(name), str(region)) for name, region in nodes]
            if len(members) < self.config.replication_factor:
                raise ValueError(
                    "need at least as many nodes as the replication factor")
        else:
            regions = list(replica_regions if replica_regions is not None
                           else replica_regions_default())
            if len(regions) < self.config.replication_factor:
                raise ValueError(
                    "need at least as many replica regions as the replication factor")
            members = [(f"cassandra-{i}-{region}", region)
                       for i, region in enumerate(regions)]
        names = [name for name, _ in members]
        self.partitioner = RingPartitioner(
            names, self.config.replication_factor,
            vnodes_per_node=self.config.vnodes_per_node)
        self.replicas: List[CassandraReplica] = [
            CassandraReplica(name, region, env.network, self.config,
                             self.partitioner)
            for name, region in members
        ]
        #: Replicas that left the ring (kept registered so stragglers get
        #: ``stale_epoch`` rejections instead of silent drops).
        self.retired_replicas: List[CassandraReplica] = []
        self._by_name: Dict[str, CassandraReplica] = {
            replica.name: replica for replica in self.replicas}
        self._by_region: Dict[str, CassandraReplica] = {}
        for replica in self.replicas:
            self._by_region.setdefault(replica.region, replica)
        self._clients: List[CassandraClient] = []
        #: Completed and in-flight :class:`RingRebalance` operations, in
        #: start order.
        self.rebalances: List[RingRebalance] = []

    # -- lookup -----------------------------------------------------------------
    def replica_in(self, region: str) -> CassandraReplica:
        """The (first) serving replica deployed in ``region``."""
        try:
            return self._by_region[region]
        except KeyError:
            raise KeyError(f"no replica deployed in region {region}") from None

    def replica_by_name(self, name: str) -> CassandraReplica:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no replica named {name}") from None

    def replica_names(self) -> List[str]:
        return [replica.name for replica in self.replicas]

    # -- clients -----------------------------------------------------------------
    def add_client(self, name: str, region: str = Region.IRL,
                   contact_region: str = Region.FRK,
                   fallbacks: bool = False) -> CassandraClient:
        """Create a client in ``region`` connected to the replica in ``contact_region``.

        ``fallbacks=True`` hands the client the remaining replicas as backup
        coordinators so a client-side timeout — or a retryable rejection from
        a coordinator that left the ring — can fail over (used by the fault
        and rebalance experiments).
        """
        contact = self.replica_in(contact_region)
        fallback_contacts = None
        if fallbacks:
            fallback_contacts = [r.name for r in self.replicas
                                 if r.name != contact.name]
        client = CassandraClient(name, region, self.env.network,
                                 contact.name, self.config,
                                 fallback_contacts=fallback_contacts)
        self._clients.append(client)
        return client

    @property
    def clients(self) -> List[CassandraClient]:
        return list(self._clients)

    # -- membership changes ------------------------------------------------------
    def join_node(self, name: str, region: str,
                  vnodes: Optional[int] = None,
                  at_ms: Optional[float] = None,
                  on_complete=None) -> RingRebalance:
        """Add a node to the ring: bootstrap → stream → announce → serve.

        Starts immediately, or at absolute simulated time ``at_ms``.  The
        returned operation exposes ``started_at`` / ``completed_at`` once the
        respective phase has run.
        """
        return self._launch(RingRebalance(self, "join", name, region=region,
                                          vnodes=vnodes,
                                          on_complete=on_complete), at_ms)

    def decommission_node(self, name: str, at_ms: Optional[float] = None,
                          on_complete=None) -> RingRebalance:
        """Gracefully remove a node: it streams its ranges out, then retires."""
        return self._launch(RingRebalance(self, "decommission", name,
                                          on_complete=on_complete), at_ms)

    def remove_node(self, name: str, at_ms: Optional[float] = None,
                    on_complete=None) -> RingRebalance:
        """Forcibly remove a (typically crashed) node; survivors re-replicate."""
        return self._launch(RingRebalance(self, "remove", name,
                                          on_complete=on_complete), at_ms)

    def _launch(self, operation: RingRebalance,
                at_ms: Optional[float]) -> RingRebalance:
        self.rebalances.append(operation)
        if at_ms is None:
            operation.start()
        else:
            self.env.scheduler.schedule_call_at(at_ms, operation.start)
        return operation

    def _add_replica(self, name: str, region: str,
                     ring_state: str = "serving") -> CassandraReplica:
        if name in self._by_name:
            raise ValueError(f"replica {name!r} already exists")
        replica = CassandraReplica(name, region, self.env.network, self.config,
                                   self.partitioner)
        # A node joining a columnar ring starts columnar: the ranges it is
        # about to stream in are exactly the million-key tables the threshold
        # flipped the seed replicas to.
        if any(isinstance(peer.table, ColumnarTable) for peer in self.replicas):
            replica.table = ColumnarTable()
        replica.ring_state = ring_state
        self.replicas.append(replica)
        self._by_name[name] = replica
        if ring_state == "serving":
            self._by_region.setdefault(region, replica)
        return replica

    def _on_membership_committed(self, operation: RingRebalance) -> None:
        """Update the serving indexes after a rebalance announces."""
        replica = self.replica_by_name(operation.node_name)
        if operation.kind == "join":
            self._by_region.setdefault(replica.region, replica)
            return
        # Departure: drop from the serving set, keep on the network retired
        # (and resolvable by name, so stragglers and tests can reach it).
        self.replicas.remove(replica)
        self.retired_replicas.append(replica)
        if self._by_region.get(replica.region) is replica:
            del self._by_region[replica.region]
            for candidate in self.replicas:
                if candidate.region == replica.region:
                    self._by_region[replica.region] = candidate
                    break

    # -- data loading ----------------------------------------------------------------
    def preload(self, items: Dict[str, object]) -> None:
        """Install initial data on every replica owning the key (time zero state).

        Preloads at or above ``config.columnar_threshold_keys`` records flip
        every replica to :class:`~repro.cassandra_sim.storage.ColumnarTable`
        first (unless ``config.columnar_storage`` is off) — that is the only
        scale at which the per-row object overhead matters.
        """
        from repro.cassandra_sim.versions import VersionedValue

        if (self.config.columnar_storage
                and len(items) >= self.config.columnar_threshold_keys):
            for replica in self.replicas:
                if not isinstance(replica.table, ColumnarTable):
                    replica.table = ColumnarTable.from_table(replica.table)
        by_name = self._by_name
        replicas_for = self.partitioner.replicas_for
        if self.replicas and all(isinstance(r.table, ColumnarTable)
                                 for r in self.replicas):
            # Million-key rings: group rows by owner and bulk-extend each
            # replica's columns — no version objects, no per-row calls
            # (see ColumnarTable.preload_rows).
            buckets: Dict[str, list] = {name: [] for name in by_name}
            for key, value in items.items():
                for owner in replicas_for(key):
                    bucket = buckets.get(owner)
                    if bucket is not None:
                        bucket.append((key, value))
            for name, rows in buckets.items():
                by_name[name].table.preload_rows(rows)
            return
        for key, value in items.items():
            version = VersionedValue(value, (0.0, "preload", 0))
            for owner in replicas_for(key):
                replica = by_name.get(owner)
                if replica is not None:
                    replica.table.apply(key, version)

    # -- statistics -------------------------------------------------------------------
    def total_preliminaries_flushed(self) -> int:
        return sum(r.preliminaries_flushed
                   for r in self.replicas + self.retired_replicas)

    def total_confirmations_sent(self) -> int:
        return sum(r.confirmations_sent
                   for r in self.replicas + self.retired_replicas)

    def total_keys_streamed(self) -> int:
        return sum(r.keys_streamed_in
                   for r in self.replicas + self.retired_replicas)

    def total_stale_rejections(self) -> int:
        return sum(r.stale_rejections
                   for r in self.replicas + self.retired_replicas)

    def total_stale_epoch_retries(self) -> int:
        return sum(r.stale_epoch_retries
                   for r in self.replicas + self.retired_replicas)

    def total_writes_forwarded(self) -> int:
        return sum(r.writes_forwarded
                   for r in self.replicas + self.retired_replicas)
