#!/usr/bin/env python
"""Selling tickets from a replicated queue (Section 4.3 / Listing 5 / Figure 12).

Four retailers, colocated with the Frankfurt follower of a ZooKeeper ensemble
whose leader is in Ireland, sell a fixed stock of tickets.  While plenty of
stock remains each purchase is confirmed from the preliminary (locally
simulated) dequeue; once fewer than THRESHOLD tickets remain the retailers
wait for the final, atomic result, so the stock is never oversold.

Run with::

    python examples/ticket_selling.py
"""

from repro.apps.tickets import TicketSeller
from repro.bindings.zookeeper import ZooKeeperQueueBinding
from repro.core import CorrectableClient
from repro.metrics.latency import LatencyRecorder
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region
from repro.zookeeper_sim.cluster import ZooKeeperCluster

STOCK = 120
RETAILERS = 4
THRESHOLD = 20


def main() -> None:
    env = SimEnvironment(seed=3)
    cluster = ZooKeeperCluster(env, leader_region=Region.IRL,
                               follower_regions=(Region.FRK, Region.VRG))
    cluster.preload_queue("/tickets", [f"ticket-{i}" for i in range(STOCK)])

    sellers = []
    sales = []

    def run_retailer(index: int, seller: TicketSeller) -> None:
        def buy() -> None:
            seller.purchase_ticket(done)

        def done(outcome) -> None:
            if outcome.sold_out:
                return
            sales.append((index, outcome))
            buy()

        buy()

    for index in range(RETAILERS):
        node = cluster.add_client(f"retailer-{index}", region=Region.FRK,
                                  connect_region=Region.FRK, colocated=True)
        seller = TicketSeller(
            CorrectableClient(ZooKeeperQueueBinding(node, "/tickets")),
            "/tickets", threshold=THRESHOLD)
        sellers.append(seller)
        run_retailer(index, seller)

    env.run_until_idle()

    fast, slow = LatencyRecorder("preliminary"), LatencyRecorder("final")
    for _, outcome in sales:
        (fast if outcome.used_preliminary else slow).record(outcome.latency_ms)

    print(f"tickets sold: {len(sales)} / {STOCK} (oversold: "
          f"{max(0, len(sales) - STOCK)})")
    print(f"purchases confirmed from the preliminary view: {fast.count} "
          f"(mean latency {fast.mean():.1f} ms)")
    print(f"purchases that waited for the atomic view:     {slow.count} "
          f"(mean latency {slow.mean():.1f} ms)")
    print("\nlast ten purchases (ticket, latency ms, used preliminary):")
    for retailer, outcome in sales[-10:]:
        print(f"  retailer {retailer}: {outcome.ticket:<12} "
              f"{outcome.latency_ms:7.1f}   {outcome.used_preliminary}")


if __name__ == "__main__":
    main()
