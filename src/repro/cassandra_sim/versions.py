"""Versioned values and last-write-wins resolution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Tuple

#: A write timestamp: (simulated time, coordinator name, per-coordinator seq).
#: Tuple comparison gives a total order with deterministic tie-breaking.
Timestamp = Tuple[float, str, int]


@dataclass(frozen=True, slots=True)
class VersionedValue:
    """A value together with the timestamp of the write that produced it."""

    value: Any
    timestamp: Timestamp

    def newer_than(self, other: Optional["VersionedValue"]) -> bool:
        """Last-write-wins: strictly newer timestamp wins."""
        if other is None:
            return True
        return self.timestamp > other.timestamp


def resolve(versions: Iterable[Optional[VersionedValue]]
            ) -> Optional[VersionedValue]:
    """Pick the newest non-missing version among replica responses."""
    newest: Optional[VersionedValue] = None
    for version in versions:
        if version is None:
            continue
        if newest is None or version.newer_than(newest):
            newest = version
    return newest
