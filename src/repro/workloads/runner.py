"""Closed-loop load generation inside the simulation.

The paper's load experiments (Figures 6, 7, 8 and 11) use YCSB client threads
in a closed loop: each thread issues one operation, waits for it to complete,
then immediately issues the next.  :class:`ClosedLoopRunner` reproduces that
behaviour on simulated time, with warm-up and cool-down periods excluded from
measurement (the paper elides the first and last 15 s of 60 s trials).

The runner is system-agnostic: the experiment harness supplies an ``issue``
function that executes one operation against whatever stack is under test and
reports completion (with optional preliminary/final latencies and divergence
information) through a ``done`` callback.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.metrics.divergence import DivergenceCounter
from repro.metrics.latency import HistogramRecorder, LatencyRecorder
from repro.sim.scheduler import Scheduler
from repro.workloads.ycsb import OperationGenerator

#: ``issue(op_type, key, value, done)`` executes one operation and eventually
#: calls ``done(info)`` where ``info`` may contain:
#:   ``final_latency_ms``          overall completion latency,
#:   ``preliminary_latency_ms``    latency of the preliminary view (if any),
#:   ``diverged``                  True when preliminary != final,
#:   ``had_preliminary``           False when no preliminary view arrived,
#:   ``degraded``                  True when the storage answered with less
#:                                 than the requested quorum (fault recovery),
#:   ``failed``                    True when the operation errored out.
IssueFunction = Callable[[str, str, Optional[str], Callable[[Dict[str, Any]], None]], None]


@dataclass
class RunResult:
    """Aggregated metrics for one load-run configuration."""

    label: str
    duration_ms: float
    measured_ops: int = 0
    total_ops: int = 0
    final_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    preliminary_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    read_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    update_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    divergence: DivergenceCounter = field(default_factory=DivergenceCounter)
    #: Operations answered with less than the requested quorum (whole run).
    degraded_ops: int = 0
    #: Operations that errored out, e.g. exhausted timeouts (whole run).
    failed_ops: int = 0

    def throughput_ops_per_sec(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.measured_ops / (self.duration_ms / 1000.0)

    def summary(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "throughput_ops_s": self.throughput_ops_per_sec(),
            "final_mean_ms": self.final_latency.mean(),
            "final_p99_ms": self.final_latency.p99(),
            "preliminary_mean_ms": self.preliminary_latency.mean(),
            "preliminary_p99_ms": self.preliminary_latency.p99(),
            "divergence_pct": self.divergence.divergence_percent(),
            "measured_ops": self.measured_ops,
            "degraded_ops": self.degraded_ops,
            "failed_ops": self.failed_ops,
        }


class _ClientThread:
    """One closed-loop logical thread issuing operations back-to-back.

    The loop is closed — at most one operation is outstanding per thread —
    so the in-flight operation's type and issue time live on the instance
    and the completion callback is the bound :meth:`_on_done`, instead of a
    fresh closure per operation.
    """

    __slots__ = ("runner", "thread_id", "generator", "_op_type", "_issued_at",
                 "_done_cb")

    def __init__(self, runner: "ClosedLoopRunner", thread_id: int,
                 generator: OperationGenerator) -> None:
        self.runner = runner
        self.thread_id = thread_id
        self.generator = generator
        self._op_type = ""
        self._issued_at = 0.0
        self._done_cb = self._on_done  # bound once, reused every operation

    def start(self) -> None:
        self._issue_next()

    def _issue_next(self) -> None:
        runner = self.runner
        now = runner.scheduler.now()
        if now >= runner.end_time:
            return
        op_type, key, value = self.generator.next_operation()
        self._op_type = op_type
        self._issued_at = now
        runner.issue(op_type, key, value, self._done_cb)

    def _on_done(self, info: Dict[str, Any]) -> None:
        runner = self.runner
        runner.record_completion(self._op_type, self._issued_at, info)
        think = runner.think_time_ms
        if think > 0:
            runner.scheduler.schedule(think, self._issue_next)
        else:
            self._issue_next()


class ClosedLoopRunner:
    """Runs N closed-loop client threads over simulated time and aggregates metrics."""

    def __init__(self, scheduler: Scheduler, issue: IssueFunction,
                 make_generator: Callable[[int], OperationGenerator],
                 threads: int, duration_ms: float = 30_000.0,
                 warmup_ms: float = 5_000.0, cooldown_ms: float = 5_000.0,
                 think_time_ms: float = 0.0, label: str = "run",
                 faults: Optional[Any] = None,
                 use_histograms: bool = False) -> None:
        if threads <= 0:
            raise ValueError("need at least one client thread")
        if duration_ms <= warmup_ms + cooldown_ms:
            raise ValueError("duration must exceed warmup + cooldown")
        self.scheduler = scheduler
        self.issue = issue
        self.threads = threads
        self.duration_ms = duration_ms
        self.warmup_ms = warmup_ms
        self.cooldown_ms = cooldown_ms
        self.think_time_ms = think_time_ms
        self.label = label
        #: A :class:`repro.faults.FaultInjector` (or anything with ``arm``):
        #: its schedule is armed relative to the run's start time, so fault
        #: scripts compose with warm-up windows the same way on every run.
        self.faults = faults
        self._threads = [
            _ClientThread(self, i, make_generator(i)) for i in range(threads)
        ]
        self.start_time = 0.0
        self.end_time = 0.0
        self._measure_start = 0.0
        self._measure_end = 0.0
        measured_ms = duration_ms - warmup_ms - cooldown_ms
        if use_histograms:
            # O(1)-per-sample recorders for perf runs at scale; the figure
            # harnesses keep the default exact recorders so committed tables
            # stay bit-identical.
            self.result = RunResult(
                label=label, duration_ms=measured_ms,
                final_latency=HistogramRecorder(),
                preliminary_latency=HistogramRecorder(),
                read_latency=HistogramRecorder(),
                update_latency=HistogramRecorder())
        else:
            self.result = RunResult(
                label=label, duration_ms=measured_ms)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Schedule all client threads; the caller then runs the scheduler."""
        self.start_time = self.scheduler.now()
        self.end_time = self.start_time + self.duration_ms
        self._measure_start = self.start_time + self.warmup_ms
        self._measure_end = self.end_time - self.cooldown_ms
        if self.faults is not None:
            self.faults.arm(offset_ms=self.start_time)
        for thread in self._threads:
            # Start threads at slightly staggered instants so they do not all
            # hit the coordinator in the same event tick.
            self.scheduler.schedule(0.01 * thread.thread_id, thread.start)

    def run(self) -> RunResult:
        """Start the threads, run the simulation past the end, return metrics."""
        self.start()
        # Allow some slack after end_time so in-flight operations drain.
        self.scheduler.run(until=self.end_time + 60_000.0)
        return self.result

    # -- recording -----------------------------------------------------------------
    def record_completion(self, op_type: str, issued_at: float,
                          info: Dict[str, Any]) -> None:
        self.result.total_ops += 1
        # Fault outcomes are counted over the whole run (not only the
        # measurement window): a fault script may overlap warm-up/cool-down
        # and recovery behaviour is interesting wherever it happens.
        if info.get("degraded"):
            self.result.degraded_ops += 1
        if info.get("failed"):
            self.result.failed_ops += 1
        completed_at = self.scheduler.now()
        if not (self._measure_start <= issued_at and
                completed_at <= self._measure_end):
            return
        self.result.measured_ops += 1
        final_latency = info.get("final_latency_ms",
                                 completed_at - issued_at)
        self.result.final_latency.record(final_latency)
        if op_type == "read":
            self.result.read_latency.record(final_latency)
        else:
            self.result.update_latency.record(final_latency)
        if info.get("preliminary_latency_ms") is not None:
            self.result.preliminary_latency.record(info["preliminary_latency_ms"])
        if "diverged" in info:
            self.result.divergence.record_outcome(
                bool(info["diverged"]),
                had_preliminary=info.get("had_preliminary", True))
