"""YCSB core workloads A, B and C.

A workload is an operation mix (read vs update proportions) plus a request
distribution.  :class:`OperationGenerator` turns a workload specification and
a dataset into an endless stream of ``("read" | "update", key, value)``
operations, which the closed-loop runner feeds to the system under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim.rand import derive_rng
from repro.workloads.distributions import make_key_chooser
from repro.workloads.records import Dataset


@dataclass(frozen=True)
class WorkloadSpec:
    """An operation mix in the style of the YCSB core workloads."""

    name: str
    read_proportion: float
    update_proportion: float
    request_distribution: str = "zipfian"
    #: Zipf skew parameter for the zipfian-family distributions.  ``None``
    #: keeps the YCSB default (0.99); larger values concentrate traffic on
    #: fewer keys — the hot-partition regimes of the rebalance experiments.
    zipf_theta: Optional[float] = None

    def __post_init__(self) -> None:
        total = self.read_proportion + self.update_proportion
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"proportions must sum to 1.0, got {total} for {self.name}")
        if self.zipf_theta is not None and (
                not 0.0 < self.zipf_theta < 2.0 or self.zipf_theta == 1.0):
            # theta = 1 makes the Gray et al. generator's alpha diverge.
            raise ValueError(
                f"zipf_theta must be in (0, 2) excluding 1, "
                f"got {self.zipf_theta}")

    def with_distribution(self, distribution: str) -> "WorkloadSpec":
        """The same mix under a different request distribution."""
        return WorkloadSpec(name=self.name,
                            read_proportion=self.read_proportion,
                            update_proportion=self.update_proportion,
                            request_distribution=distribution,
                            zipf_theta=self.zipf_theta)

    def with_skew(self, theta: Optional[float]) -> "WorkloadSpec":
        """The same mix with a different Zipf skew (``None`` = YCSB 0.99)."""
        return WorkloadSpec(name=self.name,
                            read_proportion=self.read_proportion,
                            update_proportion=self.update_proportion,
                            request_distribution=self.request_distribution,
                            zipf_theta=theta)


#: Workload A — update heavy (50:50 read/update), e.g. a session store.
WORKLOAD_A = WorkloadSpec("A", read_proportion=0.5, update_proportion=0.5)
#: Workload B — read mostly (95:5), e.g. photo tagging.
WORKLOAD_B = WorkloadSpec("B", read_proportion=0.95, update_proportion=0.05)
#: Workload C — read only, e.g. a user-profile cache.
WORKLOAD_C = WorkloadSpec("C", read_proportion=1.0, update_proportion=0.0)


def workload_by_name(name: str) -> WorkloadSpec:
    """Look up one of the core workloads by its letter."""
    mapping = {"A": WORKLOAD_A, "B": WORKLOAD_B, "C": WORKLOAD_C}
    try:
        return mapping[name.upper()]
    except KeyError:
        raise KeyError(f"unknown YCSB workload: {name!r}") from None


class OperationGenerator:
    """Draws operations according to a workload spec over a dataset.

    Two random streams drive a generator: the *key* stream (which record)
    and the *mix* stream (read or update).  Constructed with a single
    ``rng``, both decisions share that one instance — the historical
    behaviour the committed figure tables were produced with, kept for
    byte-compatibility.  The sharing couples the streams: changing the
    read proportion shifts which keys get chosen.  :meth:`seeded` instead
    derives two independent, label-keyed streams (the ``derive_point_rng``
    convention), so key choice survives mix changes unchanged; new
    harnesses (the open-loop experiments) use it.
    """

    def __init__(self, spec: WorkloadSpec, dataset: Dataset,
                 rng: Optional[random.Random] = None, *,
                 key_rng: Optional[random.Random] = None,
                 mix_rng: Optional[random.Random] = None) -> None:
        if rng is None and (key_rng is None or mix_rng is None):
            raise ValueError("pass either a shared rng or both key_rng "
                             "and mix_rng")
        self.spec = spec
        self.dataset = dataset
        self._rng = mix_rng if mix_rng is not None else rng
        self._chooser = make_key_chooser(
            spec.request_distribution, dataset.record_count,
            key_rng if key_rng is not None else rng,
            theta=spec.zipf_theta)
        self.reads_generated = 0
        self.updates_generated = 0

    @classmethod
    def seeded(cls, spec: WorkloadSpec, dataset: Dataset, seed: int,
               label: str) -> "OperationGenerator":
        """A generator whose key and mix streams are independently seeded.

        Streams are derived as ``{label}:keys`` and ``{label}:mix`` from the
        experiment seed, so each is reproducible on its own and neither
        perturbs the other (nor any other consumer of the same seed).
        """
        return cls(spec, dataset,
                   key_rng=derive_rng(seed, f"{label}:keys"),
                   mix_rng=derive_rng(seed, f"{label}:mix"))

    def next_operation(self) -> Tuple[str, str, Optional[str]]:
        """Return ``(op_type, key, value)``; value is None for reads."""
        index = self._chooser.next_index()
        key = self.dataset.key(index)
        if self._rng.random() < self.spec.read_proportion:
            self.reads_generated += 1
            return "read", key, None
        self.updates_generated += 1
        self._chooser.notify_insert(index)
        return "update", key, self.dataset.random_value()
