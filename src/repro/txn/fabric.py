"""Assembly of the transaction layer over a built Cassandra cluster.

``build_txn_fabric`` wires one :class:`TxnParticipant` next to every storage
replica, a coordinator group with deterministic failover order, and a
:class:`TransactionManager` routed through a health-tracking balancer.  The
resulting :class:`TxnFabric` also owns the post-run **atomicity audit**: the
log- and table-level invariant checks (no partial commits, no lost acked
commits, aborted transactions applied nowhere) that every fig16 cell and
the property tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.cluster_spec import BuiltCluster
from repro.sim.topology import Region
from repro.txn.balancer import LoadBalancer
from repro.txn.config import TxnConfig
from repro.txn.coordinator import TwoPhaseCommitCoordinator
from repro.txn.log import TxnState
from repro.txn.manager import TransactionManager
from repro.txn.participant import TxnParticipant

#: Naming scheme: participant colocated with replica ``cassandra-0-FRK`` is
#: ``txn-part-cassandra-0-FRK``; coordinators are ``txn-coord-{i}-{region}``.
PARTICIPANT_PREFIX = "txn-part-"
COORDINATOR_PREFIX = "txn-coord-"


@dataclass
class TxnFabric:
    """The wired transaction layer: participants, coordinators, manager."""

    built: BuiltCluster
    config: TxnConfig
    participants: Dict[str, TxnParticipant]
    coordinators: List[TwoPhaseCommitCoordinator]
    manager: TransactionManager
    balancer: LoadBalancer

    # -- lookups -------------------------------------------------------------
    def participant_for_replica(self, replica_name: str) -> TxnParticipant:
        return self.participants[PARTICIPANT_PREFIX + replica_name]

    def active_coordinator(self) -> Optional[TwoPhaseCommitCoordinator]:
        """The live coordinator with the highest epoch claiming leadership."""
        actives = [c for c in self.coordinators if c.active and c.alive]
        if not actives:
            return None
        return max(actives, key=lambda c: c.epoch)

    def owners_of(self, key: str) -> Tuple[str, ...]:
        return tuple(PARTICIPANT_PREFIX + name for name in
                     self.built.cluster.partitioner.replicas_for(key))

    # -- recovery metrics ----------------------------------------------------
    def time_to_recover_ms(self) -> Optional[float]:
        """Duration of the most recent completed coordinator takeover."""
        durations = [c.time_to_recover_ms() for c in self.coordinators
                     if c.time_to_recover_ms() is not None]
        return durations[-1] if durations else None

    def total_takeovers(self) -> int:
        return sum(c.takeovers for c in self.coordinators)

    # -- atomicity audit -----------------------------------------------------
    def audit(self) -> Dict[str, Any]:
        """Check the atomicity invariants against logs and replica tables.

        Returns a dict of violation counts (all zero on a correct run):

        * ``partial_commits`` — transactions some participant committed and
          another aborted;
        * ``lost_acked_commits`` — client-acked commits missing a commit
          record or table application on some owner;
        * ``aborted_applied`` — aborted transactions whose writes reached a
          replica table;
        * ``acked_abort_committed`` — client-acked aborts that nevertheless
          committed somewhere;
        * ``stuck_locks`` / ``in_doubt`` — prepare locks or undecided
          transactions still outstanding (a drained, healed run has none).
        """
        states_by_txn: Dict[str, set] = {}
        for participant in self.participants.values():
            for record in participant.log.records():
                states_by_txn.setdefault(record.txn_id, set()).add(record.state)
        partial_commits = [
            txn_id for txn_id, states in sorted(states_by_txn.items())
            if TxnState.COMMITTED in states and TxnState.ABORTED in states]

        lost_acked = []
        for txn_id, info in sorted(self.manager.acked_commits.items()):
            timestamp = tuple(info["timestamp"])
            for key, _value in sorted(info["writes"].items()):
                for owner in self.owners_of(key):
                    participant = self.participants[owner]
                    record = participant.log.get(txn_id)
                    if record is None or record.state != TxnState.COMMITTED:
                        lost_acked.append((txn_id, owner, key, "no-record"))
                        continue
                    stored = participant.replica.table.get(key)
                    if stored is None or stored.timestamp < timestamp:
                        lost_acked.append((txn_id, owner, key, "not-applied"))

        aborted_applied = []
        for name, participant in sorted(self.participants.items()):
            for record in participant.log.records():
                if record.state == TxnState.ABORTED \
                        and record.txn_id in participant.applied:
                    aborted_applied.append((record.txn_id, name))

        acked_abort_committed = [
            txn_id for txn_id in sorted(self.manager.acked_aborts)
            if TxnState.COMMITTED in states_by_txn.get(txn_id, set())]

        stuck_locks = sum(len(p.locks) for p in self.participants.values())
        in_doubt = sum(len(p.log.in_doubt()) for p in self.participants.values())

        return {
            "partial_commits": len(partial_commits),
            "partial_commit_txns": partial_commits,
            "lost_acked_commits": len(lost_acked),
            "lost_acked_details": lost_acked,
            "aborted_applied": len(aborted_applied),
            "aborted_applied_details": aborted_applied,
            "acked_abort_committed": len(acked_abort_committed),
            "stuck_locks": stuck_locks,
            "in_doubt": in_doubt,
        }

    def assert_atomic(self, allow_in_doubt: bool = False) -> Dict[str, Any]:
        """Run :meth:`audit` and raise on any hard invariant violation."""
        report = self.audit()
        problems = []
        if report["partial_commits"]:
            problems.append(f"partial commits: {report['partial_commit_txns']}")
        if report["lost_acked_commits"]:
            problems.append(
                f"lost acked commits: {report['lost_acked_details'][:5]}")
        if report["aborted_applied"]:
            problems.append(
                f"aborted txns applied: {report['aborted_applied_details'][:5]}")
        if report["acked_abort_committed"]:
            problems.append(
                f"acked aborts committed: {report['acked_abort_committed']}")
        if not allow_in_doubt and (report["stuck_locks"] or report["in_doubt"]):
            problems.append(
                f"undrained state: {report['stuck_locks']} locks, "
                f"{report['in_doubt']} in-doubt txns")
        if problems:
            raise AssertionError("atomicity audit failed: " +
                                 "; ".join(problems))
        return report


def build_txn_fabric(built: BuiltCluster, config: Optional[TxnConfig] = None,
                     coordinator_count: int = 2,
                     manager_region: str = Region.IRL,
                     coordinator_regions: Sequence[str] = (
                         Region.FRK, Region.IRL, Region.VRG),
                     ) -> TxnFabric:
    """Wire the transaction layer onto a built cluster.

    Construction order (participants → coordinators → manager) is fixed:
    node registration order is part of the determinism contract.
    """
    if coordinator_count < 1:
        raise ValueError("need at least one coordinator")
    config = config if config is not None else TxnConfig()
    env = built.env
    cluster = built.cluster

    participants: Dict[str, TxnParticipant] = {}
    for replica in cluster.replicas:
        name = PARTICIPANT_PREFIX + replica.name
        participants[name] = TxnParticipant(
            name, replica.region, env.network, replica, config)

    coordinator_names = [
        f"{COORDINATOR_PREFIX}{i}-{coordinator_regions[i % len(coordinator_regions)]}"
        for i in range(coordinator_count)]

    def owners_of(key: str) -> Tuple[str, ...]:
        return tuple(PARTICIPANT_PREFIX + name
                     for name in cluster.partitioner.replicas_for(key))

    coordinators: List[TwoPhaseCommitCoordinator] = []
    for i, name in enumerate(coordinator_names):
        region = coordinator_regions[i % len(coordinator_regions)]
        coordinators.append(TwoPhaseCommitCoordinator(
            name, region, env.network, config, index=i,
            peers=coordinator_names, participants=list(participants),
            owners_of=owners_of))

    balancer = LoadBalancer(
        coordinator_names,
        failure_threshold=config.breaker_failure_threshold,
        reset_timeout_ms=config.breaker_reset_ms)
    manager = TransactionManager(
        f"txn-client-{manager_region}", manager_region, env.network,
        coordinator_names, config, balancer=balancer)

    return TxnFabric(built=built, config=config, participants=participants,
                     coordinators=coordinators, manager=manager,
                     balancer=balancer)


def txn_aliases(fabric: TxnFabric) -> Dict[str, str]:
    """Selector → node-name map for the fault injector.

    ``txn-coordinator:<i>`` follows the coordinator failover order (0 is the
    initially active one); ``txn-participant:<i>`` follows replica order.
    """
    aliases = {f"txn-coordinator:{i}": coord.name
               for i, coord in enumerate(fabric.coordinators)}
    for i, replica in enumerate(fabric.built.cluster.replicas):
        aliases[f"txn-participant:{i}"] = PARTICIPANT_PREFIX + replica.name
    return aliases
