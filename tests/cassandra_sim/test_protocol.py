"""End-to-end protocol tests for the simulated Cassandra cluster."""

import pytest

from repro.cassandra_sim.cluster import CassandraCluster
from repro.cassandra_sim.config import CassandraConfig
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region, Topology


def _env():
    return SimEnvironment(seed=9, topology=Topology(jitter_fraction=0.0))


def _cluster(env, **config_kwargs):
    cluster = CassandraCluster(env, CassandraConfig(**config_kwargs))
    cluster.preload({f"key{i}": f"value{i}" for i in range(10)})
    return cluster


class TestReads:
    def test_r1_read_returns_preloaded_value(self):
        env = _env()
        cluster = _cluster(env)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        results = []
        client.read("key3", r=1, on_final=results.append)
        env.run_until_idle()
        assert results[0]["value"] == "value3"
        assert results[0]["found"]

    def test_missing_key_reported_not_found(self):
        env = _env()
        cluster = _cluster(env)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        results = []
        client.read("missing", r=2, on_final=results.append)
        env.run_until_idle()
        assert results[0]["value"] is None
        assert not results[0]["found"]

    def test_quorum_size_drives_latency(self):
        latencies = {}
        for r in (1, 2, 3):
            env = _env()
            cluster = _cluster(env)
            client = cluster.add_client("c", Region.IRL, Region.FRK)
            results = []
            client.read("key1", r=r, on_final=results.append)
            env.run_until_idle()
            latencies[r] = results[0]["latency_ms"]
        assert latencies[1] < latencies[2] < latencies[3]
        # R=1 ≈ client-coordinator RTT; R=3 additionally waits for Virginia.
        assert latencies[1] == pytest.approx(20.0, abs=5.0)
        assert latencies[3] > 100.0

    def test_icg_read_produces_preliminary_then_final(self):
        env = _env()
        cluster = _cluster(env)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        events = []
        client.read("key1", r=2, icg=True,
                    on_preliminary=lambda resp: events.append(("p", resp)),
                    on_final=lambda resp: events.append(("f", resp)))
        env.run_until_idle()
        kinds = [kind for kind, _ in events]
        assert kinds == ["p", "f"]
        prelim, final = events[0][1], events[1][1]
        assert prelim["latency_ms"] < final["latency_ms"]
        assert prelim["value"] == final["value"] == "value1"

    def test_preliminary_counter_increments(self):
        env = _env()
        cluster = _cluster(env)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        client.read("key1", r=2, icg=True)
        env.run_until_idle()
        assert cluster.total_preliminaries_flushed() == 1


class TestWrites:
    def test_write_then_strong_read(self):
        env = _env()
        cluster = _cluster(env)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        client.write("key1", "updated", w=1)
        env.run_until_idle()
        results = []
        client.read("key1", r=3, on_final=results.append)
        env.run_until_idle()
        assert results[0]["value"] == "updated"

    def test_write_eventually_reaches_all_replicas(self):
        env = _env()
        cluster = _cluster(env)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        client.write("key5", "new-value", w=1)
        env.run_until_idle()
        for replica in cluster.replicas:
            assert replica.table.read("key5").value == "new-value"

    def test_w1_acks_before_full_replication(self):
        env = _env()
        cluster = _cluster(env)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        acked_at = []
        client.write("key1", "v2", w=1,
                     on_final=lambda resp: acked_at.append(env.now()))
        # Run only a little past the ack: the VRG replica must still be stale.
        env.run(until=45.0)
        assert acked_at and acked_at[0] < 45.0
        vrg_replica = cluster.replica_in(Region.VRG)
        assert vrg_replica.table.read("key1").value == "value1"
        env.run_until_idle()
        assert vrg_replica.table.read("key1").value == "v2"

    def test_w2_waits_for_remote_ack(self):
        latencies = {}
        for w in (1, 2):
            env = _env()
            cluster = _cluster(env)
            client = cluster.add_client("c", Region.IRL, Region.FRK)
            results = []
            client.write("key1", "v", w=w, on_final=results.append)
            env.run_until_idle()
            latencies[w] = results[0]["latency_ms"]
        assert latencies[2] > latencies[1]

    def test_concurrent_writes_converge_via_lww(self):
        env = _env()
        cluster = _cluster(env)
        c1 = cluster.add_client("c1", Region.IRL, Region.FRK)
        c2 = cluster.add_client("c2", Region.VRG, Region.VRG)
        c1.write("key1", "from-frk", w=1)
        c2.write("key1", "from-vrg", w=1)
        env.run_until_idle()
        values = {replica.table.read("key1").value
                  for replica in cluster.replicas}
        assert len(values) == 1  # all replicas converged to the same winner


class TestStalenessAndConfirmation:
    def test_preliminary_can_be_stale_while_final_is_fresh(self):
        env = _env()
        cluster = _cluster(env)
        # The writer talks to the VRG coordinator, the reader to FRK: the
        # fresh value reaches IRL/VRG before FRK applies it.
        writer = cluster.add_client("writer", Region.VRG, Region.VRG)
        reader = cluster.add_client("reader", Region.IRL, Region.FRK)
        writer.write("key2", "fresh", w=1)
        events = []
        # Issue the ICG read while replication to FRK is still in flight.
        env.scheduler.schedule(25.0, lambda: reader.read(
            "key2", r=3, icg=True,
            on_preliminary=lambda r: events.append(("p", r["value"])),
            on_final=lambda r: events.append(("f", r["value"]))))
        env.run_until_idle()
        assert ("p", "value2") in events       # stale preliminary
        assert ("f", "fresh") in events        # correct final

    def test_confirmation_optimization_sends_confirmation(self):
        env = _env()
        cluster = CassandraCluster(env, CassandraConfig(
            confirmation_optimization=True))
        cluster.preload({"key1": "value1"})
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        finals = []
        client.read("key1", r=2, icg=True, on_final=finals.append)
        env.run_until_idle()
        assert finals[0]["is_confirmation"]
        assert finals[0]["value"] == "value1"
        assert cluster.total_confirmations_sent() == 1

    def test_confirmation_uses_fewer_bytes_than_full_final(self):
        sizes = {}
        for optimized in (False, True):
            env = _env()
            cluster = CassandraCluster(env, CassandraConfig(
                confirmation_optimization=optimized))
            cluster.preload({"key1": "value1" * 20})
            client = cluster.add_client("c", Region.IRL, Region.FRK)
            client.read("key1", r=2, icg=True)
            env.run_until_idle()
            coordinator = cluster.replica_in(Region.FRK)
            sizes[optimized] = env.network.link_stats(
                coordinator.name, client.name).bytes
        assert sizes[True] < sizes[False]

    def test_read_repair_fixes_stale_replica(self):
        env = _env()
        cluster = CassandraCluster(env, CassandraConfig(read_repair=True))
        cluster.preload({"key1": "old"})
        # Make the VRG replica stale by applying a newer version elsewhere.
        from repro.cassandra_sim.versions import VersionedValue
        fresh = VersionedValue("fresh", (100.0, "manual", 1))
        cluster.replica_in(Region.FRK).table.apply("key1", fresh)
        cluster.replica_in(Region.IRL).table.apply("key1", fresh)
        client = cluster.add_client("c", Region.IRL, Region.FRK)
        client.read("key1", r=3)
        env.run_until_idle()
        assert cluster.replica_in(Region.VRG).table.read("key1").value == "fresh"


class TestClusterAssembly:
    def test_replica_in_unknown_region_raises(self):
        env = _env()
        cluster = _cluster(env)
        with pytest.raises(KeyError):
            cluster.replica_in("mars-east-1")

    def test_too_few_regions_rejected(self):
        env = _env()
        with pytest.raises(ValueError):
            CassandraCluster(env, CassandraConfig(replication_factor=3),
                             replica_regions=(Region.IRL, Region.FRK))

    def test_quorum_helper(self):
        assert CassandraConfig(replication_factor=3).quorum() == 2
        assert CassandraConfig(replication_factor=5).quorum() == 3

    def test_clients_tracked(self):
        env = _env()
        cluster = _cluster(env)
        cluster.add_client("c1", Region.IRL, Region.FRK)
        cluster.add_client("c2", Region.FRK, Region.VRG)
        assert len(cluster.clients) == 2
