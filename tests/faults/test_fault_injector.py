"""Tests for the FaultInjector driving schedules against an environment."""

import pytest

from repro.faults import FaultEvent, FaultInjector, FaultSchedule, get_scenario
from repro.sim.environment import SimEnvironment
from repro.sim.node import Node
from repro.sim.topology import Region, Topology


class Recorder(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def handle_message(self, message):
        self.received.append(message)


@pytest.fixture
def flat_env():
    return SimEnvironment(seed=3, topology=Topology(jitter_fraction=0.0))


class TestResolution:
    def test_alias_resolution(self, flat_env):
        Recorder("node-a", Region.IRL, flat_env.network)
        injector = FaultInjector(flat_env, aliases={"replica:0": "node-a"})
        assert injector.resolve("replica:0") == "node-a"

    def test_plain_node_name_passes_through(self, flat_env):
        Recorder("node-a", Region.IRL, flat_env.network)
        injector = FaultInjector(flat_env)
        assert injector.resolve("node-a") == "node-a"

    def test_region_selector_passes_through(self, flat_env):
        injector = FaultInjector(flat_env)
        assert injector.resolve("region:eu-west-1") == "region:eu-west-1"

    def test_unresolvable_target_raises(self, flat_env):
        injector = FaultInjector(flat_env)
        with pytest.raises(KeyError):
            injector.resolve("ghost")

    def test_mixed_partition_endpoints_rejected(self, flat_env):
        Recorder("node-a", Region.IRL, flat_env.network)
        injector = FaultInjector(flat_env)
        with pytest.raises(ValueError):
            injector.partition("node-a", "region:eu-west-1")


class TestImmediateActions:
    def test_crash_and_recover(self, flat_env):
        node = Recorder("node-a", Region.IRL, flat_env.network)
        injector = FaultInjector(flat_env)
        injector.crash("node-a")
        assert not node.alive
        injector.recover("node-a")
        assert node.alive
        assert [f.action for f in injector.log] == ["crash", "recover"]

    def test_slow_and_restore(self, flat_env):
        node = Recorder("node-a", Region.IRL, flat_env.network)
        injector = FaultInjector(flat_env)
        injector.slow("node-a", 8.0)
        assert node.slowdown_factor == 8.0
        injector.restore_speed("node-a")
        assert node.slowdown_factor == 1.0

    def test_region_partition_and_heal(self, flat_env):
        a = Recorder("a", Region.IRL, flat_env.network)
        b = Recorder("b", Region.FRK, flat_env.network)
        injector = FaultInjector(flat_env)
        injector.partition(f"region:{Region.IRL}", f"region:{Region.FRK}")
        a.send("b", "lost")
        flat_env.run_until_idle()
        assert b.received == []
        injector.heal(f"region:{Region.IRL}", f"region:{Region.FRK}")
        a.send("b", "ok")
        flat_env.run_until_idle()
        assert [m.kind for m in b.received] == ["ok"]


class TestArming:
    def test_armed_schedule_fires_on_sim_clock(self, flat_env):
        node = Recorder("node-a", Region.IRL, flat_env.network)
        schedule = FaultSchedule((
            FaultEvent(100.0, "crash", "node-a"),
            FaultEvent(300.0, "recover", "node-a"),
        ))
        injector = FaultInjector(flat_env, schedule=schedule)
        assert injector.arm() == 2
        flat_env.run(until=150.0)
        assert not node.alive
        flat_env.run(until=350.0)
        assert node.alive
        assert [(f.time_ms, f.action) for f in injector.log] == [
            (100.0, "crash"), (300.0, "recover")]

    def test_arm_with_offset(self, flat_env):
        node = Recorder("node-a", Region.IRL, flat_env.network)
        schedule = FaultSchedule((FaultEvent(100.0, "crash", "node-a"),))
        injector = FaultInjector(flat_env, schedule=schedule)
        injector.arm(offset_ms=1_000.0)
        flat_env.run(until=900.0)
        assert node.alive
        flat_env.run(until=1_200.0)
        assert not node.alive

    def test_arm_accepts_scenario_objects(self, flat_env):
        node = Recorder("node-a", Region.IRL, flat_env.network)
        scenario = get_scenario("replica-crash", at_ms=50.0, duration_ms=100.0)
        injector = FaultInjector(flat_env, aliases={"replica:1": "node-a"})
        assert injector.arm(scenario) == 2
        flat_env.run(until=75.0)
        assert not node.alive
        flat_env.run_until_idle()
        assert node.alive

    def test_arm_empty_schedule_is_noop(self, flat_env):
        injector = FaultInjector(flat_env)
        assert injector.arm() == 0
