"""Tests for the shared retry/backoff, deadline, and circuit-breaker policies."""

import math

import pytest

from repro.core.retry import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_bounded_attempts(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(0)
        assert policy.should_retry(1)
        assert not policy.should_retry(2)

    def test_zero_retries_never_retries(self):
        assert not RetryPolicy(max_retries=0).should_retry(0)

    def test_immediate_policy_has_zero_backoff(self):
        policy = RetryPolicy.immediate(3)
        assert policy.max_retries == 3
        for attempt in (1, 2, 3):
            assert policy.backoff_ms(attempt) == 0.0
            assert policy.backoff_upper_bound_ms(attempt) == 0.0

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(max_retries=4, base_delay_ms=10.0,
                             multiplier=2.0, cap_ms=35.0)
        assert policy.backoff_ms(1) == 10.0
        assert policy.backoff_ms(2) == 20.0
        assert policy.backoff_ms(3) == 35.0  # capped below 40
        assert policy.backoff_ms(4) == 35.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(0)

    def test_jitter_is_deterministic_per_seed_and_label(self):
        make = lambda label: RetryPolicy(  # noqa: E731
            max_retries=3, base_delay_ms=10.0, jitter_ms=5.0,
            seed=7, label=label)
        a = [make("x").backoff_ms(i) for i in (1, 2, 3)]
        b = [make("x").backoff_ms(i) for i in (1, 2, 3)]
        c = [make("y").backoff_ms(i) for i in (1, 2, 3)]
        assert a == b
        assert a != c
        for attempt, delay in zip((1, 2, 3), a):
            base = min(1_000.0, 10.0 * 2.0 ** (attempt - 1))
            assert base <= delay <= base + 5.0

    def test_jitter_stream_is_private_to_the_instance(self):
        a = RetryPolicy(base_delay_ms=1.0, jitter_ms=5.0, seed=3)
        b = RetryPolicy(base_delay_ms=1.0, jitter_ms=5.0, seed=3)
        first = a.backoff_ms(1)
        a.backoff_ms(1)  # advance a's stream only
        assert b.backoff_ms(1) == first

    def test_total_budget_is_worst_case(self):
        policy = RetryPolicy(max_retries=2, base_delay_ms=10.0,
                             multiplier=2.0, cap_ms=1_000.0)
        # 3 attempts x 100ms timeout + backoffs 10 + 20.
        assert policy.total_budget_ms(100.0) == 330.0

    def test_upper_bound_includes_jitter(self):
        policy = RetryPolicy(base_delay_ms=10.0, jitter_ms=4.0)
        assert policy.backoff_upper_bound_ms(1) == 14.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_ms=-0.1)


class TestDeadline:
    def test_default_is_infinite(self):
        deadline = Deadline()
        assert not deadline.expired(1e12)
        assert deadline.remaining_ms(1e12) == math.inf

    def test_none_budget_is_infinite(self):
        assert Deadline.after(100.0, None).expires_at_ms == math.inf

    def test_after_budget(self):
        deadline = Deadline.after(1_000.0, 250.0)
        assert deadline.expires_at_ms == 1_250.0
        assert deadline.remaining_ms(1_100.0) == 150.0
        assert not deadline.expired(1_249.9)
        assert deadline.expired(1_250.0)
        assert deadline.remaining_ms(2_000.0) == 0.0

    def test_clamp_timeout(self):
        deadline = Deadline.after(0.0, 100.0)
        assert deadline.clamp_timeout(0.0, 400.0) == 100.0
        assert deadline.clamp_timeout(80.0, 10.0) == 10.0
        assert deadline.clamp_timeout(150.0, 10.0) == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0, -1.0)


class TestCircuitBreaker:
    def test_closed_allows_traffic(self):
        breaker = CircuitBreaker(failure_threshold=2)
        assert breaker.allow(0.0)
        assert breaker.state == BreakerState.CLOSED

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_ms=100.0)
        breaker.record_failure(10.0)
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure(20.0)
        assert breaker.state == BreakerState.OPEN
        assert breaker.times_opened == 1
        assert breaker.is_open(50.0)
        assert not breaker.allow(50.0)

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert breaker.state == BreakerState.CLOSED

    def test_half_open_admits_single_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_ms=100.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(99.0)
        assert breaker.allow(100.0)          # the probe
        assert breaker.state == BreakerState.HALF_OPEN
        assert not breaker.allow(101.0)      # second request: refused
        assert breaker.probes_sent == 1

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_ms=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(100.0)
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.probes_succeeded == 1
        assert breaker.allow(100.0)

    def test_probe_failure_reopens_fresh_window(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_ms=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(100.0)
        breaker.record_failure(110.0)
        assert breaker.state == BreakerState.OPEN
        assert breaker.times_opened == 2
        assert not breaker.allow(209.0)
        assert breaker.allow(210.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_ms=-1.0)
