"""Zab-style atomic broadcast bookkeeping.

The leader assigns a monotonically increasing ``zxid`` to every write
transaction, broadcasts a proposal, collects acknowledgements, and commits
once a majority (including itself) has acknowledged.  Every server applies
committed transactions in strict zxid order, which is what gives the
replicated queue its total order.

This module holds the pure data structures; the message handling lives in
:mod:`repro.zookeeper_sim.server`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set


@dataclass(frozen=True)
class Transaction:
    """A state-mutating operation to be applied through Zab."""

    zxid: int
    op: str                      # "create" | "delete" | "set" | "dequeue"
    path: str
    data: Any = None
    sequential: bool = False
    #: Server that received the client request (it answers the client).
    origin_server: str = ""
    #: Client-visible request id at the origin server.
    origin_request: int = 0


@dataclass
class _Proposal:
    txn: Transaction
    acks: Set[str] = field(default_factory=set)
    committed: bool = False


class ProposalTracker:
    """Leader-side record of outstanding proposals."""

    def __init__(self, ensemble_size: int, next_zxid: int = 1) -> None:
        if ensemble_size < 1:
            raise ValueError("ensemble must have at least one server")
        self.ensemble_size = ensemble_size
        self._next_zxid = next_zxid
        self._proposals: Dict[int, _Proposal] = {}

    @property
    def quorum_size(self) -> int:
        return self.ensemble_size // 2 + 1

    def next_zxid(self) -> int:
        zxid = self._next_zxid
        self._next_zxid += 1
        return zxid

    def track(self, txn: Transaction) -> None:
        if txn.zxid in self._proposals:
            raise ValueError(f"zxid {txn.zxid} already tracked")
        self._proposals[txn.zxid] = _Proposal(txn=txn)

    def record_ack(self, zxid: int, server: str) -> bool:
        """Record an ack; returns True when the proposal just reached quorum."""
        proposal = self._proposals.get(zxid)
        if proposal is None or proposal.committed:
            return False
        proposal.acks.add(server)
        if len(proposal.acks) >= self.quorum_size:
            proposal.committed = True
            return True
        return False

    def transaction(self, zxid: int) -> Optional[Transaction]:
        proposal = self._proposals.get(zxid)
        return proposal.txn if proposal is not None else None

    def pending_transactions(self) -> List[Transaction]:
        """Uncommitted proposals in zxid order (for retransmission to a
        follower that joined or re-synced mid-stream)."""
        return [self._proposals[zxid].txn for zxid in sorted(self._proposals)
                if not self._proposals[zxid].committed]

    def pending_count(self) -> int:
        return sum(1 for p in self._proposals.values() if not p.committed)

    def forget(self, zxid: int) -> None:
        self._proposals.pop(zxid, None)


class CommitLog:
    """Per-server buffer applying committed transactions in zxid order."""

    def __init__(self) -> None:
        self._known: Dict[int, Transaction] = {}
        self._committed: Set[int] = set()
        self.last_applied = 0

    def learn(self, txn: Transaction) -> None:
        """Record a proposal's contents (from the leader's proposal message)."""
        self._known[txn.zxid] = txn

    def mark_committed(self, zxid: int) -> None:
        self._committed.add(zxid)

    def ready_transactions(self) -> List[Transaction]:
        """Pop every transaction that can now be applied, in zxid order."""
        ready: List[Transaction] = []
        while True:
            next_zxid = self.last_applied + 1
            if next_zxid in self._committed and next_zxid in self._known:
                ready.append(self._known.pop(next_zxid))
                self._committed.discard(next_zxid)
                self.last_applied = next_zxid
            else:
                break
        return ready

    def uncommitted_transactions(self) -> List[Transaction]:
        """Learned-but-unapplied transactions beyond ``last_applied``, in order.

        These are the proposals a new leader re-proposes under its own epoch
        (with fresh zxids) so the zxid sequence stays gapless.
        """
        return [self._known[zxid] for zxid in sorted(self._known)
                if zxid > self.last_applied]

    def has_backlog(self) -> bool:
        """Whether entries beyond ``last_applied`` are waiting to apply.

        Also prunes entries at or below ``last_applied`` (possible after a
        sync or snapshot advanced ``last_applied`` past learned proposals).
        """
        self._known = {z: t for z, t in self._known.items()
                       if z > self.last_applied}
        self._committed = {z for z in self._committed
                           if z > self.last_applied}
        return bool(self._known or self._committed)

    def discard_uncommitted(self) -> int:
        """Drop every entry beyond ``last_applied``; returns how many.

        Called when a new leader takes over: proposals of the dead epoch that
        never reached this server as applicable transactions are abandoned
        (the origin's client will time out and retry through the new leader).
        """
        stale = [z for z in self._known if z > self.last_applied]
        for zxid in stale:
            del self._known[zxid]
        dropped_commits = [z for z in self._committed if z > self.last_applied]
        for zxid in dropped_commits:
            self._committed.discard(zxid)
        return len(set(stale) | set(dropped_commits))
