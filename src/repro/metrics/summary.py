"""Plain-text table formatting for benchmark reports.

The benchmark harnesses print the same rows/series the paper's figures show;
these helpers keep that output aligned and readable without any plotting
dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_row(cells: Sequence[Any], widths: Sequence[int]) -> str:
    parts = []
    for cell, width in zip(cells, widths):
        parts.append(_format_cell(cell).rjust(width))
    return "  ".join(parts)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned table with a header rule; returns a string."""
    rows = [list(row) for row in rows]
    columns = len(headers)
    widths: List[int] = [len(str(h)) for h in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(_format_cell(cell)))
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(headers, widths))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(format_row(row, widths))
    return "\n".join(lines)
