"""A small LRU client-side cache with write-through coherence.

The Reddit example in Section 4.1 shows applications hand-rolling cache
access and bypassing; the :class:`~repro.bindings.cached_store.CachedStoreBinding`
hides the same logic behind the Correctables API, and this class is the cache
it manages.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional, Tuple


class ClientCache:
    """An LRU cache with hit/miss statistics."""

    #: Sentinel distinguishing "cached None" from "not cached".
    _MISSING = object()

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a hit refreshes the entry's recency."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return True, self._entries[key]
        self.misses += 1
        return False, None

    def get(self, key: str, default: Any = None) -> Any:
        """Return the cached value or ``default`` (counts as hit/miss)."""
        hit, value = self.lookup(key)
        return value if hit else default

    def put(self, key: str, value: Any) -> None:
        """Insert or refresh an entry, evicting the least recently used if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop an entry; returns True if it was present."""
        if key in self._entries:
            del self._entries[key]
            self.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
