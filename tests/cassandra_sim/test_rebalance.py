"""Live ring-rebalance tests: join/decommission/remove under traffic.

These exercise the full orchestration path — bootstrap → stream → announce →
serve — through the simulated scheduler, including the safety properties the
protocol promises: no acknowledged write is ever lost across an ownership
change, stale-epoch requests are retried against the fresh preference list,
and retired coordinators hand their clients over to a fallback contact.
"""

import pytest

from repro.cassandra_sim.cluster import CassandraCluster
from repro.cassandra_sim.config import CassandraConfig
from repro.cassandra_sim.versions import resolve
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region, Topology


def _env(seed=9):
    return SimEnvironment(seed=seed, topology=Topology(jitter_fraction=0.0))


def six_node_cluster(env, records=60, **config_kwargs):
    """A 6-node, RF=3 cluster (two nodes per region) with preloaded data."""
    regions = (Region.FRK, Region.IRL, Region.VRG)
    nodes = [(f"cassandra-{i}-{regions[i % 3]}", regions[i % 3])
             for i in range(6)]
    cluster = CassandraCluster(env, CassandraConfig(**config_kwargs),
                               nodes=nodes)
    cluster.preload({f"key{i}": f"value{i}" for i in range(records)})
    return cluster


def newest_at_owners(cluster, key):
    """Resolve ``key`` across its current owners' local tables."""
    return resolve([cluster.replica_by_name(name).table.get(key)
                    for name in cluster.partitioner.replicas_for(key)])


class TestJoin:
    def test_join_completes_and_serves(self):
        env = _env()
        cluster = six_node_cluster(env)
        operation = cluster.join_node("cassandra-6-" + Region.FRK, Region.FRK)
        env.run_until_idle()
        assert operation.done
        assert cluster.partitioner.version == 1
        joiner = cluster.replica_by_name("cassandra-6-" + Region.FRK)
        assert joiner.ring_state == "serving"
        assert joiner in cluster.replicas

    def test_joiner_holds_every_key_it_now_owns(self):
        env = _env()
        cluster = six_node_cluster(env)
        name = "cassandra-6-" + Region.FRK
        cluster.join_node(name, Region.FRK)
        env.run_until_idle()
        joiner = cluster.replica_by_name(name)
        owned = [f"key{i}" for i in range(60)
                 if cluster.partitioner.is_replica(name, f"key{i}")]
        assert owned  # 8 vnodes on a 7-node ring: the joiner owns something
        for key in owned:
            version = joiner.table.get(key)
            assert version is not None, key
            assert version.value == key.replace("key", "value")

    def test_join_streams_only_gained_ranges(self):
        env = _env()
        cluster = six_node_cluster(env)
        operation = cluster.join_node("cassandra-6-" + Region.FRK, Region.FRK)
        env.run_until_idle()
        streamed = cluster.total_keys_streamed()
        joiner_rows = len(cluster.replica_by_name(
            "cassandra-6-" + Region.FRK).table)
        assert streamed == joiner_rows  # nothing beyond the plan moved
        assert operation.change.total_ranges() > 0

    def test_scheduled_join_starts_at_requested_time(self):
        env = _env()
        cluster = six_node_cluster(env)
        operation = cluster.join_node("cassandra-6-" + Region.FRK, Region.FRK,
                                      at_ms=500.0)
        env.run_until_idle()
        assert operation.started_at == 500.0
        assert operation.completed_at > 500.0

    def test_bootstrapping_node_rejects_client_ops(self):
        env = _env()
        cluster = six_node_cluster(env)
        name = "cassandra-6-" + Region.FRK
        # Freeze the operation mid-bootstrap: plan+begin but stream slowly.
        cluster.config.stream_scan_ms = 10_000.0
        cluster.join_node(name, Region.FRK)
        env.run(until=50.0)
        joiner = cluster.replica_by_name(name)
        assert joiner.ring_state == "bootstrapping"
        client = cluster.add_client("c", Region.FRK, contact_region=Region.FRK)
        client.contact = name          # force the bootstrapping contact
        client._contacts = [name]      # (and the dispatch rotation)
        results = []
        client.read("key1", r=1, on_final=results.append)
        env.run(until=100.0)
        assert results and "error" in results[0]


class TestDecommission:
    def test_decommission_retires_node(self):
        env = _env()
        cluster = six_node_cluster(env)
        leaving = cluster.replicas[5].name
        operation = cluster.decommission_node(leaving)
        env.run_until_idle()
        assert operation.done
        replica = cluster.replica_by_name(leaving)
        assert replica.ring_state == "retired"
        assert replica not in cluster.replicas
        assert not cluster.partitioner.contains(leaving)
        assert all(name != leaving
                   for key in (f"key{i}" for i in range(60))
                   for name in cluster.partitioner.replicas_for(key))

    def test_every_key_still_resolvable_after_decommission(self):
        env = _env()
        cluster = six_node_cluster(env)
        cluster.decommission_node(cluster.replicas[5].name)
        env.run_until_idle()
        for i in range(60):
            version = newest_at_owners(cluster, f"key{i}")
            assert version is not None and version.value == f"value{i}"

    def test_forced_remove_rereplicates_from_survivors(self):
        env = _env()
        cluster = six_node_cluster(env)
        dead = cluster.replicas[4]
        dead.crash()
        operation = cluster.remove_node(dead.name)
        env.run_until_idle()
        assert operation.done
        assert not cluster.partitioner.contains(dead.name)
        for i in range(60):
            version = newest_at_owners(cluster, f"key{i}")
            assert version is not None and version.value == f"value{i}"

    def test_removal_below_rf_rejected(self):
        env = _env()
        cluster = CassandraCluster(env, CassandraConfig())
        with pytest.raises(ValueError):
            cluster.decommission_node(cluster.replicas[0].name)


class TestSafetyUnderTraffic:
    def drive(self, cluster, env, event, writes=150, until=4_000.0):
        """Interleave writes with ``event`` at t=300; return acked stamps."""
        client = cluster.add_client(
            "c", Region.IRL, contact_region=Region.FRK,
            fallbacks=True)
        acked = {}

        def write_one(i):
            key = f"key{i % 60}"

            def on_ack(resp, key=key):
                if "error" not in resp and resp.get("timestamp"):
                    previous = acked.get(key)
                    if previous is None or resp["timestamp"] > previous:
                        acked[key] = resp["timestamp"]

            client.write(key, f"new-{i}", w=1, on_final=on_ack)

        for i in range(writes):
            env.scheduler.schedule_call_at(5.0 * i, write_one, (i,))
        event()
        env.run(until=until)
        env.run_until_idle()
        return acked

    def test_zero_lost_acked_writes_across_join(self):
        env = _env()
        cluster = six_node_cluster(env)
        acked = self.drive(
            cluster, env,
            lambda: cluster.join_node("cassandra-6-" + Region.FRK,
                                      Region.FRK, at_ms=300.0))
        assert acked
        for key, timestamp in acked.items():
            version = newest_at_owners(cluster, key)
            assert version is not None and version.timestamp >= timestamp, key

    def test_zero_lost_acked_writes_across_decommission(self):
        env = _env()
        cluster = six_node_cluster(env)
        leaving = cluster.replicas[5].name
        acked = self.drive(
            cluster, env,
            lambda: cluster.decommission_node(leaving, at_ms=300.0))
        assert acked
        for key, timestamp in acked.items():
            version = newest_at_owners(cluster, key)
            assert version is not None and version.timestamp >= timestamp, key

    def test_stale_epoch_reads_are_retried_not_failed(self):
        env = _env()
        cluster = six_node_cluster(env)
        client = cluster.add_client("c", Region.IRL,
                                    contact_region=Region.FRK, fallbacks=True)
        results = []

        def read_one(i):
            client.read(f"key{i % 60}", r=2, icg=True,
                        on_final=results.append)

        for i in range(120):
            env.scheduler.schedule_call_at(5.0 * i, read_one, (i,))
        cluster.decommission_node(cluster.replicas[5].name, at_ms=250.0)
        env.run_until_idle()
        assert len(results) == 120
        assert all("error" not in resp for resp in results)
        for resp in results:
            assert resp["value"].startswith("value")

    def test_client_fails_over_from_retired_coordinator(self):
        env = _env()
        cluster = six_node_cluster(env)
        leaving = cluster.replicas[0]  # the FRK contact replica
        client = cluster.add_client("c", Region.IRL,
                                    contact_region=Region.FRK, fallbacks=True)
        assert client.contact == leaving.name
        cluster.decommission_node(leaving.name)
        env.run_until_idle()
        results = []
        client.read("key1", r=2, on_final=results.append)
        env.run_until_idle()
        assert results[0].get("value") == "value1"
        assert "error" not in results[0]
        assert client.retries >= 1

    def test_writes_forwarded_to_pending_owners(self):
        env = _env()
        cluster = six_node_cluster(env)
        cluster.config.stream_scan_ms = 200.0  # stretch the bootstrap window
        client = cluster.add_client("c", Region.IRL,
                                    contact_region=Region.FRK)
        cluster.join_node("cassandra-6-" + Region.FRK, Region.FRK)
        for i in range(60):
            env.scheduler.schedule_call_at(
                10.0 + i, client.write, (f"key{i}", f"fresh-{i}", 1))
        env.run_until_idle()
        assert cluster.total_writes_forwarded() > 0
        # Every key the joiner now owns reflects the newest write.
        name = "cassandra-6-" + Region.FRK
        joiner = cluster.replica_by_name(name)
        for i in range(60):
            if cluster.partitioner.is_replica(name, f"key{i}"):
                assert joiner.table.get(f"key{i}").value == f"fresh-{i}"


class TestClusterSurface:
    def test_rebalance_objects_recorded(self):
        env = _env()
        cluster = six_node_cluster(env)
        cluster.join_node("cassandra-6-" + Region.FRK, Region.FRK)
        env.run_until_idle()
        assert len(cluster.rebalances) == 1
        assert cluster.rebalances[0].done
        assert cluster.rebalances[0].duration_ms() > 0

    def test_sequential_rebalances_compose(self):
        env = _env()
        cluster = six_node_cluster(env)
        name = "cassandra-6-" + Region.FRK
        cluster.join_node(name, Region.FRK, at_ms=10.0)
        cluster.decommission_node(name, at_ms=2_000.0)
        env.run_until_idle()
        assert cluster.partitioner.version == 2
        assert not cluster.partitioner.contains(name)
        for i in range(60):
            version = newest_at_owners(cluster, f"key{i}")
            assert version is not None and version.value == f"value{i}"

    def test_explicit_nodes_constructor_validates_rf(self):
        env = _env()
        with pytest.raises(ValueError):
            CassandraCluster(env, CassandraConfig(),
                             nodes=[("a", Region.FRK), ("b", Region.IRL)])


@pytest.mark.slow
class TestMillionKeyRebalance:
    """Tier-2 scale: the 4M-key Figure 15 join cell end to end.

    At this record count the preload flips every replica to the columnar
    backend, the join streams >1M keys onto the joiner, and the standard
    zero-lost-acked-writes audit runs over the whole rebalance.  This is
    the only test that drives ``ColumnarTable`` at the scale it exists for.
    """

    def test_four_million_key_join_cell(self):
        from repro.bench.fig15_rebalance import (
            MILLION_KEY_RECORD_COUNT, run_fig15_million)

        (record,) = run_fig15_million()
        # 4M records is far past columnar_threshold_keys: every replica
        # (the joiner included) must be columnar, and the join must have
        # committed a new ring version after streaming real ranges.
        assert record["columnar"] is True
        assert record["ring_version"] == 1
        assert record["keys_streamed"] > MILLION_KEY_RECORD_COUNT // 10
        # Safety under traffic: acked client writes rode across the
        # ownership change and none of them was lost.
        assert record["acked_writes"] > 0
        assert record["lost_acked_writes"] == 0
        assert record["failed_ops"] == 0
