#!/usr/bin/env python
"""Open-loop load: drive a store past saturation and watch it degrade.

Every paper figure uses a *closed loop* — each client thread waits for its
previous operation before issuing the next — which by construction can never
overload the store.  This example uses the open-loop engine instead: a
deterministic Poisson arrival process decides when simulated users show up,
whether or not the store has kept pace, and an admission controller decides
what happens to the excess.

The sweep below offers increasing load to a primary/backup store through a
pool of 500 lightweight client sessions (all multiplexed over one binding;
no per-user threads), once with each admission policy:

* ``queue`` — arrivals beyond the in-flight bound wait in a bounded FIFO;
  past saturation the *queue delay* dominates user-observed latency;
* ``shed``  — arrivals beyond the bound are dropped; latency stays at the
  service time while goodput plateaus and the shed fraction grows.

Everything is seeded: the same seed reproduces the same arrival trace, the
same admission decisions, and the same table.  The full grid (two bindings,
closed-loop overlay, golden-hashed table) is the fig14 benchmark family::

    python -m repro.bench fig14 --quick
    python -m repro.bench fig14 --jobs 4      # byte-identical, parallel

Run with::

    python examples/open_loop_saturation.py
"""

from repro.bindings.primary_backup import (
    PrimaryBackupBinding,
    PrimaryBackupStore,
)
from repro.core.client import CorrectableClient
from repro.core.operations import read, write
from repro.sim.environment import SimEnvironment
from repro.sim.rand import derive_rng
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.records import Dataset
from repro.workloads.runner import OpenLoopRunner
from repro.workloads.ycsb import OperationGenerator, workload_by_name

SEED = 2024
SESSIONS = 500
MAX_IN_FLIGHT = 8
RATES_OPS_S = (50, 100, 200, 400)


def build_stack():
    """A primary/backup store, preloaded, wrapped in a session pool."""
    env = SimEnvironment(seed=SEED)
    store = PrimaryBackupStore(scheduler=env.scheduler,
                               replication_lag_ms=30.0)
    binding = PrimaryBackupBinding(store=store, scheduler=env.scheduler)
    dataset = Dataset(record_count=300, seed=SEED)
    for key, value in dataset.initial_items().items():
        store.write(key, value)
    env.run(until=40.0)  # let the preload reach the backup
    pool = CorrectableClient(binding).sessions(SESSIONS)
    return env, pool, dataset


def make_issue(pool, clock):
    """Issue one operation through the next session; report completion."""

    def issue(op_type, key, value, done):
        session = pool.next_session()
        issued_at = clock()
        if op_type == "update":
            session.invoke_strong(write(key, value)).set_callbacks(
                on_final=lambda view: done(
                    {"final_latency_ms": clock() - issued_at}),
                on_error=lambda exc: done({"failed": True}))
            return
        state = {"value": None, "had": False}

        def on_update(view):
            state["had"] = True
            state["value"] = view.value

        session.invoke(read(key)).set_callbacks(
            on_update=on_update,
            on_final=lambda view: done({
                "final_latency_ms": clock() - issued_at,
                "had_preliminary": state["had"],
                "diverged": state["had"] and not view.is_confirmation
                and state["value"] != view.value,
            }),
            on_error=lambda exc: done({"failed": True}))

    return issue


def run_once(rate_ops_s, policy):
    env, pool, dataset = build_stack()
    spec = workload_by_name("A").with_distribution("latest")
    label = f"saturation-{policy}-{rate_ops_s}"
    runner = OpenLoopRunner(
        scheduler=env.scheduler,
        issue=make_issue(pool, env.scheduler.now),
        # Independent, label-derived key/mix streams per session: the keys a
        # user touches never shift when another stream draws more samples.
        make_generator=lambda i: OperationGenerator.seeded(
            spec, dataset, SEED, f"{label}-s{i}"),
        arrivals=PoissonArrivals(rate_ops_s,
                                 derive_rng(SEED, f"{label}:arrivals")),
        sessions=SESSIONS, duration_ms=8_000.0, warmup_ms=1_500.0,
        cooldown_ms=500.0, label=label,
        max_in_flight=MAX_IN_FLIGHT, policy=policy, queue_limit=64)
    return runner.run()


def main() -> None:
    print(f"primary/backup store, {SESSIONS} sessions over one binding, "
          f"max {MAX_IN_FLIGHT} in flight\n")
    header = (f"{'policy':>6}  {'offered':>8}  {'goodput':>8}  {'shed':>6}  "
              f"{'qdelay':>8}  {'final':>8}  {'p99':>8}  {'stale':>6}")
    print(header)
    print("-" * len(header))
    for policy in ("queue", "shed"):
        for rate in RATES_OPS_S:
            result = run_once(rate, policy)
            admission = result.admission
            print(f"{policy:>6}  "
                  f"{result.offered_ops_per_sec():7.0f}/s  "
                  f"{result.throughput_ops_per_sec():7.0f}/s  "
                  f"{admission.shed_percent():5.1f}%  "
                  f"{admission.queue_delay.mean():6.1f}ms  "
                  f"{result.final_latency.mean():6.1f}ms  "
                  f"{result.final_latency.p99():6.1f}ms  "
                  f"{result.divergence.divergence_percent():5.1f}%")
        print()
    print("reading the table: past saturation (~"
          f"{MAX_IN_FLIGHT}/service-time ops/s), 'queue' turns overload "
          "into waiting (queue delay and p99 explode),")
    print("'shed' turns it into drops (latency flat, goodput capped, "
          "shed% grows).  Same seed, same table — always.")


if __name__ == "__main__":
    main()
