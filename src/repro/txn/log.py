"""Participant-side transaction log.

The log is the stable storage of the protocol: a participant that crashes
keeps its log (and the locks derivable from it), and the records are what a
takeover coordinator reads to drive every in-flight transaction to a
consistent outcome.  Records serialize to plain dicts so they travel in
message payloads unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class TxnState:
    """Terminal and intermediate states a logged transaction can be in."""

    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TxnLogRecord:
    """One transaction's entry in a participant log.

    ``writes`` holds only the keys this participant owns.  ``participants``
    and ``client`` replicate the transaction's membership into every record
    so a takeover coordinator can reconstruct the full picture from any
    single prepared record.
    """

    txn_id: str
    state: str
    writes: Dict[str, Any]
    participants: Tuple[str, ...]
    client: str
    epoch: int
    #: Commit timestamp ``(time_ms, coordinator, seq)``; None until committed.
    timestamp: Optional[Tuple[float, str, int]] = None
    updated_at_ms: float = 0.0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "txn_id": self.txn_id,
            "state": self.state,
            "writes": dict(self.writes),
            "participants": list(self.participants),
            "client": self.client,
            "epoch": self.epoch,
            "timestamp": list(self.timestamp) if self.timestamp else None,
        }


class ParticipantLog:
    """Append-style transaction log with one live record per transaction."""

    def __init__(self) -> None:
        self._records: Dict[str, TxnLogRecord] = {}
        self.appends = 0

    def get(self, txn_id: str) -> Optional[TxnLogRecord]:
        return self._records.get(txn_id)

    def state(self, txn_id: str) -> Optional[str]:
        record = self._records.get(txn_id)
        return record.state if record is not None else None

    def record_prepared(self, txn_id: str, writes: Dict[str, Any],
                        participants: Tuple[str, ...], client: str,
                        epoch: int, now_ms: float) -> TxnLogRecord:
        record = TxnLogRecord(txn_id=txn_id, state=TxnState.PREPARED,
                              writes=dict(writes), participants=participants,
                              client=client, epoch=epoch, updated_at_ms=now_ms)
        self._records[txn_id] = record
        self.appends += 1
        return record

    def record_committed(self, txn_id: str,
                         timestamp: Tuple[float, str, int],
                         now_ms: float) -> TxnLogRecord:
        record = self._records[txn_id]
        record.state = TxnState.COMMITTED
        record.timestamp = timestamp
        record.updated_at_ms = now_ms
        self.appends += 1
        return record

    def record_aborted(self, txn_id: str, now_ms: float) -> TxnLogRecord:
        record = self._records.get(txn_id)
        if record is None:
            # An abort can arrive for a transaction this participant never
            # prepared (it voted no, or the prepare never reached it);
            # logging it keeps the decision durable for idempotent acks.
            record = TxnLogRecord(txn_id=txn_id, state=TxnState.ABORTED,
                                  writes={}, participants=(), client="",
                                  epoch=0, updated_at_ms=now_ms)
            self._records[txn_id] = record
        else:
            record.state = TxnState.ABORTED
            record.updated_at_ms = now_ms
        self.appends += 1
        return record

    def records(self) -> List[TxnLogRecord]:
        """All records in txn-id order (deterministic iteration)."""
        return [self._records[txn_id] for txn_id in sorted(self._records)]

    def in_doubt(self) -> List[TxnLogRecord]:
        """Prepared records with no decision — what blocks a takeover."""
        return [r for r in self.records() if r.state == TxnState.PREPARED]

    def snapshot_payload(self) -> List[Dict[str, Any]]:
        """Prepared + decided records for a takeover state reply."""
        return [r.to_payload() for r in self.records()]

    def __len__(self) -> int:
        return len(self._records)
