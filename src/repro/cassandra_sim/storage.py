"""Per-replica storage engines: last-write-wins versioned tables.

Two interchangeable backends sit behind the same interface:

:class:`LocalTable`
    One ``VersionedValue`` object per row in a dict.  Cheap to build, ideal
    for the small tables most figure experiments use.

:class:`ColumnarTable`
    Column-oriented storage for million-key replicas.  Rows are decomposed
    into parallel columns — a values list, a ``float64`` write-time array,
    an interned writer-id array and an ``int64`` sequence array — so a row
    costs four column slots instead of a ``VersionedValue`` plus a
    three-element timestamp tuple (roughly 180 bytes of object headers per
    key saved at RF3 scale, which is what makes 4M-key rings fit).  LWW
    resolution is *exact*: the column comparison is elementwise-identical
    to the ``(time, writer, seq)`` tuple comparison ``LocalTable`` inherits
    from :meth:`VersionedValue.newer_than`.

Clusters pick the backend automatically at preload/join time (see
``CassandraConfig.columnar_storage`` / ``columnar_threshold_keys``); the
protocol code never knows which one it is talking to.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cassandra_sim.versions import VersionedValue


class LocalTable:
    """The key-value state one replica holds locally."""

    __slots__ = ("_rows", "reads", "writes_applied", "writes_ignored")

    def __init__(self) -> None:
        self._rows: Dict[str, VersionedValue] = {}
        self.reads = 0
        self.writes_applied = 0
        self.writes_ignored = 0

    def read(self, key: str) -> Optional[VersionedValue]:
        """Return the locally stored version of ``key`` (None if absent)."""
        self.reads += 1
        return self._rows.get(key)

    def apply(self, key: str, version: VersionedValue) -> bool:
        """Apply a write if it is newer than the stored version (LWW).

        Returns True when the write was applied, False when it was stale and
        therefore ignored.
        """
        current = self._rows.get(key)
        # VersionedValue.newer_than, inlined (one apply per replicated write).
        if current is None or version.timestamp > current.timestamp:
            self._rows[key] = version
            self.writes_applied += 1
            return True
        self.writes_ignored += 1
        return False

    def contains(self, key: str) -> bool:
        return key in self._rows

    def get(self, key: str) -> Optional[VersionedValue]:
        """Raw access without touching the ``reads`` counter.

        Used by range streaming and post-run verification, which inspect
        state without modelling a served read.
        """
        return self._rows.get(key)

    def keys(self) -> Tuple[str, ...]:
        """All stored keys, sorted — the deterministic streaming scan order."""
        return tuple(sorted(self._rows))

    def items(self) -> Iterator[Tuple[str, VersionedValue]]:
        """Iterate ``(key, version)`` pairs in sorted key order."""
        for key in sorted(self._rows):
            yield key, self._rows[key]

    def __len__(self) -> int:
        return len(self._rows)


class ColumnarTable:
    """Column-oriented drop-in for :class:`LocalTable` (million-key rings).

    ``array('d')`` / ``array('q')`` indexing returns native Python floats
    and ints, so reconstructed timestamps compare (and ``repr``) exactly
    like the tuples a :class:`LocalTable` stores — the two backends are
    observationally identical, which the Hypothesis equivalence test in
    ``tests/cassandra_sim/test_storage_partitioner.py`` checks operation by
    operation.
    """

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._values: List[object] = []
        self._times = array("d")
        self._writer_ids = array("i")
        self._seqs = array("q")
        #: Interned writer names: replicas write under a handful of
        #: coordinator names, so the writer column is a small-int array.
        self._writers: List[str] = []
        self._writer_index: Dict[str, int] = {}
        self.reads = 0
        self.writes_applied = 0
        self.writes_ignored = 0

    @classmethod
    def from_table(cls, table: "LocalTable") -> "ColumnarTable":
        """Columnarize an existing table, carrying rows and counters over."""
        columnar = cls()
        for key, version in table.items():
            columnar.apply(key, version)
        columnar.reads = table.reads
        columnar.writes_applied = table.writes_applied
        columnar.writes_ignored = table.writes_ignored
        return columnar

    def _writer_id(self, writer: str) -> int:
        wid = self._writer_index.get(writer)
        if wid is None:
            wid = len(self._writers)
            self._writer_index[writer] = wid
            self._writers.append(writer)
        return wid

    def preload_row(self, key: str, value: object) -> bool:
        """Install one time-zero row, the ``Cluster.preload`` bulk path.

        Observationally identical to ``apply(key, VersionedValue(value,
        (0.0, "preload", 0)))`` — including the counters — but the common
        fresh-ring case appends straight into the columns without building
        the version object or comparing timestamps.
        """
        index = self._index
        if key in index:
            # Preload onto a non-empty table: exact LWW, as before.
            return self.apply(key, VersionedValue(value, (0.0, "preload", 0)))
        index[key] = len(self._values)
        self._values.append(value)
        self._times.append(0.0)
        self._writer_ids.append(self._writer_id("preload"))
        self._seqs.append(0)
        self.writes_applied += 1
        return True

    def preload_rows(self, rows: List[Tuple[str, object]]) -> None:
        """Bulk :meth:`preload_row`: one column extend per table.

        ``rows`` must not repeat a key (the preload items mapping
        guarantees it).  A non-empty table falls back to the exact per-row
        path; on a fresh ring the keys, values and constant time-zero
        columns are appended wholesale.
        """
        index = self._index
        if index:
            for key, value in rows:
                self.preload_row(key, value)
            return
        values = self._values
        base = len(values)
        keys: List[str] = []
        for key, value in rows:
            keys.append(key)
            values.append(value)
        count = len(keys)
        index.update(zip(keys, range(base, base + count)))
        zeros = bytes(8 * count)
        self._times.frombytes(zeros)     # float64 zeros: time 0.0
        self._seqs.frombytes(zeros)      # int64 zeros: seq 0
        self._writer_ids.extend(
            array("i", [self._writer_id("preload")]) * count)
        self.writes_applied += count

    def read(self, key: str) -> Optional[VersionedValue]:
        """Return the locally stored version of ``key`` (None if absent)."""
        self.reads += 1
        idx = self._index.get(key)
        if idx is None:
            return None
        return VersionedValue(
            self._values[idx],
            (self._times[idx], self._writers[self._writer_ids[idx]],
             self._seqs[idx]))

    def apply(self, key: str, version: VersionedValue) -> bool:
        """Apply a write if it is newer than the stored version (LWW)."""
        idx = self._index.get(key)
        time, writer, seq = version.timestamp
        if idx is None:
            self._index[key] = len(self._values)
            self._values.append(version.value)
            self._times.append(time)
            self._writer_ids.append(self._writer_id(writer))
            self._seqs.append(seq)
            self.writes_applied += 1
            return True
        # Elementwise (time, writer, seq) tuple comparison, strict '>' —
        # exactly VersionedValue.newer_than against the stored row.
        stored_time = self._times[idx]
        if time != stored_time:
            newer = time > stored_time
        else:
            stored_writer = self._writers[self._writer_ids[idx]]
            if writer != stored_writer:
                newer = writer > stored_writer
            else:
                newer = seq > self._seqs[idx]
        if newer:
            self._values[idx] = version.value
            self._times[idx] = time
            self._writer_ids[idx] = self._writer_id(writer)
            self._seqs[idx] = seq
            self.writes_applied += 1
            return True
        self.writes_ignored += 1
        return False

    def contains(self, key: str) -> bool:
        return key in self._index

    def get(self, key: str) -> Optional[VersionedValue]:
        """Raw access without touching the ``reads`` counter."""
        idx = self._index.get(key)
        if idx is None:
            return None
        return VersionedValue(
            self._values[idx],
            (self._times[idx], self._writers[self._writer_ids[idx]],
             self._seqs[idx]))

    def keys(self) -> Tuple[str, ...]:
        """All stored keys, sorted — the deterministic streaming scan order."""
        return tuple(sorted(self._index))

    def items(self) -> Iterator[Tuple[str, VersionedValue]]:
        """Iterate ``(key, version)`` pairs in sorted key order."""
        for key in sorted(self._index):
            yield key, self.get(key)

    def __len__(self) -> int:
        return len(self._index)
