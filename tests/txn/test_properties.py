"""Property-based atomicity tests for the transaction layer.

Hypothesis drives arbitrary crash schedules — any subset of coordinators
and participants, crashing and restarting at arbitrary times, windows
freely overlapping — against an open-loop transaction stream.  Whatever
the schedule, after everything heals and the fabric drains:

* every client-acked commit is durably applied on **all** owners;
* no transaction is committed on one participant and aborted on another;
* aborted transactions' writes reach no replica table;
* no prepare locks or in-doubt transactions remain.

Transactions are allowed to *fail* (no coordinator reachable inside the
deadline) — robustness means never lying, not never losing.
"""

from hypothesis import given, settings, strategies as st

from repro.core.cluster_spec import ClusterSpec
from repro.sim.rand import derive_rng
from repro.txn import TxnConfig, build_txn_fabric

#: Target index 0-1 = coordinators, 2-4 = participants (3-node cluster).
_crash_windows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4),
              st.floats(min_value=200.0, max_value=3_500.0),
              st.floats(min_value=100.0, max_value=1_500.0)),
    max_size=4)


def _run_chaos(windows, txn_count, interval_ms, keys_per_txn, rng_seed):
    built = ClusterSpec(nodes=3, seed=11, record_count=40,
                        client_regions=()).build()
    fabric = build_txn_fabric(built, config=TxnConfig(), coordinator_count=2)
    manager = fabric.manager
    env = built.env
    targets = list(fabric.coordinators) + [
        fabric.participants[k] for k in sorted(fabric.participants)]

    horizon = 0.0
    for index, at_ms, duration_ms in windows:
        node = targets[index]
        env.scheduler.schedule_at(at_ms, node.crash)
        env.scheduler.schedule_at(at_ms + duration_ms, node.recover)
        horizon = max(horizon, at_ms + duration_ms)

    keys = built.dataset.keys()
    rng = derive_rng(rng_seed, "chaos:txns")

    def _submit():
        chosen = sorted(rng.sample(range(len(keys)), keys_per_txn))
        manager.execute({keys[i]: f"v{rng.randrange(1 << 20)}"
                         for i in chosen})

    for i in range(txn_count):
        env.scheduler.schedule_at(i * interval_ms, _submit)
    horizon = max(horizon, txn_count * interval_ms)

    # Drain far past the last fault, every client deadline + retry budget,
    # and the takeover/redelivery periods, so the audit sees a settled run.
    env.run(until=horizon + 30_000.0)
    return fabric


@given(windows=_crash_windows,
       txn_count=st.integers(min_value=1, max_value=20),
       interval_ms=st.floats(min_value=20.0, max_value=120.0),
       keys_per_txn=st.integers(min_value=1, max_value=2),
       rng_seed=st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=25, deadline=None)
def test_acked_outcomes_stay_atomic_under_arbitrary_crashes(
        windows, txn_count, interval_ms, keys_per_txn, rng_seed):
    fabric = _run_chaos(windows, txn_count, interval_ms, keys_per_txn,
                        rng_seed)
    manager = fabric.manager
    # Conservation: every submitted transaction reached exactly one of the
    # three terminal states (committed, aborted, failed-with-error).
    resolved = (len(manager.acked_commits) + len(manager.acked_aborts)
                + manager.failed_requests)
    assert resolved == txn_count == manager.txns_submitted
    # The hard invariants: raises (failing the example) on any violation.
    fabric.assert_atomic()


@given(windows=_crash_windows, rng_seed=st.integers(0, 2 ** 16))
@settings(max_examples=10, deadline=None)
def test_a_faultless_tail_always_commits(windows, rng_seed):
    """Whatever the earlier chaos, a transaction submitted after every node
    healed (and breakers had time to probe) must commit."""
    fabric = _run_chaos(windows, txn_count=3, interval_ms=50.0,
                        keys_per_txn=1, rng_seed=rng_seed)
    manager = fabric.manager
    committed_before = len(manager.acked_commits)
    key = fabric.built.dataset.keys()[0]
    manager.execute({key: "tail"})
    fabric.built.env.run(until=fabric.built.env.now() + 15_000.0)
    assert len(manager.acked_commits) == committed_before + 1
    for owner in fabric.owners_of(key):
        assert fabric.participants[owner].replica.table.get(key).value \
            == "tail"
    fabric.assert_atomic()
