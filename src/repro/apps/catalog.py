"""The application taxonomy of Table 1.

The paper groups applications into three categories by how they should access
replicated data: pure weak consistency, pure strong consistency, or
incremental consistency guarantees.  The catalog below encodes that table,
and :func:`recommend_category` captures the decision logic the table's
synopsis column describes — useful both as executable documentation and for
the ``consistency_catalog`` example.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Tuple


class ConsistencyCategory(Enum):
    """The three access patterns of Table 1."""

    WEAK = "weak-consistency"
    STRONG = "strong-consistency"
    ICG = "incremental-consistency-guarantees"


@dataclass(frozen=True)
class UseCase:
    """One row's worth of example applications."""

    name: str
    category: ConsistencyCategory
    rationale: str


#: Table 1, transcribed: category → (synopsis, example applications).
APPLICATION_CATALOG: List[UseCase] = [
    # Weak consistency: no benefit from stronger guarantees or ICG.
    UseCase("thumbnail generation", ConsistencyCategory.WEAK,
            "computation on static BLOB content; staleness is harmless"),
    UseCase("cold-data analytics", ConsistencyCategory.WEAK,
            "fraud analysis over historical data tolerates lag"),
    UseCase("disconnected mobile operation", ConsistencyCategory.WEAK,
            "the device is offline; only local state is available"),
    # Strong consistency: correctness is mandatory, speculation does not help.
    UseCase("configuration / membership service", ConsistencyCategory.STRONG,
            "infrastructure decisions must observe the latest state"),
    UseCase("session store", ConsistencyCategory.STRONG,
            "serving a stale session breaks authentication"),
    UseCase("stock ticker / trading", ConsistencyCategory.STRONG,
            "acting on stale prices is unacceptable"),
    # ICG: prefers correct results but can use weak views meanwhile.
    UseCase("e-mail and calendar", ConsistencyCategory.ICG,
            "show something fast, reconcile when the final view arrives"),
    UseCase("social-network timeline", ConsistencyCategory.ICG,
            "speculatively prefetch referenced content"),
    UseCase("online shopping / inventory", ConsistencyCategory.ICG,
            "weak views suffice while stock is plentiful"),
    UseCase("flight-search aggregation", ConsistencyCategory.ICG,
            "progressively refine displayed results"),
    UseCase("advertising", ConsistencyCategory.ICG,
            "speculate on the preliminary reference list"),
    UseCase("authentication and authorization", ConsistencyCategory.ICG,
            "speculate on password-check results, confirm before acting"),
    UseCase("collaborative editing", ConsistencyCategory.ICG,
            "expose tentative state, reconcile with the committed one"),
    UseCase("online wallets", ConsistencyCategory.ICG,
            "track confirmations as they accumulate"),
]


def use_cases(category: ConsistencyCategory) -> List[UseCase]:
    """All catalogued use cases in one category."""
    return [case for case in APPLICATION_CATALOG if case.category is category]


def recommend_category(requires_correct_results: bool,
                       benefits_from_fast_weak_views: bool) -> Tuple[ConsistencyCategory, str]:
    """Recommend an access pattern following Table 1's synopsis column.

    Args:
        requires_correct_results: the application must eventually act on a
            strongly consistent result.
        benefits_from_fast_weak_views: a weakly consistent view arriving
            early is useful (for speculation, progressive display, or
            threshold checks).

    Returns:
        The recommended category and a one-line justification.
    """
    if not requires_correct_results:
        return (ConsistencyCategory.WEAK,
                "correctness is not required: use the weakest, fastest model")
    if not benefits_from_fast_weak_views:
        return (ConsistencyCategory.STRONG,
                "only the correct result matters and early views are useless")
    return (ConsistencyCategory.ICG,
            "speculate or act on preliminary views, settle on the final one")
