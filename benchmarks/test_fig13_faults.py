"""Figure 13 — Correctables under injected faults (crash, partition, flap, slow)."""

import pytest

from repro.bench.fig13_faults import (
    format_fig13,
    run_fig13,
    run_fig13_zookeeper,
)


@pytest.mark.benchmark(group="fig13")
def test_fig13_faults(benchmark, save_report):
    def _run():
        records = run_fig13(
            scenarios=("baseline", "replica-crash", "wan-partition",
                       "flapping-link", "slow-follower"),
            workload="B", threads_per_client=4, duration_ms=12_000.0,
            warmup_ms=3_000.0, cooldown_ms=1_000.0, record_count=300,
            seed=42)
        records.append(run_fig13_zookeeper(seed=42))
        return records

    records = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("fig13_faults", format_fig13(records))

    by_scenario = {r["scenario"]: r for r in records}
    assert set(by_scenario) == {"baseline", "replica-crash", "wan-partition",
                                "flapping-link", "slow-follower",
                                "leader-crash"}

    # The fault-free reference run never degrades or fails anything.
    baseline = by_scenario["baseline"]
    assert baseline["degraded_ops"] == 0
    assert baseline["failed_ops"] == 0
    assert baseline["measured_ops"] > 0

    # Reads keep completing while a replica is down: the coordinator routes
    # around the crash (retries and/or downgraded quorums), no operation is
    # lost, and the run still measures a substantial share of the baseline.
    crash = by_scenario["replica-crash"]
    assert crash["failed_ops"] == 0
    assert crash["coordinator_retries"] + crash["degraded_ops"] > 0
    assert crash["measured_ops"] > 0.3 * baseline["measured_ops"]

    # A WAN partition between two replica regions leaves a connected
    # majority: clients fail over and nothing is lost.
    partition = by_scenario["wan-partition"]
    assert partition["failed_ops"] == 0
    assert partition["client_retries"] + partition["coordinator_retries"] > 0
    assert partition["measured_ops"] > 0.3 * baseline["measured_ops"]

    for name in ("flapping-link", "slow-follower"):
        assert by_scenario[name]["failed_ops"] == 0
        assert by_scenario[name]["measured_ops"] > 0

    # Leader crash: the ensemble detects the failure, promotes a follower,
    # and the queue keeps serving (sessions fail over to the new leader).
    zk = by_scenario["leader-crash"]
    assert zk["leader_changed"]
    assert zk["new_leader"] is not None
    assert zk["promotions"] >= 1
    assert zk["measured_ops"] > 0
    # Client failover keeps the failure count a small fraction of the load.
    assert zk["failed_ops"] <= 0.02 * zk["measured_ops"]
    # The new leadership actually commits: a probe write issued after the
    # run completes, and the committed-transaction count covers the load
    # (guards against a post-election commit stall, which op counters alone
    # would miss because timed-out ops still complete at the client).
    assert zk["post_crash_commit_ok"]
    assert zk["committed_txns"] >= zk["measured_ops"]
    # No operation ran into the client's give-up latency (4 × 2000 ms).
    assert zk["final_p99_ms"] < 8_000.0
