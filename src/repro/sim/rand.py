"""Deterministic random-number plumbing.

Every source of randomness in the simulator (latency jitter, workload key
choice, dataset generation) draws from a ``random.Random`` instance derived
from a single experiment seed and a component name.  Deriving through a hash
keeps streams independent: adding a new consumer does not perturb the draws
seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(seed: int, name: str) -> int:
    """Derive a child seed from a master ``seed`` and a component ``name``."""
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed: int, name: str) -> random.Random:
    """Return a ``random.Random`` seeded deterministically for ``name``."""
    return random.Random(derive_seed(seed, name))
