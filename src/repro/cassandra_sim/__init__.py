"""A quorum-replicated key-value store modelled after Cassandra.

This package is the substitute for the Apache Cassandra v2.1.10 deployment
the paper modified and evaluated on EC2.  It reproduces the mechanics the
evaluation depends on:

* tunable per-operation consistency via read/write quorum sizes (R, W);
* last-write-wins conflict resolution on timestamps;
* coordinators that forward to replicas and gather quorums, with
  asynchronous (eventual) replication of writes beyond W;
* the paper's *Correctable Cassandra* (CC) extension — the coordinator
  flushes a preliminary response after its first (local) read, then the
  final quorum response — and the ``*CC`` confirmation optimization that
  replaces an identical final response with a small confirmation message.
"""

from repro.cassandra_sim.config import CassandraConfig
from repro.cassandra_sim.versions import VersionedValue
from repro.cassandra_sim.storage import ColumnarTable, LocalTable
from repro.cassandra_sim.partitioner import RingPartitioner
from repro.cassandra_sim.replica import CassandraReplica
from repro.cassandra_sim.cluster import CassandraCluster
from repro.cassandra_sim.client import CassandraClient

__all__ = [
    "CassandraConfig",
    "VersionedValue",
    "LocalTable",
    "ColumnarTable",
    "RingPartitioner",
    "CassandraReplica",
    "CassandraCluster",
    "CassandraClient",
]
