"""Perf harness smoke: the wall-clock scenarios run, count deterministically,
and the BENCH_perf.json trajectory machinery round-trips."""

import json

import pytest

from repro.bench.perf import (
    append_entry,
    baseline_entry,
    check_regression,
    format_perf,
    latest_entry,
    load_trajectory,
    run_closed_loop_scenario,
    run_fault_scenario,
    run_perf,
    run_zk_queue_scenario,
    save_trajectory,
    scenario_names,
)

_TINY = dict(threads_per_client=2, duration_ms=2_500.0, warmup_ms=500.0,
             cooldown_ms=250.0, record_count=60)


@pytest.mark.benchmark(group="perf")
def test_perf_scenarios_run_and_count(benchmark):
    counts = benchmark.pedantic(run_closed_loop_scenario, kwargs=_TINY,
                                rounds=1, iterations=1)
    assert counts["events"] > 0 and counts["ops"] > 0


def test_scenarios_are_deterministic():
    first = run_closed_loop_scenario(**_TINY)
    second = run_closed_loop_scenario(**_TINY)
    assert first == second


def test_zk_and_fault_scenarios_count():
    zk = run_zk_queue_scenario(samples=40)
    assert zk["ops"] == 40 and zk["events"] > 0
    faults = run_fault_scenario(threads_per_client=1, duration_ms=3_000.0,
                                warmup_ms=500.0, cooldown_ms=250.0,
                                record_count=60)
    assert faults["ops"] > 0 and faults["events"] > 0


def test_run_perf_unknown_scenario_rejected():
    with pytest.raises(KeyError):
        run_perf(scenarios=["nope"])


def test_run_perf_seed_changes_counts():
    default = run_perf(scenarios=["fig09-zk-queue"], quick=True, repeats=1)
    reseeded = run_perf(scenarios=["fig09-zk-queue"], quick=True, repeats=1,
                        seed=99)
    # Same ops (the workload is fixed-size) but a different event schedule.
    assert reseeded["fig09-zk-queue"]["ops"] == default["fig09-zk-queue"]["ops"]
    assert reseeded["fig09-zk-queue"]["events"] > 0


def test_run_perf_measures_named_scenarios():
    assert "fig06-closed-loop" in scenario_names()
    measured = run_perf(scenarios=["fig09-zk-queue"], quick=True, repeats=1)
    stats = measured["fig09-zk-queue"]
    assert stats["wall_s"] > 0
    assert stats["events_per_s"] > 0
    assert stats["ops_per_s"] * stats["wall_s"] == pytest.approx(
        stats["ops"], rel=0.05)


def test_trajectory_round_trip(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    trajectory = load_trajectory(path)
    assert trajectory["entries"] == []
    measured = {"s": {"wall_s": 1.0, "runs_s": [1.0], "events": 10,
                      "ops": 5, "events_per_s": 10.0, "ops_per_s": 5.0}}
    append_entry(trajectory, "first", quick=True, measured=measured)
    save_trajectory(trajectory, path)
    loaded = load_trajectory(path)
    assert loaded["entries"][0]["label"] == "first"
    assert baseline_entry(loaded, quick=True)["label"] == "first"
    assert baseline_entry(loaded, quick=False) is None
    assert latest_entry(loaded, quick=True)["label"] == "first"
    assert json.loads(path.read_text())["schema"] == 1


def test_format_perf_reports_speedup():
    old = {"label": "old", "scenarios": {
        "s": {"wall_s": 2.0, "events": 1, "events_per_s": 1, "ops": 1,
              "ops_per_s": 1}}}
    new = {"s": {"wall_s": 1.0, "events": 1, "events_per_s": 1, "ops": 1,
                 "ops_per_s": 1}}
    report = format_perf(new, baseline=old)
    assert "2.00x" in report


def test_check_regression_gate():
    committed = {"scenarios": {"s": {"wall_s": 1.0, "events": 10}}}
    ok = {"s": {"wall_s": 1.5, "events": 10}}
    slow = {"s": {"wall_s": 2.5, "events": 10}}
    lines = []
    assert check_regression(ok, committed, echo=lines.append)
    assert not check_regression(slow, committed, echo=lines.append)
    assert any("REGRESSION" in line for line in lines)


def test_check_regression_fails_loudly_on_missing_reference():
    committed = {"scenarios": {"other": {"wall_s": 1.0, "events": 10}}}
    lines = []
    assert not check_regression({"s": {"wall_s": 0.1, "events": 10}},
                                committed, echo=lines.append)
    assert any("no committed reference" in line for line in lines)


def test_check_regression_fails_on_event_count_drift():
    committed = {"scenarios": {"s": {"wall_s": 1.0, "events": 10}}}
    lines = []
    assert not check_regression({"s": {"wall_s": 0.5, "events": 11}},
                                committed, echo=lines.append)
    assert any("event count" in line for line in lines)
