"""Client node for the simulated Cassandra cluster.

A client connects to one contact replica (its coordinator) and issues reads
and writes with explicit quorum sizes, mirroring the DataStax driver the
paper's prototype uses.  ICG reads (``icg=True``) produce two callbacks: one
for the coordinator's preliminary response and one for the final quorum
response.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.cassandra_sim.config import CassandraConfig
from repro.sim.network import MESSAGE_HEADER_BYTES, Message, Network, estimate_payload_size
from repro.sim.node import Node

#: ``callback(response_dict)`` where the dict carries value/found/timestamp/...
ResponseCallback = Callable[[Dict[str, Any]], None]


@dataclass
class _PendingRequest:
    kind: str
    sent_at: float
    on_preliminary: Optional[ResponseCallback] = None
    on_final: Optional[ResponseCallback] = None
    preliminary_value: Any = None
    preliminary_seen: bool = False
    metadata: Dict[str, Any] = field(default_factory=dict)


class CassandraClient(Node):
    """A client application node issuing operations against one coordinator."""

    def __init__(self, name: str, region: str, network: Network,
                 contact: str, config: CassandraConfig) -> None:
        super().__init__(name, region, network)
        self.contact = contact
        self.config = config
        self._req_ids = itertools.count(1)
        self._pending: Dict[int, _PendingRequest] = {}
        self.reads_sent = 0
        self.writes_sent = 0

    # -- issuing operations -------------------------------------------------
    def read(self, key: str, r: int = 1, icg: bool = False,
             on_preliminary: Optional[ResponseCallback] = None,
             on_final: Optional[ResponseCallback] = None) -> int:
        """Issue a read with read-quorum ``r``; returns the request id."""
        req_id = next(self._req_ids)
        self.reads_sent += 1
        self._pending[req_id] = _PendingRequest(
            kind="read", sent_at=self.scheduler.now(),
            on_preliminary=on_preliminary, on_final=on_final)
        self.send(self.contact, "client_read",
                  {"req_id": req_id, "key": key, "r": r, "icg": icg},
                  size_bytes=MESSAGE_HEADER_BYTES + self.config.key_size_bytes + 8)
        return req_id

    def write(self, key: str, value: Any, w: int = 1,
              on_final: Optional[ResponseCallback] = None) -> int:
        """Issue a write with write-quorum ``w``; returns the request id."""
        req_id = next(self._req_ids)
        self.writes_sent += 1
        self._pending[req_id] = _PendingRequest(
            kind="write", sent_at=self.scheduler.now(), on_final=on_final)
        # A YCSB update writes a single field, so the request is sized by the
        # written payload (reads, in contrast, return the whole record and are
        # sized by the replica using ``config.value_size_bytes`` as a floor).
        value_bytes = estimate_payload_size(value)
        self.send(self.contact, "client_write",
                  {"req_id": req_id, "key": key, "value": value, "w": w},
                  size_bytes=(MESSAGE_HEADER_BYTES + self.config.key_size_bytes
                              + value_bytes))
        return req_id

    # -- responses ---------------------------------------------------------------
    def on_read_preliminary(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.get(payload["req_id"])
        if pending is None:
            return
        pending.preliminary_seen = True
        pending.preliminary_value = payload["value"]
        if pending.on_preliminary is not None:
            pending.on_preliminary({
                "value": payload["value"],
                "found": payload["found"],
                "timestamp": payload["timestamp"],
                "replica": payload.get("replica"),
                "latency_ms": self.scheduler.now() - pending.sent_at,
                "is_confirmation": False,
            })

    def on_read_final(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.pop(payload["req_id"], None)
        if pending is None:
            return
        is_confirmation = bool(payload.get("is_confirmation", False))
        value = payload["value"]
        if is_confirmation:
            # The storage elided the payload: the preliminary value is final.
            value = pending.preliminary_value
        if pending.on_final is not None:
            pending.on_final({
                "value": value,
                "found": payload["found"],
                "timestamp": payload["timestamp"],
                "is_confirmation": is_confirmation,
                "matches_preliminary": payload.get("matches_preliminary"),
                "latency_ms": self.scheduler.now() - pending.sent_at,
            })

    def on_write_ack_client(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.pop(payload["req_id"], None)
        if pending is None:
            return
        if pending.on_final is not None:
            pending.on_final({
                "value": True,
                "found": True,
                "timestamp": payload.get("timestamp"),
                "is_confirmation": False,
                "latency_ms": self.scheduler.now() - pending.sent_at,
            })
