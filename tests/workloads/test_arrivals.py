"""Arrival-process tests: rates, burst phasing, and seed determinism."""

import pytest

from repro.sim.rand import derive_rng
from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    BurstArrivals,
    PoissonArrivals,
    UniformArrivals,
    arrival_trace,
    make_arrival_process,
)


class TestUniformArrivals:
    def test_constant_gap(self):
        process = UniformArrivals(rate_ops_s=200)
        assert [process.next_gap_ms() for _ in range(5)] == [5.0] * 5

    def test_trace_is_exact_schedule(self):
        process = UniformArrivals(rate_ops_s=100)
        assert arrival_trace(process, 3) == [10.0, 20.0, 30.0]

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            UniformArrivals(0)
        with pytest.raises(ValueError):
            UniformArrivals(-5)


class TestPoissonArrivals:
    def test_mean_gap_matches_rate(self):
        process = PoissonArrivals(100, derive_rng(42, "poisson"))
        gaps = [process.next_gap_ms() for _ in range(20_000)]
        assert sum(gaps) / len(gaps) == pytest.approx(10.0, rel=0.05)

    def test_gaps_are_positive_and_varied(self):
        process = PoissonArrivals(50, derive_rng(1, "p"))
        gaps = [process.next_gap_ms() for _ in range(100)]
        assert all(g > 0 for g in gaps)
        assert len(set(round(g, 6) for g in gaps)) > 50

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0, derive_rng(1, "p"))


class TestBurstArrivals:
    def test_silent_off_phase_produces_gaps(self):
        # 100 ops/s for 100 ms, then 900 ms of silence: arrivals cluster at
        # the start of each 1 s period.
        process = BurstArrivals(100, derive_rng(7, "burst"),
                                on_ms=100.0, off_ms=900.0)
        times = arrival_trace(process, 200)
        in_burst = [t for t in times if (t % 1000.0) <= 100.0]
        assert len(in_burst) == len(times)

    def test_mean_rate_reported(self):
        process = BurstArrivals(400, derive_rng(7, "b"),
                                on_ms=500.0, off_ms=1_500.0,
                                off_rate_ops_s=0.0)
        assert process.rate_ops_s == pytest.approx(100.0)

    def test_off_rate_fills_the_quiet_phase(self):
        process = BurstArrivals(1_000, derive_rng(7, "b2"),
                                on_ms=100.0, off_ms=900.0,
                                off_rate_ops_s=50.0)
        times = arrival_trace(process, 2_000)
        off_phase = [t for t in times if (t % 1000.0) > 100.0]
        assert off_phase, "nonzero off rate must produce off-phase arrivals"

    def test_validation(self):
        rng = derive_rng(0, "x")
        with pytest.raises(ValueError):
            BurstArrivals(0, rng)
        with pytest.raises(ValueError):
            BurstArrivals(10, rng, off_rate_ops_s=-1)
        with pytest.raises(ValueError):
            BurstArrivals(10, rng, on_ms=0)


class TestFactory:
    def test_builds_every_kind(self):
        for kind in ARRIVAL_KINDS:
            process = make_arrival_process(kind, 100,
                                           derive_rng(3, f"f-{kind}"))
            assert process.next_gap_ms() > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_arrival_process("fractal", 100, derive_rng(3, "f"))

    def test_burst_params_forwarded(self):
        process = make_arrival_process("burst", 200, derive_rng(3, "f"),
                                       on_ms=50.0, off_ms=450.0)
        assert process.on_ms == 50.0 and process.off_ms == 450.0


class TestDeterminism:
    """Same seed ⇒ same arrival trace, for every process kind."""

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_same_seed_same_trace(self, kind):
        def trace():
            process = make_arrival_process(
                kind, 250, derive_rng(42, f"det-{kind}"))
            return arrival_trace(process, 500)

        assert trace() == trace()

    @pytest.mark.parametrize("kind", ("poisson", "burst"))
    def test_different_seeds_differ(self, kind):
        a = arrival_trace(make_arrival_process(
            kind, 250, derive_rng(1, "a")), 50)
        b = arrival_trace(make_arrival_process(
            kind, 250, derive_rng(2, "a")), 50)
        assert a != b

    def test_stream_independent_of_other_consumers(self):
        # The arrival stream is derived by label: another consumer drawing
        # from the same master seed does not shift the arrivals.
        rng = derive_rng(42, "trace:arrivals")
        other = derive_rng(42, "trace:other")
        other.random()  # unrelated consumption
        a = arrival_trace(PoissonArrivals(100, rng), 100)
        b = arrival_trace(
            PoissonArrivals(100, derive_rng(42, "trace:arrivals")), 100)
        assert a == b
