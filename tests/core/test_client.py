"""Tests for the three-method CorrectableClient API over a scripted binding."""

import pytest

from repro.core.client import CorrectableClient
from repro.core.consistency import CACHED, CAUSAL, STRONG, WEAK
from repro.core.correctable import CorrectableState
from repro.core.errors import (
    BindingError,
    OperationError,
    UnsupportedConsistencyError,
)
from repro.core.operations import read, write


class ScriptedBinding:
    """A binding whose responses are driven manually by the test."""

    def __init__(self, levels=(WEAK, STRONG)):
        self.levels = list(levels)
        self.submissions = []

    def consistency_levels(self):
        return list(self.levels)

    def submit_operation(self, operation, levels, callback):
        self.submissions.append({"operation": operation, "levels": levels,
                                 "callback": callback})

    # -- helpers the tests call to emulate storage responses -----------------
    def respond(self, index, level, value, metadata=None, error=None):
        self.submissions[index]["callback"](level, value, metadata=metadata,
                                            error=error)


class TestLevelSelection:
    def test_invoke_requests_all_levels_by_default(self):
        binding = ScriptedBinding(levels=(WEAK, CAUSAL, STRONG))
        client = CorrectableClient(binding)
        client.invoke(read("k"))
        assert binding.submissions[0]["levels"] == [WEAK, CAUSAL, STRONG]

    def test_invoke_weak_requests_only_weakest(self):
        binding = ScriptedBinding(levels=(CACHED, WEAK, STRONG))
        client = CorrectableClient(binding)
        client.invoke_weak(read("k"))
        assert binding.submissions[0]["levels"] == [CACHED]

    def test_invoke_strong_requests_only_strongest(self):
        binding = ScriptedBinding()
        client = CorrectableClient(binding)
        client.invoke_strong(read("k"))
        assert binding.submissions[0]["levels"] == [STRONG]

    def test_invoke_with_subset_of_levels(self):
        binding = ScriptedBinding(levels=(WEAK, CAUSAL, STRONG))
        client = CorrectableClient(binding)
        client.invoke(read("k"), levels=[STRONG, WEAK])
        assert binding.submissions[0]["levels"] == [WEAK, STRONG]

    def test_invoke_with_unsupported_level_raises(self):
        binding = ScriptedBinding(levels=(WEAK, STRONG))
        client = CorrectableClient(binding)
        with pytest.raises(UnsupportedConsistencyError):
            client.invoke(read("k"), levels=[CAUSAL])

    def test_invoke_with_empty_levels_raises(self):
        client = CorrectableClient(ScriptedBinding())
        with pytest.raises(UnsupportedConsistencyError):
            client.invoke(read("k"), levels=[])

    def test_binding_without_levels_raises(self):
        client = CorrectableClient(ScriptedBinding(levels=()))
        with pytest.raises(BindingError):
            client.invoke(read("k"))

    def test_camelcase_aliases(self):
        binding = ScriptedBinding()
        client = CorrectableClient(binding)
        client.invokeWeak(read("k"))
        client.invokeStrong(read("k"))
        assert binding.submissions[0]["levels"] == [WEAK]
        assert binding.submissions[1]["levels"] == [STRONG]


class TestViewDelivery:
    def test_weak_then_strong_updates_then_closes(self):
        binding = ScriptedBinding()
        client = CorrectableClient(binding)
        c = client.invoke(read("k"))
        binding.respond(0, WEAK, "stale")
        assert c.is_updating()
        assert c.latest_view().value == "stale"
        binding.respond(0, STRONG, "fresh")
        assert c.is_final()
        assert c.value() == "fresh"

    def test_strong_arriving_first_closes_and_late_weak_is_dropped(self):
        binding = ScriptedBinding()
        client = CorrectableClient(binding)
        c = client.invoke(read("k"))
        binding.respond(0, STRONG, "fresh")
        assert c.is_final()
        binding.respond(0, WEAK, "stale")
        assert c.value() == "fresh"
        assert c.discarded_updates == 1

    def test_single_level_invocation_closes_directly(self):
        binding = ScriptedBinding()
        client = CorrectableClient(binding)
        c = client.invoke_weak(read("k"))
        binding.respond(0, WEAK, "value")
        assert c.is_final()
        assert c.final_view().consistency == WEAK

    def test_error_fails_correctable(self):
        binding = ScriptedBinding()
        client = CorrectableClient(binding)
        c = client.invoke(read("missing"))
        binding.respond(0, STRONG, None, error=OperationError("not found"))
        assert c.state is CorrectableState.ERROR

    def test_error_after_final_is_ignored(self):
        binding = ScriptedBinding()
        client = CorrectableClient(binding)
        c = client.invoke(read("k"))
        binding.respond(0, STRONG, "v")
        binding.respond(0, WEAK, None, error=OperationError("late failure"))
        assert c.is_final()

    def test_unrequested_level_raises_binding_error(self):
        binding = ScriptedBinding(levels=(WEAK, CAUSAL, STRONG))
        client = CorrectableClient(binding)
        client.invoke(read("k"), levels=[WEAK, STRONG])
        with pytest.raises(BindingError):
            binding.respond(0, CAUSAL, "v")

    def test_confirmation_reuses_preliminary_value(self):
        binding = ScriptedBinding()
        client = CorrectableClient(binding)
        c = client.invoke(read("k"))
        binding.respond(0, WEAK, "the-value")
        binding.respond(0, STRONG, None, metadata={"is_confirmation": True})
        assert c.value() == "the-value"
        assert c.final_view().is_confirmation

    def test_metadata_is_attached_to_views(self):
        binding = ScriptedBinding()
        client = CorrectableClient(binding)
        c = client.invoke(read("k"))
        binding.respond(0, WEAK, "v", metadata={"replica": "r1"})
        assert c.latest_view().metadata["replica"] == "r1"


class TestInstrumentation:
    def test_counters(self):
        binding = ScriptedBinding()
        client = CorrectableClient(binding)
        client.invoke(read("a"))
        client.invoke_weak(read("b"))
        client.invoke_strong(write("c", 1))
        assert client.invocations == 3
        assert client.icg_invocations == 1
        assert client.weak_invocations == 1
        assert client.strong_invocations == 1

    def test_available_levels_sorted(self):
        binding = ScriptedBinding(levels=(STRONG, WEAK))
        client = CorrectableClient(binding)
        assert client.available_levels() == [WEAK, STRONG]

    def test_clock_from_binding_timestamps_views(self):
        binding = ScriptedBinding()
        binding.clock = lambda: 123.0
        client = CorrectableClient(binding)
        c = client.invoke_strong(read("k"))
        binding.respond(0, STRONG, "v")
        assert c.final_view().timestamp == 123.0


class TestSessionMultiplexing:
    def test_pool_size_and_iteration(self):
        client = CorrectableClient(ScriptedBinding())
        pool = client.sessions(5)
        assert len(pool) == 5
        assert [s.session_id for s in pool] == [0, 1, 2, 3, 4]
        assert all(s.client is client for s in pool)

    def test_pool_requires_positive_size(self):
        client = CorrectableClient(ScriptedBinding())
        with pytest.raises(ValueError):
            client.sessions(0)

    def test_round_robin_is_deterministic(self):
        pool = CorrectableClient(ScriptedBinding()).sessions(3)
        order = [pool.next_session().session_id for _ in range(7)]
        assert order == [0, 1, 2, 0, 1, 2, 0]
        assert pool.session(1) is list(pool)[1]

    def test_sessions_share_one_binding(self):
        binding = ScriptedBinding()
        pool = CorrectableClient(binding).sessions(100)
        for _ in range(100):
            pool.next_session().invoke_strong(read("k"))
        # Every invocation went through the one shared binding/client.
        assert len(binding.submissions) == 100
        assert pool.client.invocations == 100

    def test_per_session_invocation_counters(self):
        pool = CorrectableClient(ScriptedBinding()).sessions(2)
        pool.session(0).invoke(read("a"))
        pool.session(0).invoke_weak(read("b"))
        pool.session(1).invoke_strong(write("c", 1))
        assert pool.session(0).invocations == 2
        assert pool.session(1).invocations == 1
        assert pool.total_invocations() == 3

    def test_session_invocations_behave_like_the_client(self):
        binding = ScriptedBinding(levels=(WEAK, STRONG))
        session = CorrectableClient(binding).sessions(1).session(0)
        c = session.invoke(read("k"))
        binding.respond(0, WEAK, "w")
        binding.respond(0, STRONG, "s")
        assert [v.value for v in c.views()] == ["w", "s"]
        assert c.state is CorrectableState.FINAL
        # Level validation happens once, against the shared binding.
        with pytest.raises(UnsupportedConsistencyError):
            session.invoke(read("k"), levels=[CAUSAL])

    def test_camelcase_aliases_on_sessions(self):
        binding = ScriptedBinding()
        session = CorrectableClient(binding).sessions(1).session(0)
        session.invokeWeak(read("a"))
        session.invokeStrong(read("b"))
        assert [s["levels"] for s in binding.submissions] == [[WEAK], [STRONG]]
