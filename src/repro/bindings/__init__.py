"""Storage bindings (Section 5).

A binding encapsulates everything specific to one storage stack — which
consistency levels it offers and how to execute an operation under each —
behind the two-method API of :class:`~repro.bindings.base.Binding`.
"""

from repro.bindings.base import Binding, CallbackType
from repro.bindings.local import LocalBinding, LocalStore
from repro.bindings.primary_backup import PrimaryBackupBinding, PrimaryBackupStore
from repro.bindings.cassandra import CassandraBinding
from repro.bindings.zookeeper import ZooKeeperQueueBinding
from repro.bindings.cached_store import CachedStoreBinding
from repro.bindings.blockchain import BlockchainBinding

__all__ = [
    "Binding",
    "CallbackType",
    "LocalBinding",
    "LocalStore",
    "PrimaryBackupBinding",
    "PrimaryBackupStore",
    "CassandraBinding",
    "ZooKeeperQueueBinding",
    "CachedStoreBinding",
    "BlockchainBinding",
]
