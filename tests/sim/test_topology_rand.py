"""Tests for the region topology, latency model, and RNG derivation."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.rand import derive_rng, derive_seed
from repro.sim.topology import (
    INTRA_REGION_RTT_MS,
    Region,
    Topology,
    ec2_topology,
    replica_regions_default,
    replica_regions_twissandra,
    twissandra_topology,
)


class TestRtts:
    def test_paper_rtts(self):
        topo = Topology(jitter_fraction=0.0)
        assert topo.rtt(Region.IRL, Region.FRK) == pytest.approx(20.0)
        assert topo.rtt(Region.IRL, Region.VRG) == pytest.approx(83.0)

    def test_rtt_is_symmetric(self):
        topo = Topology()
        assert topo.rtt(Region.FRK, Region.VRG) == topo.rtt(Region.VRG, Region.FRK)

    def test_same_region_uses_intra_rtt(self):
        topo = Topology()
        assert topo.rtt(Region.IRL, Region.IRL) == INTRA_REGION_RTT_MS

    def test_unknown_pair_raises(self):
        topo = Topology()
        with pytest.raises(KeyError):
            topo.rtt(Region.IRL, "mars-east-1")

    def test_set_rtt_overrides(self):
        topo = Topology()
        topo.set_rtt(Region.IRL, Region.FRK, 99.0)
        assert topo.rtt(Region.FRK, Region.IRL) == 99.0

    def test_set_rtt_same_region_rejected(self):
        with pytest.raises(ValueError):
            Topology().set_rtt(Region.IRL, Region.IRL, 1.0)

    def test_regions_listing(self):
        regions = list(Topology().regions())
        for region in (Region.IRL, Region.FRK, Region.VRG):
            assert region in regions


class TestOneWayDelays:
    def test_one_way_without_jitter_is_half_rtt(self):
        topo = Topology(jitter_fraction=0.0)
        assert topo.one_way(Region.IRL, Region.FRK) == pytest.approx(10.0)

    def test_jitter_bounded(self):
        topo = Topology(jitter_fraction=0.1, rng=random.Random(3))
        base = 10.0
        for _ in range(200):
            delay = topo.one_way(Region.IRL, Region.FRK)
            assert base <= delay <= base * 1.1 + 1e-9

    def test_same_host_uses_loopback(self):
        topo = Topology(jitter_fraction=0.0)
        assert topo.one_way(Region.IRL, Region.IRL, same_host=True) < \
            topo.one_way(Region.IRL, Region.IRL)

    def test_factories(self):
        assert isinstance(ec2_topology(), Topology)
        assert isinstance(twissandra_topology(), Topology)

    def test_default_placements(self):
        assert set(replica_regions_default()) == {Region.FRK, Region.IRL,
                                                  Region.VRG}
        assert set(replica_regions_twissandra()) == {Region.VRG, Region.NCA,
                                                     Region.ORE}


class TestRandDerivation:
    def test_same_inputs_same_seed(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_different_names_different_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_master_seeds_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_rng_reproducible(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    @given(st.integers(), st.text(max_size=30))
    def test_derive_seed_in_64bit_range(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2 ** 64
