"""Tests for the LRU client-side cache."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.client_cache import ClientCache


class TestBasics:
    def test_put_then_lookup_hits(self):
        cache = ClientCache()
        cache.put("k", "v")
        hit, value = cache.lookup("k")
        assert hit and value == "v"
        assert cache.hits == 1

    def test_lookup_missing_misses(self):
        cache = ClientCache()
        hit, value = cache.lookup("k")
        assert not hit and value is None
        assert cache.misses == 1

    def test_get_with_default(self):
        cache = ClientCache()
        assert cache.get("absent", default="d") == "d"
        cache.put("present", 1)
        assert cache.get("present") == 1

    def test_contains_and_len(self):
        cache = ClientCache()
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1

    def test_cached_none_is_a_hit(self):
        cache = ClientCache()
        cache.put("k", None)
        hit, value = cache.lookup("k")
        assert hit and value is None

    def test_invalidate(self):
        cache = ClientCache()
        cache.put("k", 1)
        assert cache.invalidate("k")
        assert not cache.invalidate("k")
        assert "k" not in cache

    def test_clear(self):
        cache = ClientCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = ClientCache()
        cache.put("k", 1)
        cache.lookup("k")
        cache.lookup("missing")
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert ClientCache().hit_rate() == 0.0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ClientCache(capacity=0)


class TestEviction:
    def test_evicts_least_recently_used(self):
        cache = ClientCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.lookup("a")          # refresh a
        cache.put("c", 3)          # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = ClientCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)          # evicts b, not a
        assert cache.get("a") == 10
        assert "b" not in cache


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=30),
                          st.integers()), max_size=100),
       st.integers(min_value=1, max_value=10))
def test_capacity_never_exceeded_and_latest_value_wins(operations, capacity):
    cache = ClientCache(capacity=capacity)
    latest = {}
    for key, value in operations:
        cache.put(str(key), value)
        latest[str(key)] = value
        assert len(cache) <= capacity
    for key in latest:
        hit, value = cache.lookup(key)
        if hit:
            assert value == latest[key]
