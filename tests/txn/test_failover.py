"""Coordinator failover and participant-recovery tests.

Heartbeats stay on here, so the event queue never drains; every test
advances the clock with ``env.run(until=...)`` / ``run_until`` instead of
``run_until_idle``.
"""

from repro.txn import TxnConfig, TxnState
from txn_helpers import collect, make_fabric, run_until


class TestCoordinatorFailover:
    def test_standby_takes_over_and_the_stream_survives(self):
        fabric = make_fabric(config=TxnConfig(), record_count=60)
        manager = fabric.manager
        env = fabric.built.env
        keys = fabric.built.dataset.keys()
        first, second = fabric.coordinators

        # Open-loop stream of single-key transactions on distinct keys
        # (no lock conflicts): every one of them must resolve even though
        # the active coordinator dies mid-stream.
        count = 40
        for i in range(count):
            env.scheduler.schedule_at(
                i * 50.0, lambda i=i: manager.execute({keys[i]: f"v{i}"}))

        env.run(until=1_000.0)
        assert first.active and not second.active
        first.crash()
        env.scheduler.schedule_at(3_000.0, first.recover)
        env.run(until=30_000.0)

        assert fabric.total_takeovers() == 1
        assert second.active and second.epoch == 2
        # The deposed coordinator rejoined as a standby, not as a rival.
        assert first.alive and not first.active
        assert fabric.active_coordinator() is second

        committed = len(manager.acked_commits)
        aborted = len(manager.acked_aborts)
        assert manager.failed_requests == 0
        assert committed + aborted == count
        assert committed >= count - 2     # at most the crash-window stragglers
        # The client felt the failover: timeouts burned retries, and the
        # round-robin rotation bounced off the standby at least once.
        assert manager.retries > 0
        assert manager.redirects_followed > 0
        recover_ms = fabric.time_to_recover_ms()
        assert recover_ms is not None and recover_ms > 0.0
        fabric.assert_atomic()

    def test_crash_in_decision_window_revokes_the_prepared_view(self):
        # A wide durable-decision window makes the race deterministic: the
        # client sees the speculative PREPARED view while the decision is
        # still volatile, the coordinator dies, and the successor — finding
        # prepared records but no commit record — must abort.  This is the
        # one case where the speculative view lies.
        fabric = make_fabric(config=TxnConfig(decision_log_ms=80.0))
        manager = fabric.manager
        env = fabric.built.env
        key = fabric.built.dataset.keys()[0]
        box = collect(manager.execute({key: "speculative"}))

        run_until(env, lambda: manager.stats.prepared_views == 1,
                  limit_ms=5_000.0)
        first = fabric.coordinators[0]
        txn_id = box["views"][0].value["txn_id"]
        assert txn_id in first.in_flight        # decision not yet durable
        first.crash()
        env.run(until=env.now() + 20_000.0)

        assert box["final"].value["outcome"] == "abort"
        assert manager.stats.prepared_views == 1
        assert manager.stats.matched == 0
        assert manager.stats.mismatched == 1
        assert manager.stats.accuracy() == 0.0
        assert fabric.total_takeovers() == 1
        for owner in fabric.owners_of(key):
            participant = fabric.participants[owner]
            record = participant.log.get(txn_id)
            assert record is not None and record.state == TxnState.ABORTED
            stored = participant.replica.table.get(key)
            assert stored is None or stored.value != "speculative"
        fabric.assert_atomic()


class TestParticipantRecovery:
    def test_commit_decision_is_redelivered_after_restart(self):
        fabric = make_fabric(config=TxnConfig())
        manager = fabric.manager
        env = fabric.built.env
        key = fabric.built.dataset.keys()[0]
        target = fabric.participants[fabric.owners_of(key)[0]]
        box = collect(manager.execute({key: "durable"}))

        # Crash one owner right after it voted yes: its vote counts, the
        # commit goes ahead on the surviving owners, and the client is
        # acked — the crashed owner now owes an application it cannot have
        # seen.
        run_until(env, lambda: target.votes_yes >= 1, step_ms=0.5,
                  limit_ms=2_000.0)
        target.crash()
        run_until(env, lambda: box["final"] is not None, limit_ms=10_000.0)
        assert box["final"].value["outcome"] == "commit"
        assert target.commits_applied == 0

        target.recover()
        env.run(until=env.now() + 5_000.0)

        txn_id = box["final"].value["txn_id"]
        coordinator = fabric.active_coordinator()
        # The periodic decision-retry tick redelivered the commit to the
        # restarted participant, which applied it and released its locks.
        assert coordinator.decision_redeliveries > 0
        assert target.commits_applied == 1
        assert target.log.get(txn_id).state == TxnState.COMMITTED
        assert target.replica.table.get(key).value == "durable"
        assert not target.locks
        fabric.assert_atomic()
