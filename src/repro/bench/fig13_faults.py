"""Figure 13 (beyond the paper): Correctables under injected faults.

The paper evaluates preliminary/final views on a healthy deployment; this
harness measures what happens when the storage actually misbehaves, which is
when bounding the cost of acting on preliminary views matters most.  Every
run drives the fault-tolerant protocol variants (coordinator timeouts with
retry/downgrade, client failover, read repair, ZooKeeper leader election)
through the scenarios of :mod:`repro.faults.scenarios`:

* **Cassandra (CC2)** — YCSB-B closed-loop load from three regions while a
  replica crashes, a WAN partition opens and heals, a link flaps, or one
  replica runs an order of magnitude slower.  Reported per scenario:
  throughput, preliminary/final latency, divergence (and its complement,
  preliminary-view accuracy), downgraded and failed operations, retries, and
  late preliminary views discarded after the final response.
* **ZooKeeper (CZK)** — an ICG queue workload across the ensemble while the
  leader crashes; followers detect the failure, elect a replacement, and
  clients fail over.  Reported: completed/failed operations, elections and
  promotions, and whether leadership actually moved.

Shapes to expect: the baseline row shows zero degraded/failed operations;
replica-crash and wan-partition complete their reads via retry or downgrade
(no failures) at the cost of tail latency; divergence rises under faults
because retried reads observe replicas mid-repair; the leader-crash run
elects exactly one new leader and keeps the queue serving.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench.common import (
    build_cassandra_scenario,
    make_generator_factory,
    make_kv_issue,
)
from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.cassandra_sim.config import CassandraConfig
from repro.faults import (
    FaultInjector,
    cassandra_aliases,
    get_scenario,
    zookeeper_aliases,
)
from repro.metrics.divergence import DivergenceCounter
from repro.metrics.latency import LatencyRecorder
from repro.metrics.summary import format_table
from repro.sim.environment import SimEnvironment
from repro.sim.rand import derive_rng, derive_seed
from repro.sim.topology import Region
from repro.workloads.runner import ClosedLoopRunner
from repro.workloads.ycsb import workload_by_name
from repro.zookeeper_sim.cluster import ZooKeeperCluster
from repro.zookeeper_sim.config import ZooKeeperConfig

#: Cassandra scenarios run by default ("baseline" = no faults, for reference).
DEFAULT_SCENARIOS = ("baseline", "replica-crash", "wan-partition",
                     "flapping-link", "slow-follower")


def run_fig13_scenario(scenario_name: str, workload: str = "B",
                       threads_per_client: int = 4,
                       duration_ms: float = 12_000.0,
                       warmup_ms: float = 3_000.0,
                       cooldown_ms: float = 1_000.0, record_count: int = 300,
                       seed: int = 42) -> Dict:
    """Run one Cassandra fault scenario; returns its figure record."""
    spec = workload_by_name(workload).with_distribution("zipfian")
    built = build_cassandra_scenario(
        seed=seed, record_count=record_count,
        client_regions=(Region.IRL, Region.FRK, Region.VRG),
        config=CassandraConfig.fault_tolerant(),
        client_fallbacks=True)
    injector = None
    description = "no faults (reference)"
    if scenario_name != "baseline":
        scenario = get_scenario(scenario_name)
        description = scenario.description
        injector = FaultInjector(built.env, schedule=scenario,
                                 aliases=cassandra_aliases(built.cluster))
    runners: Dict[str, ClosedLoopRunner] = {}
    for index, (region, client) in enumerate(built.clients.items()):
        runners[region] = ClosedLoopRunner(
            scheduler=built.env.scheduler,
            issue=make_kv_issue(client, "CC2"),
            make_generator=make_generator_factory(
                spec, built.dataset,
                derive_seed(seed, f"fig13-{scenario_name}") % (2 ** 31),
                f"fig13-{region}"),
            threads=threads_per_client,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
            cooldown_ms=cooldown_ms,
            label=f"fig13-{scenario_name}-{region}",
            # Arm the fault script once, alongside the first runner.
            faults=injector if index == 0 else None,
        )
    for runner in runners.values():
        runner.start()
    end = max(runner.end_time for runner in runners.values())
    built.env.run(until=end + 60_000.0)

    divergence = DivergenceCounter()
    final_latency = LatencyRecorder()
    preliminary_latency = LatencyRecorder()
    measured_ops = degraded = failed = 0
    for result in (r.result for r in runners.values()):
        divergence.merge(result.divergence)
        final_latency.merge(result.final_latency)
        preliminary_latency.merge(result.preliminary_latency)
        measured_ops += result.measured_ops
        degraded += result.degraded_ops
        failed += result.failed_ops
    measured_window_ms = duration_ms - warmup_ms - cooldown_ms
    return {
        "system": "CC2",
        "scenario": scenario_name,
        "description": description,
        "measured_ops": measured_ops,
        "throughput_ops_s": measured_ops / (measured_window_ms / 1000.0),
        "preliminary_mean_ms": preliminary_latency.mean(),
        "final_mean_ms": final_latency.mean(),
        "final_p99_ms": final_latency.p99(),
        "divergence_pct": divergence.divergence_percent(),
        "prelim_accuracy_pct": 100.0 - divergence.divergence_percent(),
        "degraded_ops": degraded,
        "failed_ops": failed,
        "coordinator_retries": sum(r.read_retries + r.write_retries
                                   for r in built.cluster.replicas),
        "client_retries": sum(c.retries for c in built.cluster.clients),
        "discarded_updates": sum(c.late_preliminaries
                                 for c in built.cluster.clients),
        "messages_dropped": built.env.network.messages_dropped,
        "faults_applied": len(injector.log) if injector else 0,
    }


def build_fig13_points(scenarios: Sequence[str] = DEFAULT_SCENARIOS,
                       workload: str = "B", threads_per_client: int = 4,
                       duration_ms: float = 12_000.0,
                       warmup_ms: float = 3_000.0,
                       cooldown_ms: float = 1_000.0, record_count: int = 300,
                       seed: int = 42, include_zookeeper: bool = False,
                       zk: Optional[Dict] = None) -> List[SweepPoint]:
    """Cassandra fault points, optionally plus the ZooKeeper leader-crash."""
    cells: List = [
        ({"system": "CC2", "scenario": scenario_name},
         dict(scenario_name=scenario_name, workload=workload,
              threads_per_client=threads_per_client, duration_ms=duration_ms,
              warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
              record_count=record_count, seed=seed))
        for scenario_name in scenarios]
    if include_zookeeper:
        zk_kwargs = dict(seed=seed)
        zk_kwargs.update(zk or {})
        cells.append(({"system": "CZK", "scenario": "leader-crash"},
                      zk_kwargs))
    return make_points("fig13", cells)


def run_fig13_point(point: SweepPoint) -> Dict:
    """Dispatch one fault point to the Cassandra or ZooKeeper harness."""
    if point.label("system") == "CZK":
        return run_fig13_zookeeper(**point.kwargs)
    return run_fig13_scenario(**point.kwargs)


def run_fig13(scenarios: Sequence[str] = DEFAULT_SCENARIOS,
              workload: str = "B", threads_per_client: int = 4,
              duration_ms: float = 12_000.0, warmup_ms: float = 3_000.0,
              cooldown_ms: float = 1_000.0, record_count: int = 300,
              seed: int = 42, jobs: JobsSpec = 1) -> List[Dict]:
    """Run the Cassandra fault scenarios; returns one record per scenario.

    Every scenario uses the same seed, workload, and topology — only the
    fault script differs — so the rows are directly comparable.
    """
    points = build_fig13_points(
        scenarios=scenarios, workload=workload,
        threads_per_client=threads_per_client, duration_ms=duration_ms,
        warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
        record_count=record_count, seed=seed)
    return run_sweep(points, run_fig13_point, jobs=jobs).records()


class _QueueOpGenerator:
    """Closed-loop generator alternating weighted enqueue/dequeue operations."""

    def __init__(self, queue_path: str, rng: random.Random,
                 enqueue_fraction: float = 0.5) -> None:
        self.queue_path = queue_path
        self.rng = rng
        self.enqueue_fraction = enqueue_fraction
        self._counter = 0

    def next_operation(self):
        self._counter += 1
        if self.rng.random() < self.enqueue_fraction:
            return "enqueue", self.queue_path, f"job-{self._counter}"
        return "dequeue", self.queue_path, None


def run_fig13_zookeeper(crash_at_ms: float = 4_000.0,
                        crash_duration_ms: float = 6_000.0,
                        threads_per_client: int = 2,
                        duration_ms: float = 15_000.0,
                        warmup_ms: float = 2_000.0,
                        cooldown_ms: float = 1_000.0,
                        queue_depth: int = 5_000,
                        seed: int = 42) -> Dict:
    """Run the CZK queue workload through a leader crash; returns one record."""
    env = SimEnvironment(seed=seed)
    config = ZooKeeperConfig.fault_tolerant()
    cluster = ZooKeeperCluster(env, leader_region=Region.IRL,
                               follower_regions=(Region.FRK, Region.VRG),
                               config=config)
    cluster.preload_queue("/queue", [f"ticket-{i}" for i in range(queue_depth)])
    cluster.enable_failure_detection()
    old_leader = cluster.leader.name

    scenario = get_scenario("leader-crash", at_ms=crash_at_ms,
                            duration_ms=crash_duration_ms)
    injector = FaultInjector(env, schedule=scenario,
                             aliases=zookeeper_aliases(cluster))

    def make_issue(client) -> Callable:
        def _issue(op_type: str, path: str, value: Optional[str],
                   done: Callable[[Dict[str, Any]], None]) -> None:
            state: Dict[str, Any] = {"prelim": None, "prelim_latency": None,
                                     "had_prelim": False}

            def _on_preliminary(resp: Dict[str, Any]) -> None:
                state["had_prelim"] = True
                state["prelim"] = (resp["result"] or {}).get("name")
                state["prelim_latency"] = resp["latency_ms"]

            def _on_final(resp: Dict[str, Any]) -> None:
                failed = not resp["ok"]
                final_name = ((resp.get("result") or {}).get("name")
                              if not failed else None)
                done({
                    "final_latency_ms": resp["latency_ms"],
                    "preliminary_latency_ms": state["prelim_latency"],
                    "had_preliminary": state["had_prelim"],
                    "diverged": (not failed and state["had_prelim"]
                                 and state["prelim"] != final_name),
                    "failed": failed,
                })

            if op_type == "enqueue":
                client.enqueue(path, value, icg=True,
                               on_preliminary=_on_preliminary,
                               on_final=_on_final)
            else:
                client.dequeue(path, icg=True,
                               on_preliminary=_on_preliminary,
                               on_final=_on_final)
        return _issue

    runners = []
    for index, region in enumerate((Region.IRL, Region.FRK, Region.VRG)):
        client = cluster.add_client(f"queue-client-{region}", region,
                                    connect_region=region, failover=True)
        runners.append(ClosedLoopRunner(
            scheduler=env.scheduler,
            issue=make_issue(client),
            make_generator=lambda thread_id, _r=region: _QueueOpGenerator(
                "/queue", derive_rng(seed, f"fig13zk-{_r}-{thread_id}")),
            threads=threads_per_client,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
            cooldown_ms=cooldown_ms,
            label=f"fig13-leader-crash-{region}",
            faults=injector if index == 0 else None,
        ))
    for runner in runners:
        runner.start()
    end = max(runner.end_time for runner in runners)
    env.run(until=end + 60_000.0)

    # Liveness probe: the re-elected ensemble must still commit writes
    # (guards against a post-election stall that op counters alone can
    # miss, since timed-out operations still "complete" at the client).
    probe_results: List[Dict] = []
    cluster.clients[0].enqueue("/queue", "fig13-probe",
                               on_final=probe_results.append)
    env.run(until=end + 120_000.0)

    divergence = DivergenceCounter()
    final_latency = LatencyRecorder()
    preliminary_latency = LatencyRecorder()
    measured_ops = failed = 0
    for runner in runners:
        divergence.merge(runner.result.divergence)
        final_latency.merge(runner.result.final_latency)
        preliminary_latency.merge(runner.result.preliminary_latency)
        measured_ops += runner.result.measured_ops
        failed += runner.result.failed_ops
    new_leader = cluster.current_leader()
    measured_window_ms = duration_ms - warmup_ms - cooldown_ms
    return {
        "system": "CZK",
        "scenario": "leader-crash",
        "description": scenario.description,
        "measured_ops": measured_ops,
        "throughput_ops_s": measured_ops / (measured_window_ms / 1000.0),
        "preliminary_mean_ms": preliminary_latency.mean(),
        "final_mean_ms": final_latency.mean(),
        "final_p99_ms": final_latency.p99(),
        "divergence_pct": divergence.divergence_percent(),
        "prelim_accuracy_pct": 100.0 - divergence.divergence_percent(),
        "degraded_ops": 0,
        "failed_ops": failed,
        "coordinator_retries": sum(s.elections_started for s in cluster.servers),
        "client_retries": sum(c.retries for c in cluster.clients),
        "discarded_updates": 0,
        "messages_dropped": env.network.messages_dropped,
        "faults_applied": len(injector.log),
        # ZooKeeper-specific outcomes asserted by the benchmark test.
        "old_leader": old_leader,
        "new_leader": new_leader.name if new_leader else None,
        "leader_changed": bool(new_leader and new_leader.name != old_leader),
        "promotions": sum(s.promotions for s in cluster.servers),
        "post_crash_commit_ok": bool(probe_results and probe_results[0]["ok"]),
        "committed_txns": max(s.commit_log.last_applied
                              for s in cluster.servers),
    }


def run_fig13_all(scenarios: Sequence[str] = DEFAULT_SCENARIOS,
                  workload: str = "B", threads_per_client: int = 4,
                  duration_ms: float = 12_000.0, warmup_ms: float = 3_000.0,
                  cooldown_ms: float = 1_000.0, record_count: int = 300,
                  seed: int = 42, include_zookeeper: bool = True,
                  zk: Optional[Dict] = None,
                  jobs: JobsSpec = 1) -> List[Dict]:
    """Cassandra scenarios plus the ZooKeeper leader-crash run, one table.

    A single sweep covers both systems, so the ZooKeeper run parallelizes
    alongside the Cassandra scenarios instead of waiting for them.
    """
    points = build_fig13_points(
        scenarios=scenarios, workload=workload,
        threads_per_client=threads_per_client, duration_ms=duration_ms,
        warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
        record_count=record_count, seed=seed,
        include_zookeeper=include_zookeeper, zk=zk)
    return run_sweep(points, run_fig13_point, jobs=jobs).records()


def format_fig13(records: List[Dict]) -> str:
    columns = ["system", "scenario", "measured_ops", "throughput_ops_s",
               "preliminary_mean_ms", "final_mean_ms", "final_p99_ms",
               "divergence_pct", "prelim_accuracy_pct", "degraded_ops",
               "failed_ops", "coordinator_retries", "client_retries",
               "discarded_updates"]
    headers = ["system", "scenario", "ops", "ops/s", "prelim mean (ms)",
               "final mean (ms)", "final p99 (ms)", "divergence (%)",
               "prelim accuracy (%)", "degraded", "failed", "coord retries",
               "client retries", "discarded"]
    rows = [[record[c] for c in columns] for record in records]
    lines = [format_table(
        headers, rows,
        title=("Figure 13 — Correctables under injected faults "
               "(CC2 reads r=2 + CZK queue, fault-tolerant configs)"))]
    for record in records:
        lines.append(f"  {record['scenario']}: {record['description']}")
    return "\n".join(lines)
