"""Binding to the (simulated) Correctable Cassandra cluster.

The binding maps consistency levels onto quorum sizes:

* ``WEAK``   — read with R = 1 (the coordinator's closest/local copy);
* ``STRONG`` — read with R = ``strong_read_quorum`` (2 by default, 3 for the
  CC³ configuration of Figure 5);
* ``invoke`` with both levels issues a *single* ICG read: the coordinator
  flushes the preliminary response and later the final quorum response, as
  implemented by :class:`repro.cassandra_sim.replica.CassandraReplica`.

Writes always use W = ``write_quorum`` (1 in the paper's experiments); the
strong view of a write is the coordinator's acknowledgement.
"""

from __future__ import annotations

from typing import List

from repro.bindings.base import Binding, CallbackType
from repro.cassandra_sim.client import CassandraClient
from repro.core.consistency import ConsistencyLevel, STRONG, WEAK
from repro.core.operations import Operation


class CassandraBinding(Binding):
    """Correctables binding over a :class:`CassandraClient`."""

    def __init__(self, client: CassandraClient,
                 strong_read_quorum: int = 2,
                 write_quorum: int = 1) -> None:
        if strong_read_quorum < 2:
            raise ValueError("strong reads need a quorum of at least 2")
        self.client = client
        self.strong_read_quorum = strong_read_quorum
        self.write_quorum = write_quorum
        self.clock = client.scheduler.now

    def consistency_levels(self) -> List[ConsistencyLevel]:
        return [WEAK, STRONG]

    # -- lean op pipeline ----------------------------------------------------
    def lean_ok(self) -> bool:
        """Whether the storage client can take the fused/lean fast path now
        (``protocol.lean_ops`` switch, single contact, fault hooks off)."""
        return self.client.lean_ready()

    def submit_lean(self, operation: Operation,
                    levels: List[ConsistencyLevel], lean) -> bool:
        """Map requested levels onto one lean (sink-completed) operation.

        Reads map exactly like :meth:`_submit_read`: both levels → a single
        ICG read (preliminary at R=1, final at the strong quorum), one level
        → a plain read at that level's quorum.  Weak-or-strong-only writes
        map to one quorum write.  A write requesting *both* levels has no
        lean mapping — its weak view is an optimistic local echo the sink
        protocol does not model — so it reports False and rides the classic
        pipeline.
        """
        levels = self.validate_levels(levels)
        want_weak = WEAK in levels
        want_strong = STRONG in levels
        if operation.name == "read":
            if want_weak and want_strong:
                lean.preliminary_consistency = WEAK
                lean.final_consistency = STRONG
                self.client.lean_read(operation.key,
                                      r=self.strong_read_quorum, icg=True,
                                      sink=lean)
            elif want_strong:
                lean.final_consistency = STRONG
                self.client.lean_read(operation.key,
                                      r=self.strong_read_quorum, icg=False,
                                      sink=lean)
            else:
                lean.final_consistency = WEAK
                self.client.lean_read(operation.key, r=1, icg=False,
                                      sink=lean)
            return True
        if operation.name == "write" and not (want_weak and want_strong):
            value = operation.args[0]
            lean.final_consistency = STRONG if want_strong else WEAK
            lean.pending_value = value
            self.client.lean_write(operation.key, value, w=self.write_quorum,
                                   sink=lean)
            return True
        return False

    def submit_operation(self, operation: Operation,
                         levels: List[ConsistencyLevel],
                         callback: CallbackType) -> None:
        levels = self.validate_levels(levels)
        if operation.name == "read":
            self._submit_read(operation, levels, callback)
        elif operation.name == "write":
            self._submit_write(operation, levels, callback)
        else:
            self.reject_unsupported(operation, levels, callback)

    # -- reads --------------------------------------------------------------
    def _submit_read(self, operation: Operation,
                     levels: List[ConsistencyLevel],
                     callback: CallbackType) -> None:
        want_weak = WEAK in levels
        want_strong = STRONG in levels

        if want_weak and want_strong:
            # One ICG request: preliminary + final from the same coordinator.
            self.client.read(
                operation.key, r=self.strong_read_quorum, icg=True,
                on_preliminary=lambda resp: callback(
                    WEAK, resp["value"], metadata=self._meta(resp, r=1)),
                on_final=lambda resp: callback(
                    STRONG, resp["value"],
                    metadata=self._meta(resp, r=self.strong_read_quorum)),
            )
        elif want_strong:
            self.client.read(
                operation.key, r=self.strong_read_quorum, icg=False,
                on_final=lambda resp: callback(
                    STRONG, resp["value"],
                    metadata=self._meta(resp, r=self.strong_read_quorum)),
            )
        elif want_weak:
            self.client.read(
                operation.key, r=1, icg=False,
                on_final=lambda resp: callback(
                    WEAK, resp["value"], metadata=self._meta(resp, r=1)),
            )

    # -- writes ---------------------------------------------------------------
    def _submit_write(self, operation: Operation,
                      levels: List[ConsistencyLevel],
                      callback: CallbackType) -> None:
        value = operation.args[0]
        want_weak = WEAK in levels
        want_strong = STRONG in levels

        def _on_ack(resp):
            if want_strong:
                callback(STRONG, value, metadata=self._meta(resp, r=None))
            else:
                callback(WEAK, value, metadata=self._meta(resp, r=None))

        if want_weak and want_strong:
            # The weak view of a write is an immediate optimistic local echo;
            # the strong view is the coordinator acknowledgement.
            callback(WEAK, value, metadata={"optimistic": True})
        self.client.write(operation.key, value, w=self.write_quorum,
                          on_final=_on_ack)

    @staticmethod
    def _meta(resp: dict, r) -> dict:
        return {
            "latency_ms": resp.get("latency_ms"),
            "is_confirmation": resp.get("is_confirmation", False),
            "found": resp.get("found"),
            "replica": resp.get("replica"),
            "read_quorum": r,
        }
