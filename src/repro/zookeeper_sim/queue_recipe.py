"""The distributed-queue recipe.

Two dequeue implementations are provided, matching Section 6.2.2:

* :meth:`DistributedQueue.dequeue_recipe` — the standard ZooKeeper recipe:
  ``getChildren`` on the queue znode (a message whose size grows linearly
  with queue length), pick the lowest-numbered child, ``delete`` it, and
  retry when a concurrent consumer already removed it.  This is the ZK
  baseline of Figure 10.
* :meth:`DistributedQueue.dequeue` — the Correctable ZooKeeper server-side
  dequeue: a single constant-size transaction that removes the head
  atomically, optionally with an ICG preliminary from the server's local
  simulation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.zookeeper_sim.client import ResponseCallback, ZKClient


class DistributedQueue:
    """A FIFO queue stored under one znode, accessed through a :class:`ZKClient`."""

    def __init__(self, client: ZKClient, queue_path: str = "/queue") -> None:
        self.client = client
        self.queue_path = queue_path
        self.retries = 0

    # -- setup --------------------------------------------------------------
    def create_queue_node(self, on_done: Optional[ResponseCallback] = None) -> None:
        """Create the parent znode the queue lives under."""
        self.client.create(self.queue_path, data=None, sequential=False,
                           on_final=on_done or (lambda resp: None))

    # -- producers -------------------------------------------------------------
    def enqueue(self, item: Any, icg: bool = False,
                on_preliminary: Optional[ResponseCallback] = None,
                on_final: Optional[ResponseCallback] = None) -> None:
        """Append ``item`` (sequential create under the queue znode)."""
        self.client.enqueue(self.queue_path, item, icg=icg,
                            on_preliminary=on_preliminary, on_final=on_final)

    # -- consumers: CZK server-side dequeue ----------------------------------------
    def dequeue(self, icg: bool = False,
                on_preliminary: Optional[ResponseCallback] = None,
                on_final: Optional[ResponseCallback] = None) -> None:
        """Constant-message-size dequeue executed atomically at the servers."""
        self.client.dequeue(self.queue_path, icg=icg,
                            on_preliminary=on_preliminary, on_final=on_final)

    # -- consumers: standard ZooKeeper recipe ----------------------------------------
    def dequeue_recipe(self, on_final: ResponseCallback,
                       max_retries: int = 25) -> None:
        """The getChildren + delete recipe with retry under contention."""
        attempt = {"count": 0, "started": self.client.scheduler.now()}

        def _finish(item: Any, name: Optional[str], remaining: int,
                    ok: bool = True, error: Optional[str] = None) -> None:
            on_final({
                "ok": ok,
                "result": {"item": item, "name": name, "remaining": remaining},
                "error": error,
                "latency_ms": self.client.scheduler.now() - attempt["started"],
                "retries": attempt["count"],
            })

        def _try_once() -> None:
            self.client.get_children(self.queue_path, on_final=_got_children)

        def _got_children(resp: Dict[str, Any]) -> None:
            if not resp["ok"]:
                _finish(None, None, 0, ok=False, error=resp["error"])
                return
            children = resp["result"]
            if not children:
                _finish(None, None, 0)
                return
            head = children[0]
            remaining = len(children) - 1
            self.client.get(f"{self.queue_path}/{head}",
                            on_final=lambda r: _got_data(head, remaining, r))

        def _got_data(head: str, remaining: int, resp: Dict[str, Any]) -> None:
            if not resp["ok"]:
                _retry()
                return
            item = resp["result"]
            self.client.delete(
                f"{self.queue_path}/{head}",
                on_final=lambda r: _deleted(head, remaining, item, r))

        def _deleted(head: str, remaining: int, item: Any,
                     resp: Dict[str, Any]) -> None:
            if resp["ok"]:
                _finish(item, head, remaining)
            else:
                _retry()

        def _retry() -> None:
            attempt["count"] += 1
            self.retries += 1
            if attempt["count"] > max_retries:
                _finish(None, None, 0, ok=False, error="too many retries")
                return
            _try_once()

        _try_once()
