"""Shape tests for the figure-regeneration harnesses (tiny scale).

The benchmark suite in ``benchmarks/`` runs these harnesses at the scale
recorded in EXPERIMENTS.md; the tests here run much smaller configurations
and assert the qualitative shapes the paper reports, so a regression in the
simulators or the harnesses is caught by ``pytest tests/``.
"""

import pytest

from repro.bench.common import (
    CASSANDRA_SYSTEMS,
    REMOTE_CONTACTS,
    build_cassandra_scenario,
    cassandra_config_for,
    make_kv_issue,
)
from repro.bench.fig05_single_latency import format_fig05, latency_gap_ms, run_fig05
from repro.bench.fig09_zk_latency import format_fig09, run_fig09
from repro.bench.fig10_zk_bandwidth import format_fig10, run_fig10
from repro.bench.fig12_tickets import format_fig12, run_fig12
from repro.bench.ablations import (
    format_ticket_threshold_ablation,
    format_view_count_ablation,
    run_ticket_threshold_ablation,
    run_view_count_ablation,
)
from repro.sim.topology import Region


class TestCommon:
    def test_system_labels_cover_paper_notation(self):
        assert {"C1", "C2", "C3", "CC2", "CC3", "*CC2"} <= \
            set(CASSANDRA_SYSTEMS)

    def test_remote_contacts_never_local(self):
        for client_region, contact in REMOTE_CONTACTS.items():
            assert client_region != contact

    def test_scenario_preloads_dataset(self):
        scenario = build_cassandra_scenario(seed=1, record_count=10)
        replica = scenario.cluster.replica_in(Region.FRK)
        assert replica.table.read("user0") is not None

    def test_unknown_system_label_rejected(self):
        scenario = build_cassandra_scenario(seed=1, record_count=10)
        with pytest.raises(KeyError):
            make_kv_issue(scenario.client_in(Region.IRL), "C9")

    def test_confirmation_config_only_for_starred_system(self):
        assert cassandra_config_for("*CC2").confirmation_optimization
        assert not cassandra_config_for("CC2").confirmation_optimization


class TestFig05Shape:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fig05(samples=25, record_count=30, seed=7)

    def test_preliminary_tracks_c1(self, results):
        c1 = results["C1"]["final"]["mean_ms"]
        cc2_prelim = results["CC2"]["preliminary"]["mean_ms"]
        assert cc2_prelim == pytest.approx(c1, rel=0.25)

    def test_final_tracks_matching_quorum(self, results):
        assert results["CC2"]["final"]["mean_ms"] == pytest.approx(
            results["C2"]["final"]["mean_ms"], rel=0.25)
        assert results["CC3"]["final"]["mean_ms"] == pytest.approx(
            results["C3"]["final"]["mean_ms"], rel=0.25)

    def test_gap_grows_with_quorum_distance(self, results):
        assert latency_gap_ms(results, "CC3") > latency_gap_ms(results, "CC2") > 5

    def test_quorum_ordering(self, results):
        assert results["C1"]["final"]["mean_ms"] < \
            results["C2"]["final"]["mean_ms"] < \
            results["C3"]["final"]["mean_ms"]

    def test_report_renders(self, results):
        text = format_fig05(results)
        assert "CC2" in text and "preliminary" in text


class TestFig09Shape:
    @pytest.fixture(scope="class")
    def records(self):
        return run_fig09(samples=20, seed=7)

    def test_preliminary_tracks_connection_rtt(self, records):
        by_label = {r["configuration"]: r for r in records}
        assert by_label["leader-IRL / leader-IRL"]["czk_preliminary_ms"] < 6
        assert 15 < by_label["follower-FRK / leader-IRL"]["czk_preliminary_ms"] < 30
        assert by_label["leader-VRG / leader-VRG"]["czk_preliminary_ms"] > 70

    def test_final_matches_vanilla_zookeeper(self, records):
        for record in records:
            assert record["czk_final_ms"] == pytest.approx(
                record["zk_final_ms"], rel=0.2)

    def test_biggest_gap_is_nearby_follower_distant_leader(self, records):
        gaps = {r["configuration"]: r["latency_gap_ms"] for r in records}
        assert max(gaps, key=gaps.get) == "follower-IRL / leader-VRG"

    def test_enqueue_bandwidth_overhead_is_one_extra_response(self, records):
        for record in records:
            overhead = record["czk_bytes_per_op"] / record["zk_bytes_per_op"]
            assert 1.2 < overhead < 1.9

    def test_report_renders(self, records):
        assert "configuration" in format_fig09(records)


class TestFig10Shape:
    @pytest.fixture(scope="class")
    def records(self):
        return run_fig10(stocks=(60, 120), client_counts=(1, 3), seed=7)

    def test_zk_cost_grows_with_stock(self, records):
        zk = {(r["stock"], r["clients"]): r["kb_per_op"]
              for r in records if r["system"] == "ZK"}
        assert zk[(120, 1)] > zk[(60, 1)]

    def test_czk_cost_independent_of_stock(self, records):
        czk = {(r["stock"], r["clients"]): r["kb_per_op"]
               for r in records if r["system"] == "CZK"}
        assert czk[(120, 1)] == pytest.approx(czk[(60, 1)], rel=0.15)

    def test_czk_saves_substantially(self, records):
        for record in records:
            if record["system"] == "CZK":
                assert record["saving_vs_zk_pct"] > 40

    def test_every_ticket_dequeued_exactly_once(self, records):
        for record in records:
            assert record["dequeued"] == record["stock"]

    def test_report_renders(self, records):
        assert "kB/op" in format_fig10(records)


class TestFig12Shape:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fig12(stock=80, retailers=4, threshold=20, seed=7)

    def test_no_overselling(self, results):
        for result in results.values():
            assert result["oversold"] == 0
            assert result["tickets_sold"] == result["stock"]

    def test_czk_fast_before_threshold_slow_after(self, results):
        czk = results["CZK"]
        assert czk["early_mean_ms"] < 10
        assert czk["last_mean_ms"] > 25

    def test_zk_always_pays_commit_latency(self, results):
        zk = results["ZK"]
        assert zk["early_mean_ms"] > 25
        assert zk["preliminary_purchases"] == 0

    def test_czk_uses_preliminary_for_most_tickets(self, results):
        czk = results["CZK"]
        assert czk["preliminary_purchases"] >= czk["stock"] - czk["threshold"] - 5

    def test_report_renders(self, results):
        assert "oversold" in format_fig12(results)


class TestAblations:
    def test_threshold_zero_is_fastest(self):
        records = run_ticket_threshold_ablation(thresholds=(0, 40), stock=60,
                                                retailers=3, seed=7)
        by_threshold = {r["threshold"]: r for r in records}
        assert by_threshold[0]["mean_latency_ms"] < \
            by_threshold[40]["mean_latency_ms"]
        assert "threshold" in format_ticket_threshold_ablation(records)

    def test_third_view_cuts_time_to_first_view(self):
        records = run_view_count_ablation(reads=5)
        by_config = {r["configuration"]: r for r in records}
        two = by_config["2 views (backup+primary)"]
        three = by_config["3 views (cache+backup+primary)"]
        assert three["mean_first_view_ms"] < two["mean_first_view_ms"]
        assert three["refreshes_per_read"] > two["refreshes_per_read"]
        assert "views per read" in format_view_count_ablation(records)
