"""Determinism regression tests guarding the simulator fast path.

The golden fingerprints in ``data/determinism_golden.json`` were recorded on
the pre-optimization simulator core: they hash the exact event execution
order of a closed-loop run and the rendered figure reports for fixed seeds.
Any rewrite of the scheduler/network/metrics hot path must keep every hash
bit-identical — same events in the same order, same figure numbers.

Regenerate only when *intentionally* changing simulation behaviour::

    PYTHONPATH=src python tests/bench/test_determinism.py --regenerate
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Dict, Iterable

import pytest

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "determinism_golden.json"


def _sha(parts: Iterable) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def trace_fingerprint(batch_dispatch: bool = True, wheel: bool = True,
                      fast_path: bool = True, lean_ops: bool = True,
                      lean_toggles: Iterable[float] = (),
                      lean_toggle_noop: bool = False) -> Dict[str, object]:
    """Event-trace + metrics fingerprint of a small closed-loop CC2 run.

    ``batch_dispatch=False`` forces every delivery onto an individual heap
    entry; ``wheel=False`` routes all scheduling through the classic binary
    heap; ``fast_path=False`` disables the fused protocol path so every hop
    is a real :class:`Message`; ``lean_ops=False`` disables the lean op
    pipeline so every completion rides the response-dict pipeline.  The
    fingerprint must be identical in every combination — all four are
    amortizations, never reorderings.  ``lean_toggles`` schedules mid-run
    flips of the ``protocol.lean_ops`` switch at the given sim times, so
    operations in flight across a flip complete on the pipeline they were
    issued on while later ones take the other; ``lean_toggle_noop=True``
    schedules no-op events at the same instants instead (same event
    count/order), giving the toggle run an exactly comparable twin.
    """
    from repro.bench.common import (
        build_cassandra_scenario, cassandra_config_for, run_multi_region_load)
    from repro.sim.topology import Region
    from repro.workloads.ycsb import workload_by_name

    scenario = build_cassandra_scenario(
        seed=11, record_count=60,
        client_regions=(Region.IRL, Region.FRK),
        config=cassandra_config_for("CC2"))
    scenario.env.scheduler.batch_dispatch = batch_dispatch
    scenario.env.scheduler.wheel = wheel
    scenario.env.network.fast_path = fast_path
    scenario.env.network.lean_ops = lean_ops

    def _flip() -> None:
        scenario.env.network.lean_ops = not scenario.env.network.lean_ops

    def _noop() -> None:
        pass

    for at_ms in lean_toggles:
        scenario.env.scheduler.schedule_call_at(
            at_ms, _noop if lean_toggle_noop else _flip)
    trace = scenario.env.scheduler.start_trace()
    results = run_multi_region_load(
        scenario, "CC2", workload_by_name("A"), threads_per_client=2,
        duration_ms=2_500.0, warmup_ms=500.0, cooldown_ms=250.0, seed=11)
    summaries = [results[region].summary() for region in sorted(results)]
    return {
        "events": scenario.env.scheduler.events_executed,
        "messages": scenario.env.network.messages_sent,
        "total_bytes": scenario.env.network.total_bytes(),
        "trace_sha256": _sha(trace),
        "summary_sha256": _sha(summaries),
    }


def figure_fingerprints(jobs: int = 1) -> Dict[str, str]:
    """Hashes of the rendered quick-scale figure reports (fixed seeds).

    ``jobs`` routes the regeneration through the parallel sweep executor;
    the hashes must be identical at any job count (the sweep engine merges
    worker records in grid order).
    """
    from repro.bench.cli import run_figure

    return {name: _sha([run_figure(name, quick=True, jobs=jobs)])
            for name in ("fig06", "fig09", "fig14", "fig15", "fig16")}


def _golden() -> Dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(f"golden file missing: {GOLDEN_PATH}; regenerate with "
                    f"'python {__file__} --regenerate'")
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


class TestDeterminism:
    def test_event_trace_matches_golden(self):
        assert trace_fingerprint() == _golden()["trace"]

    def test_event_trace_matches_golden_with_batching_off(self):
        """Per-entry dispatch reproduces the batched trace bit for bit."""
        assert trace_fingerprint(batch_dispatch=False) == _golden()["trace"]

    def test_event_trace_matches_golden_with_wheel_off(self):
        """The heap-only scheduler reproduces the timing-wheel trace."""
        assert trace_fingerprint(wheel=False) == _golden()["trace"]

    def test_event_trace_matches_golden_with_fast_path_off(self):
        """The classic message path reproduces the fused trace bit for bit."""
        assert trace_fingerprint(fast_path=False) == _golden()["trace"]

    def test_event_trace_matches_golden_all_switches_off(self):
        assert trace_fingerprint(batch_dispatch=False, wheel=False,
                                 fast_path=False) == _golden()["trace"]

    def test_event_trace_matches_golden_with_lean_ops_off(self):
        """The response-dict pipeline reproduces the lean-op trace."""
        assert trace_fingerprint(lean_ops=False) == _golden()["trace"]

    def test_event_trace_identical_with_lean_ops_toggled_mid_run(self):
        """Mid-run ``protocol.lean_ops`` flips change nothing observable.

        The switch flips twice inside the measurement window (lean → dict
        → lean), so operations in flight at each flip complete on the
        pipeline they were issued on; the twin run schedules no-op events
        at the same instants, making the fingerprints exactly comparable.
        """
        toggles = (900.0, 1_700.0)
        assert trace_fingerprint(lean_toggles=toggles) == \
            trace_fingerprint(lean_toggles=toggles, lean_toggle_noop=True)

    def test_event_trace_is_repeatable(self):
        assert trace_fingerprint() == trace_fingerprint()

    def _run_pool_scenario(self, fast_path: bool):
        from repro.bench.common import (
            build_cassandra_scenario, cassandra_config_for,
            run_multi_region_load)
        from repro.sim.topology import Region
        from repro.workloads.ycsb import workload_by_name

        scenario = build_cassandra_scenario(
            seed=11, record_count=60, client_regions=(Region.IRL,),
            config=cassandra_config_for("CC2"))
        network = scenario.env.network
        network.pool_debug = True
        network.fast_path = fast_path
        run_multi_region_load(
            scenario, "CC2", workload_by_name("A"), threads_per_client=2,
            duration_ms=2_000.0, warmup_ms=250.0, cooldown_ms=250.0, seed=11)
        return scenario

    def test_pools_recycle_without_leaking(self):
        """Every pooled object acquired during a run goes back to its pool.

        Runs the classic message path (the fused path sends no messages)
        with the network pool's debug assertions armed (they fire on
        recycling a still-referenced message or double-recycling), then
        checks the counters: shells are actually reused, the free list only
        ever holds created shells, and no ICG per-op record stays
        outstanding once the run drains.
        """
        from repro.bench.common import _IcgReadOp

        icg_before = _IcgReadOp.pool_stats()
        outstanding_before = icg_before["created"] - icg_before["free"]
        scenario = self._run_pool_scenario(fast_path=False)
        stats = scenario.env.network.pool_stats()
        assert stats["reused"] > 0, "message pool never recycled a shell"
        assert stats["free"] <= stats["created"]
        assert stats["recycled"] >= stats["reused"]
        icg_after = _IcgReadOp.pool_stats()
        assert icg_after["created"] - icg_after["free"] == \
            outstanding_before, "an ICG per-op record leaked"

    def test_fused_pools_recycle_without_leaking(self):
        """A fused fault-free run sends zero messages and leaks no records.

        Every FusedRead/FusedWrite acquired during the run must be back in
        its pool once the run drains (outstanding = created + reused -
        recycled stays put), and the message pool must stay untouched —
        proof the whole protocol ran fused.
        """
        from repro.cassandra_sim.coordinator import FusedRead, FusedWrite

        def outstanding(pool) -> int:
            stats = pool.pool_stats()
            return stats["created"] + stats["reused"] - stats["recycled"]

        reads_before = outstanding(FusedRead)
        writes_before = outstanding(FusedWrite)
        acquired_before = FusedRead.created + FusedRead.reused
        scenario = self._run_pool_scenario(fast_path=True)
        stats = scenario.env.network.pool_stats()
        assert stats["created"] == 0, "a fused run materialized a Message"
        assert scenario.env.network.messages_sent > 0
        assert FusedRead.created + FusedRead.reused > acquired_before, \
            "the fused read path never ran"
        assert outstanding(FusedRead) == reads_before, \
            "a FusedRead record leaked"
        assert outstanding(FusedWrite) == writes_before, \
            "a FusedWrite record leaked"

    def test_live_counter_matches_scan_under_fused_load(self):
        """The O(1) live counter equals the O(n) queue scan throughout a run.

        Drives the fused closed-loop CC2 load (wheel + fast path on, the
        shipping defaults) in slices, auditing
        ``pending(live_only=True) == _scan_live()`` at every slice boundary
        — while timeouts are being scheduled and cancelled — and again
        after the full drain, where both must reach zero.
        """
        from repro.bench.common import (
            build_cassandra_scenario, cassandra_config_for,
            make_generator_factory, make_kv_issue)
        from repro.sim.topology import Region
        from repro.workloads.runner import ClosedLoopRunner
        from repro.workloads.ycsb import workload_by_name

        scenario = build_cassandra_scenario(
            seed=11, record_count=60,
            client_regions=(Region.IRL, Region.FRK),
            config=cassandra_config_for("CC2"))
        scheduler = scenario.env.scheduler
        assert scheduler.wheel and scenario.env.network.fast_path
        spec = workload_by_name("A")
        runners = [
            ClosedLoopRunner(
                scheduler=scheduler,
                issue=make_kv_issue(client, "CC2"),
                make_generator=make_generator_factory(
                    spec, scenario.dataset, 11, f"CC2-{region}"),
                threads=2, duration_ms=2_500.0, warmup_ms=500.0,
                cooldown_ms=250.0, label=f"audit-{region}")
            for region, client in scenario.clients.items()]
        for runner in runners:
            runner.start()
        end = max(runner.end_time for runner in runners)
        for slice_index in range(1, 9):
            scenario.env.run(until=end * slice_index / 8.0)
            assert scheduler.pending(live_only=True) == \
                scheduler._scan_live()
        scenario.env.run_until_idle()
        assert scheduler.pending(live_only=True) == 0
        assert scheduler._scan_live() == 0

    @staticmethod
    def _forced_switches(wheel: bool = True, fast_path: bool = True,
                         lean_ops: bool = True):
        """Context: every Scheduler/Network built inside starts with the
        given kill-switch settings.  The figure harnesses build their
        environments internally, so the switches are applied at
        construction — before any event is scheduled."""
        import contextlib

        from repro.sim.network import Network
        from repro.sim.scheduler import Scheduler

        @contextlib.contextmanager
        def forced():
            scheduler_init = Scheduler.__init__
            network_init = Network.__init__

            def patched_scheduler(self, *args, **kwargs):
                scheduler_init(self, *args, **kwargs)
                self.wheel = wheel

            def patched_network(self, *args, **kwargs):
                network_init(self, *args, **kwargs)
                self.fast_path = fast_path
                self.lean_ops = lean_ops

            Scheduler.__init__ = patched_scheduler
            Network.__init__ = patched_network
            try:
                yield
            finally:
                Scheduler.__init__ = scheduler_init
                Network.__init__ = network_init

        return forced()

    def test_fig13_slice_identical_with_switches_off(self):
        """A fault-injection slice is bit-identical without wheel/fast path.

        The golden figure hashes only cover fig06/09/14/15/16; this pins
        the fault family (replica crash + recovery, client failover,
        timeout cancellation storms) to the same record under the classic
        heap scheduler and the unfused message path.
        """
        from repro.bench.fig13_faults import run_fig13_scenario

        kwargs = dict(workload="B", threads_per_client=2,
                      duration_ms=6_000.0, warmup_ms=1_500.0,
                      cooldown_ms=500.0, record_count=150)
        reference = run_fig13_scenario("replica-crash", **kwargs)
        with self._forced_switches(wheel=False, fast_path=True):
            assert run_fig13_scenario("replica-crash", **kwargs) == reference
        with self._forced_switches(wheel=True, fast_path=False):
            assert run_fig13_scenario("replica-crash", **kwargs) == reference

    def test_fig13_fault_slice_identical_with_lean_ops_forced(self):
        """The fault family is invariant to the ``protocol.lean_ops`` switch.

        Fault configurations arm timeouts and fallback contacts, which the
        lean gate rejects per operation — so even with the switch forced on
        every operation falls back to the classic pipeline mid-flight, and
        the record matches the switch-off run bit for bit.
        """
        from repro.bench.fig13_faults import run_fig13_scenario

        kwargs = dict(workload="B", threads_per_client=2,
                      duration_ms=6_000.0, warmup_ms=1_500.0,
                      cooldown_ms=500.0, record_count=150)
        with self._forced_switches(lean_ops=True):
            reference = run_fig13_scenario("replica-crash", **kwargs)
        with self._forced_switches(lean_ops=False):
            assert run_fig13_scenario("replica-crash", **kwargs) == reference

    def test_fig14_open_loop_slice_identical_with_lean_ops_off(self):
        """An open-loop fig14 cell is bit-identical without lean ops.

        This covers the lean *open-loop* pipeline end to end — pooled
        runner op records as completion sinks, the session-rotation lean
        issue path, and the fused storage protocol underneath — against the
        classic Correctable/dict pipeline.
        """
        from repro.bench.fig14_open_loop import run_fig14_point
        from repro.bench.sweep import SweepPoint

        kwargs = dict(binding="cassandra", mode="open", policy="queue",
                      rate_ops_s=400.0, arrivals="poisson", sessions=60,
                      max_in_flight=16, queue_limit=64,
                      duration_ms=6_000.0, warmup_ms=1_000.0,
                      cooldown_ms=500.0, record_count=120, workload="A",
                      distribution="latest", seed=42)
        point = SweepPoint(index=0, family="fig14", kwargs=kwargs)
        reference = run_fig14_point(point)
        with self._forced_switches(lean_ops=False):
            assert run_fig14_point(point) == reference

    def test_open_loop_lean_pools_recycle_without_leaking(self):
        """Lean open-loop load leaks neither runner op records nor fused
        protocol records: everything acquired during the run is back on its
        free list once the run drains."""
        from repro.bench.fig14_open_loop import run_fig14_point
        from repro.bench.sweep import SweepPoint
        from repro.cassandra_sim.coordinator import FusedRead, FusedWrite
        from repro.workloads.runner import _OpenOp

        def outstanding(stats):
            # FusedRead/FusedWrite count pool pops in ``reused``; the
            # unbounded _OpenOp pool counts only fresh constructions, so
            # its outstanding records are created - free.
            if "reused" in stats:
                return stats["created"] + stats["reused"] - stats["recycled"]
            return stats["created"] - stats["free"]

        ops_before = outstanding(_OpenOp.pool_stats())
        reads_before = outstanding(FusedRead.pool_stats())
        writes_before = outstanding(FusedWrite.pool_stats())
        created_before = _OpenOp.pool_stats()["created"]
        recycled_before = _OpenOp.pool_stats()["recycled"]
        run_fig14_point(SweepPoint(
            index=0, family="fig14",
            kwargs=dict(binding="cassandra", mode="open", policy="queue",
                        rate_ops_s=300.0, arrivals="poisson", sessions=40,
                        max_in_flight=16, queue_limit=64,
                        duration_ms=4_000.0, warmup_ms=500.0,
                        cooldown_ms=500.0, record_count=120, workload="A",
                        distribution="latest", seed=42)))
        stats = _OpenOp.pool_stats()
        assert stats["recycled"] > recycled_before, \
            "the pooled open-loop op records never cycled"
        assert stats["recycled"] - recycled_before > \
            stats["created"] - created_before, "op records were never reused"
        assert outstanding(stats) == ops_before, \
            "an open-loop op record leaked"
        assert outstanding(FusedRead.pool_stats()) == reads_before, \
            "a FusedRead record leaked"
        assert outstanding(FusedWrite.pool_stats()) == writes_before, \
            "a FusedWrite record leaked"

    def test_fig16_cell_identical_with_switches_off(self):
        """A 2PC coordinator-failover cell is invariant to the fast paths.

        Transactions exercise the one code path the closed-loop figures do
        not: long decision timeouts parked on the overflow ring, then
        cancelled en masse at failover.  Record and executed-event count
        must both match with every switch off.
        """
        from repro.bench.fig16_txn import run_fig16_cell

        kwargs = dict(scenario="coordinator-crash-mid-commit",
                      keys_per_txn=2, nodes=3, coordinators=2,
                      rate_txn_s=25.0, duration_ms=6_000.0,
                      fault_at_ms=2_500.0, fault_duration_ms=2_500.0,
                      decision_log_ms=2.0, record_count=120, seed=42)
        reference, reference_env = run_fig16_cell(**kwargs)
        with self._forced_switches(wheel=False, fast_path=False):
            record, env = run_fig16_cell(**kwargs)
        assert record == reference
        assert env.scheduler.events_executed == \
            reference_env.scheduler.events_executed

    @pytest.mark.slow
    def test_quick_figures_match_golden(self):
        assert figure_fingerprints() == _golden()["figures"]

    @pytest.mark.slow
    def test_quick_figures_match_golden_with_parallel_sweep(self):
        """--jobs 2 must reproduce the committed serial golden hashes."""
        assert figure_fingerprints(jobs=2) == _golden()["figures"]


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        raise SystemExit(f"usage: python {sys.argv[0]} --regenerate")
    golden = {"trace": trace_fingerprint(), "figures": figure_fingerprints()}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
    print(json.dumps(golden, indent=2))
