"""Figure 15 — reads and write safety under live ring rebalancing."""

import pytest

from repro.bench.fig15_rebalance import (
    PHASES,
    format_fig15,
    run_fig15,
    run_fig15_point,
    build_fig15_points,
)


@pytest.mark.benchmark(group="fig15")
def test_fig15_rebalance(benchmark, save_report):
    records = benchmark.pedantic(
        lambda: run_fig15(seed=42), rounds=1, iterations=1)
    save_report("fig15_rebalance", format_fig15(records))

    assert len(records) == 2 * 3 * 2  # nodes x skew x event

    for record in records:
        cell = (record["nodes"], record["skew"], record["event"])
        # The safety criterion: every acknowledged write survived the
        # ownership change.
        assert record["acked_writes"] > 0, cell
        assert record["lost_acked_writes"] == 0, cell
        assert record["failed_ops"] == 0, cell
        # The rebalance actually happened under load, moving real data.
        assert record["ring_version"] == 1, cell
        assert record["rebalance_ms"] > 0, cell
        assert record["ranges_moved"] > 0, cell
        assert record["keys_streamed"] > 0, cell
        # Writes kept flowing during the change (bootstrap forwarding).
        assert record["writes_forwarded"] > 0, cell
        # Every phase saw traffic, and its latencies are sane.
        for phase in PHASES:
            assert record[f"{phase}_ops"] > 0, (cell, phase)
            assert record[f"{phase}_final_mean_ms"] > 0, (cell, phase)
            assert (record[f"{phase}_prelim_mean_ms"]
                    < record[f"{phase}_final_mean_ms"]), (cell, phase)

    # Skew dials staleness: hot-partition traffic (zipf-1.2) re-reads the
    # keys it just wrote far more often than uniform traffic does.
    def staleness(skew):
        rows = [r for r in records if r["skew"] == skew]
        return sum(r["after_staleness_pct"] for r in rows) / len(rows)

    assert staleness("zipf-1.2") > staleness("uniform")

    # More nodes -> each node owns a smaller share, so a single join
    # streams fewer keys.
    def streamed(nodes, event):
        return [r["keys_streamed"] for r in records
                if r["nodes"] == nodes and r["event"] == event]

    assert max(streamed(12, "join")) < min(streamed(6, "join"))


@pytest.mark.slow
def test_fig15_hundred_node_rebalance():
    """A 100-node ring join: the scale knob the vnode layout exists for.

    Excluded from tier-1 (slow marker); keeps the load light so the cell
    finishes in seconds while still exercising a big token layout.
    """
    [point] = build_fig15_points(
        nodes=(100,), skews=("uniform",), events=("join",),
        rate_ops_s=150.0, sessions=60, duration_ms=4_000.0,
        warmup_ms=600.0, cooldown_ms=300.0, event_at_ms=1_500.0,
        record_count=400, seed=42)
    record = run_fig15_point(point)
    assert record["lost_acked_writes"] == 0
    assert record["failed_ops"] == 0
    assert record["ring_version"] == 1
    # On a 100-node ring a single joiner gains ~1% of the keyspace.
    assert 0 < record["keys_streamed"] < 400 * 3 * 0.1


@pytest.mark.slow
def test_fig15_million_key_rebalance():
    """A rebalance cell over a 1.2M-key hot-partition keyspace.

    The "millions of keys" scale knob from ROADMAP item 1, enabled by the
    vectorized key streams: key indices are drawn through the chunked
    Zipfian path and formatted on demand (the dataset's key cache opts out
    above 2^18 records), and ``preload=False`` keeps setup cost at the
    one-time O(n) zeta sum instead of an O(n) ring preload.  Excluded from
    tier-1 (slow marker) like the 100-node cell above.
    """
    [point] = build_fig15_points(
        nodes=(6,), skews=("zipf-1.2",), events=("join",),
        rate_ops_s=200.0, sessions=80, duration_ms=4_000.0,
        warmup_ms=600.0, cooldown_ms=300.0, event_at_ms=1_500.0,
        record_count=1_200_000, preload=False, seed=42)
    record = run_fig15_point(point)
    assert record["lost_acked_writes"] == 0
    assert record["failed_ops"] == 0
    assert record["ring_version"] == 1
    assert record["measured_ops"] > 0
    # The skew concentrates traffic, so the touched key set the join has
    # to stream stays small even though the keyspace is seven figures.
    assert record["rebalance_ms"] > 0
