"""2PC protocol tests: commit/abort paths, locks, deadlines, idempotency.

These tests run with heartbeats disabled (no failure detection), so the
event queue drains and ``run_until_idle`` terminates; coordinator failover
is exercised separately in ``test_failover.py``.
"""

import pytest

from repro.core.consistency import STRONG
from repro.sim.network import Message
from repro.txn import PREPARED, TransactionError, TxnState, txn_aliases
from txn_helpers import collect, make_fabric, no_failover_config


class TestCommitPath:
    def test_commit_applies_on_every_owner(self):
        fabric = make_fabric()
        manager = fabric.manager
        keys = fabric.built.dataset.keys()[:2]
        writes = {keys[0]: "txn-a", keys[1]: "txn-b"}
        box = collect(manager.execute(writes))
        fabric.built.env.run_until_idle()

        assert box["error"] is None
        final = box["final"]
        assert final.value["outcome"] == "commit"
        assert final.consistency == STRONG
        # The speculative PREPARED view fired first and agreed with the
        # final outcome.
        assert [view.consistency for view in box["views"]] == [PREPARED]
        assert box["views"][0].value["speculative"] is True
        assert manager.stats.prepared_views == 1
        assert manager.stats.matched == 1
        assert manager.stats.mismatched == 0
        assert manager.stats.accuracy() == 1.0

        txn_id = final.value["txn_id"]
        timestamp = final.value["timestamp"]
        for key, value in writes.items():
            for owner in fabric.owners_of(key):
                participant = fabric.participants[owner]
                record = participant.log.get(txn_id)
                assert record is not None
                assert record.state == TxnState.COMMITTED
                stored = participant.replica.table.get(key)
                assert stored.value == value
                assert stored.timestamp == timestamp
                assert txn_id in participant.applied
        # All prepare locks were released on commit.
        assert all(not p.locks for p in fabric.participants.values())
        fabric.assert_atomic()

    def test_duplicate_begin_is_idempotent(self):
        fabric = make_fabric()
        manager = fabric.manager
        env = fabric.built.env
        key = fabric.built.dataset.keys()[0]
        box = collect(manager.execute({key: "v1"}))
        env.run_until_idle()
        txn_id = box["final"].value["txn_id"]
        coordinator = fabric.active_coordinator()

        # A retried submission of an already-decided transaction must not
        # re-run 2PC: the coordinator replays the decided outcome and every
        # participant applies the commit exactly once.
        applied_before = {name: p.commits_applied
                         for name, p in fabric.participants.items()}
        manager.send(coordinator.name, "txn_begin", {
            "txn_id": txn_id, "writes": {key: "v1"},
            "client": manager.name, "deadline_ms": float("inf")})
        env.run_until_idle()

        assert manager.duplicate_finals == 1
        assert coordinator.txns_started == 1
        assert coordinator.commits == 1
        for name, participant in fabric.participants.items():
            assert participant.commits_applied == applied_before[name]
        fabric.assert_atomic()


class TestAbortPaths:
    def test_conflicting_transactions_serialize_by_abort(self):
        fabric = make_fabric()
        manager = fabric.manager
        key = fabric.built.dataset.keys()[0]
        first = collect(manager.execute({key: "first"}))
        second = collect(manager.execute({key: "second"}))
        fabric.built.env.run_until_idle()

        outcomes = sorted(box["final"].value["outcome"]
                          for box in (first, second))
        assert outcomes == ["abort", "commit"]
        conflicts = sum(p.lock_conflicts
                        for p in fabric.participants.values())
        assert conflicts >= 1
        # The winner's value is what every owner stores; the loser's writes
        # reached no replica table.
        winner_value = ("first" if first["final"].value["outcome"] == "commit"
                        else "second")
        for owner in fabric.owners_of(key):
            stored = fabric.participants[owner].replica.table.get(key)
            assert stored.value == winner_value
        fabric.assert_atomic()

    def test_expired_budget_aborts(self):
        fabric = make_fabric()
        manager = fabric.manager
        key = fabric.built.dataset.keys()[0]
        box = collect(manager.execute({key: "late"}, budget_ms=0.0))
        fabric.built.env.run_until_idle()

        # Participants refuse to prepare past the deadline (or the
        # coordinator's clamped vote-collection timeout fires): the outcome
        # is a clean abort, never a commit and never a hang.
        assert box["final"].value["outcome"] == "abort"
        assert box["views"] == []          # no speculative view either
        refusals = sum(p.deadline_refusals
                       for p in fabric.participants.values())
        timeouts = sum(c.prepare_timeouts for c in fabric.coordinators)
        assert refusals + timeouts >= 1
        for owner in fabric.owners_of(key):
            stored = fabric.participants[owner].replica.table.get(key)
            assert stored is None or stored.value != "late"
        fabric.assert_atomic()

    def test_no_live_coordinator_fails_the_transaction(self):
        fabric = make_fabric()
        manager = fabric.manager
        for coordinator in fabric.coordinators:
            coordinator.crash()
        key = fabric.built.dataset.keys()[0]
        box = collect(manager.execute({key: "v"}))
        fabric.built.env.run_until_idle()

        assert box["final"] is None
        assert isinstance(box["error"], TransactionError)
        assert manager.failed_requests == 1
        assert manager.retries == manager.config.client_retries
        # The health tracker saw every timeout.
        assert fabric.balancer.times_opened() >= 1


class TestFabricWiring:
    def test_txn_aliases_cover_coordinators_and_participants(self):
        fabric = make_fabric()
        aliases = txn_aliases(fabric)
        # txn-coordinator:0 is the initially active coordinator — the one
        # the coordinator-crash-mid-commit scenario targets.
        assert aliases["txn-coordinator:0"] == fabric.coordinators[0].name
        assert aliases["txn-coordinator:1"] == fabric.coordinators[1].name
        participant_aliases = {k: v for k, v in aliases.items()
                               if k.startswith("txn-participant:")}
        assert len(participant_aliases) == len(fabric.participants)
        assert set(participant_aliases.values()) == set(fabric.participants)

    def test_empty_transaction_rejected(self):
        fabric = make_fabric()
        with pytest.raises(ValueError):
            fabric.manager.execute({})


class TestEpochFencing:
    def test_participant_rejects_stale_epoch_messages(self):
        fabric = make_fabric()
        manager = fabric.manager
        env = fabric.built.env
        key = fabric.built.dataset.keys()[0]
        collect(manager.execute({key: "v"}))
        env.run_until_idle()

        participant = fabric.participants[fabric.owners_of(key)[0]]
        assert participant.epoch >= 1
        votes_before = participant.votes_yes + participant.votes_no
        stale = Message(src="txn-coord-ghost", dst=participant.name,
                        kind="txn_prepare",
                        payload={"txn_id": "ghost:1", "epoch": 0,
                                 "writes": {key: "ghost"},
                                 "participants": [participant.name],
                                 "client": manager.name,
                                 "deadline_ms": float("inf")})
        participant.on_txn_prepare(stale)
        env.run_until_idle()

        assert participant.stale_epoch_rejections == 1
        assert participant.votes_yes + participant.votes_no == votes_before
        assert participant.log.get("ghost:1") is None
