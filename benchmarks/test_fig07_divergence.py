"""Figure 7 — divergence of preliminary from final views on a hot 1 K dataset."""

import pytest

from repro.bench.fig07_divergence import format_fig07, run_fig07


@pytest.mark.benchmark(group="fig07")
def test_fig07_divergence(benchmark, save_report):
    records = benchmark.pedantic(
        run_fig07,
        kwargs=dict(configs=(("A", "latest"), ("A", "zipfian"),
                             ("B", "latest"), ("B", "zipfian")),
                    thread_counts=(10, 20, 40, 100), duration_ms=8_000.0,
                    warmup_ms=2_000.0, cooldown_ms=1_000.0,
                    record_count=1_000, seed=42),
        rounds=1, iterations=1)
    save_report("fig07_divergence", format_fig07(records))

    def max_divergence(workload, distribution):
        return max(r["divergence_pct"] for r in records
                   if r["workload"] == workload
                   and r["distribution"] == distribution)

    # Workload A diverges more than workload B under the same distribution,
    # and A-Latest is the worst case (the paper's ~25 % point).
    assert max_divergence("A", "latest") > max_divergence("B", "latest")
    assert max_divergence("A", "zipfian") > max_divergence("B", "zipfian")
    # The paper reports up to ~25 % for A-Latest on the hot 1 K dataset.
    assert max_divergence("A", "latest") > 10.0
    # Divergence grows (or at least does not shrink) with load for A-Latest.
    a_latest = sorted((r for r in records if r["workload"] == "A"
                       and r["distribution"] == "latest"),
                      key=lambda r: r["threads_total"])
    assert a_latest[-1]["divergence_pct"] >= a_latest[0]["divergence_pct"] * 0.8
