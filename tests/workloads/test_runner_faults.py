"""Tests for fault integration in the closed-loop workload runner."""

from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.sim.environment import SimEnvironment
from repro.sim.node import Node
from repro.sim.topology import Region, Topology
from repro.workloads.records import Dataset
from repro.workloads.runner import ClosedLoopRunner
from repro.workloads.ycsb import OperationGenerator, workload_by_name
from repro.sim.rand import derive_rng


def _make_runner(env, issue, faults=None, threads=2, duration_ms=2_000.0):
    spec = workload_by_name("A")
    dataset = Dataset(record_count=20, value_size_bytes=10, seed=1)

    def make_generator(thread_id):
        return OperationGenerator(spec, dataset,
                                  derive_rng(1, f"t{thread_id}"))

    return ClosedLoopRunner(
        scheduler=env.scheduler, issue=issue, make_generator=make_generator,
        threads=threads, duration_ms=duration_ms, warmup_ms=200.0,
        cooldown_ms=200.0, label="fault-run", faults=faults)


class TestRunnerFaultArming:
    def test_fault_schedule_armed_relative_to_run_start(self):
        env = SimEnvironment(seed=2, topology=Topology(jitter_fraction=0.0))
        node = Node("target", Region.IRL, env.network)
        env.run(until=500.0)  # the run starts at t=500, not t=0

        injector = FaultInjector(env, schedule=FaultSchedule((
            FaultEvent(1_000.0, "crash", "target"),
        )))

        def issue(op_type, key, value, done):
            env.scheduler.schedule(10.0, done, {})

        runner = _make_runner(env, issue, faults=injector)
        runner.run()
        assert not node.alive
        # The crash fired at start_time + 1000 ms, not at absolute 1000 ms.
        assert injector.log[0].time_ms == 1_500.0

    def test_runner_counts_degraded_and_failed_ops(self):
        env = SimEnvironment(seed=2)

        calls = {"n": 0}

        def issue(op_type, key, value, done):
            calls["n"] += 1
            outcome = {}
            if calls["n"] % 3 == 0:
                outcome = {"degraded": True}
            elif calls["n"] % 5 == 0:
                outcome = {"failed": True}
            env.scheduler.schedule(50.0, done, outcome)

        runner = _make_runner(env, issue)
        result = runner.run()
        assert result.degraded_ops > 0
        assert result.failed_ops > 0
        summary = result.summary()
        assert summary["degraded_ops"] == result.degraded_ops
        assert summary["failed_ops"] == result.failed_ops

    def test_runner_without_faults_behaves_as_before(self):
        env = SimEnvironment(seed=2)

        def issue(op_type, key, value, done):
            env.scheduler.schedule(5.0, done, {"final_latency_ms": 5.0})

        runner = _make_runner(env, issue)
        result = runner.run()
        assert result.measured_ops > 0
        assert result.degraded_ops == 0
        assert result.failed_ops == 0
