"""Dataset generation: YCSB-style records.

YCSB stores records named ``user0 .. userN`` with fixed-size values; the
divergence experiments use a deliberately small dataset (1 K records) so
that read activity concentrates on a hot set.
"""

from __future__ import annotations

import random
import string
from typing import Dict, List, Optional

from repro.workloads import fastrand

_PRINTABLE = string.ascii_letters + string.digits
_PRINTABLE_LEN = len(_PRINTABLE)          # 62
_PRINTABLE_BITS = _PRINTABLE_LEN.bit_length()  # 6

#: Value chunks ramp 16 → 256 so short runs waste few precomputed values
#: while long runs amortize the chunk overhead.
_VALUE_CHUNK_MAX = 256

#: Key-string caching is capped so million-key datasets don't pin ~60 MB of
#: interned key strings; above the cap keys are formatted on demand.
_KEY_CACHE_MAX = 1 << 18

#: Seed of the shared initial-value character stream.  Initial values are a
#: pure function of the record index: value ``i`` is characters
#: ``[i * size, (i + 1) * size)`` of one deterministic printable stream, so
#: ``initial_value(i)`` agrees across dataset sizes and chunking — like the
#: per-record generator scheme it replaces — but the draws vectorize in
#: bulk instead of seeding a fresh Mersenne Twister per record (which
#: dominated million-key preload wall time).
_INITIAL_VALUE_SEED = 0x1CC2_05D1

#: Records per vectorized initial-value chunk (bounds the temporary draw
#: buffers at ~64k values regardless of dataset size).
_INITIAL_CHUNK = 1 << 16


def make_value(rng: random.Random, size_bytes: int = 100) -> str:
    """A random printable string of ``size_bytes`` characters.

    This is an inlined, loop-hoisted equivalent of
    ``"".join(rng.choice(_PRINTABLE) for _ in range(size_bytes))``: it
    consumes exactly the same ``getrandbits`` sequence ``Random.choice``
    does (draw ``bit_length(62)`` bits, reject values >= 62), so both the
    produced strings and the generator state after the call are
    bit-identical to the original implementation — value generation is a
    hot path, but it must never perturb seeded experiments.
    """
    if size_bytes <= 0:
        raise ValueError("value size must be positive")
    getrandbits = rng.getrandbits
    table = _PRINTABLE
    bits = _PRINTABLE_BITS
    limit = _PRINTABLE_LEN
    chars = []
    append = chars.append
    for _ in range(size_bytes):
        r = getrandbits(bits)
        while r >= limit:
            r = getrandbits(bits)
        append(table[r])
    return "".join(chars)


class Dataset:
    """A named collection of YCSB records."""

    def __init__(self, record_count: int = 1000, value_size_bytes: int = 100,
                 key_prefix: str = "user", seed: int = 0) -> None:
        if record_count <= 0:
            raise ValueError("record_count must be positive")
        self.record_count = record_count
        self.value_size_bytes = value_size_bytes
        self.key_prefix = key_prefix
        self._rng = random.Random(seed)
        self._value_stream: Optional[fastrand.Stream] = None
        self._value_buf: List[str] = []
        self._value_pos = 0
        self._value_chunk = 16
        self._key_cache: Optional[List[str]] = None
        self._initial_stream: Optional[fastrand.Stream] = None
        self._initial_values: List[str] = []

    def key(self, index: int) -> str:
        """The key of record ``index``."""
        if not 0 <= index < self.record_count:
            raise IndexError(f"record index out of range: {index}")
        return f"{self.key_prefix}{index}"

    def keys(self) -> List[str]:
        return [self.key(i) for i in range(self.record_count)]

    def cached_keys(self) -> Optional[List[str]]:
        """All key strings, cached for hot-path lookups by index.

        Returns ``None`` above ``_KEY_CACHE_MAX`` records (million-key
        datasets format keys on demand instead of pinning the strings).
        """
        if self.record_count > _KEY_CACHE_MAX:
            return None
        if self._key_cache is None:
            prefix = self.key_prefix
            self._key_cache = [f"{prefix}{i}"
                               for i in range(self.record_count)]
        return self._key_cache

    def initial_value(self, index: int) -> str:
        """A deterministic initial value for record ``index``.

        Values are sliced from the shared index-ordered character stream
        (see ``_INITIAL_VALUE_SEED``): independent of the dataset seed and
        of ``record_count``, and generated in vectorized chunks so
        million-key preloads are not bounded by value generation.
        """
        values = self._initial_values
        if index >= len(values):
            self._fill_initial_values(index + 1)
        return values[index]

    def _fill_initial_values(self, count: int) -> None:
        size = self.value_size_bytes
        if size <= 0:
            raise ValueError("value size must be positive")
        stream = self._initial_stream
        if stream is None:
            stream = self._initial_stream = fastrand.make_stream(
                random.Random(_INITIAL_VALUE_SEED))
        values = self._initial_values
        while len(values) < count:
            n = min(max(count - len(values), _VALUE_CHUNK_MAX),
                    _INITIAL_CHUNK)
            blob = stream.chars(n * size, _PRINTABLE)
            values.extend([blob[i:i + size]
                           for i in range(0, n * size, size)])

    def initial_items(self) -> Dict[str, str]:
        """Key → value mapping used to preload a cluster."""
        self._fill_initial_values(self.record_count)
        values = self._initial_values
        prefix = self.key_prefix
        return {f"{prefix}{i}": values[i] for i in range(self.record_count)}

    def random_value(self) -> str:
        """A fresh value for an update operation.

        Values come from a chunked :mod:`repro.workloads.fastrand` stream
        that reproduces the per-draw ``make_value`` sequence bit-for-bit
        (same strings in the same order for a given seed); only the chunked
        lookahead on the private value rng is new.
        """
        pos = self._value_pos
        buf = self._value_buf
        if pos < len(buf):
            self._value_pos = pos + 1
            return buf[pos]
        return self._next_value_chunk()

    def _next_value_chunk(self) -> str:
        size = self.value_size_bytes
        if size <= 0:
            raise ValueError("value size must be positive")
        stream = self._value_stream
        if stream is None:
            stream = self._value_stream = fastrand.make_stream(self._rng)
        count = self._value_chunk
        if count < _VALUE_CHUNK_MAX:
            self._value_chunk = count * 2
        blob = stream.chars(count * size, _PRINTABLE)
        self._value_buf = buf = [blob[i:i + size]
                                 for i in range(0, count * size, size)]
        self._value_pos = 1
        return buf[0]
