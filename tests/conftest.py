"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.environment import SimEnvironment
from repro.sim.scheduler import Scheduler
from repro.sim.topology import Region


@pytest.fixture
def scheduler() -> Scheduler:
    """A fresh simulated-time scheduler."""
    return Scheduler()


@pytest.fixture
def env() -> SimEnvironment:
    """A fresh simulation environment with the default EC2 topology."""
    return SimEnvironment(seed=123)


@pytest.fixture
def cassandra_setup(env):
    """A 3-replica Cassandra cluster, one IRL client contacting FRK, preloaded."""
    from repro.cassandra_sim.cluster import CassandraCluster
    from repro.cassandra_sim.config import CassandraConfig

    cluster = CassandraCluster(env, CassandraConfig())
    cluster.preload({f"key{i}": f"value{i}" for i in range(20)})
    client = cluster.add_client("test-client", region=Region.IRL,
                                contact_region=Region.FRK)
    return env, cluster, client


@pytest.fixture
def zookeeper_setup(env):
    """A leader(IRL) + followers(FRK, VRG) ensemble with a preloaded queue."""
    from repro.zookeeper_sim.cluster import ZooKeeperCluster

    cluster = ZooKeeperCluster(env, leader_region=Region.IRL,
                               follower_regions=(Region.FRK, Region.VRG))
    cluster.preload_queue("/queue", [f"item-{i}" for i in range(10)])
    client = cluster.add_client("zk-test-client", region=Region.FRK,
                                connect_region=Region.FRK)
    return env, cluster, client
