"""The smartphone news-reader case study (Section 4.4, Listing 6).

The news service is replicated with a primary-backup scheme and fronted by a
local cache on the phone.  One logical ``invoke`` produces up to three
incremental views — cache, backup, primary — and the application simply
refreshes its display on every update.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.client import CorrectableClient
from repro.core.correctable import Correctable
from repro.core.operations import read, write

#: ``refresh(items, consistency_name)`` called once per incremental view.
RefreshCallback = Callable[[List[str], str], None]


class NewsReader:
    """Displays the latest news items, refreshing as fresher views arrive."""

    NEWS_KEY = "news:front-page"

    def __init__(self, client: CorrectableClient) -> None:
        self.client = client
        #: History of (consistency level name, items) pairs displayed so far.
        self.display_history: List[Dict[str, Any]] = []
        self.refreshes = 0

    # -- publisher side --------------------------------------------------------
    def publish(self, items: List[str],
                on_done: Optional[Callable[[Dict[str, Any]], None]] = None
                ) -> Correctable:
        """Publish a new front page (strongly consistent write)."""
        correctable = self.client.invoke_strong(write(self.NEWS_KEY, list(items)))
        if on_done is not None:
            correctable.set_callbacks(
                on_final=lambda view: on_done({"published": items}),
                on_error=lambda exc: on_done({"error": exc}))
        return correctable

    # -- reader side (Listing 6) ---------------------------------------------------
    def get_latest_news(self,
                        refresh: Optional[RefreshCallback] = None) -> Correctable:
        """Fetch the front page; the display refreshes once per incremental view."""
        correctable = self.client.invoke(read(self.NEWS_KEY))

        def _refresh(view) -> None:
            items = list(view.value) if view.value else []
            self.refreshes += 1
            self.display_history.append(
                {"consistency": view.consistency.name, "items": items})
            if refresh is not None:
                refresh(items, view.consistency.name)

        correctable.set_callbacks(on_update=_refresh, on_final=_refresh)
        return correctable

    def latest_display(self) -> List[str]:
        """The items currently shown on screen (last refresh wins)."""
        if not self.display_history:
            return []
        return list(self.display_history[-1]["items"])
