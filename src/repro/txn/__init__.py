"""Distributed transactions: 2PC with coordinator failover (ROADMAP item 3).

A transaction layer over the simulated Cassandra cluster — multi-key atomic
writes driven by a coordinator group with deterministic election/failover,
participant-side prepare/commit/abort logging with per-key locks, a
health-tracking load balancer, and a speculative ``PREPARED`` preliminary
view surfaced through the Correctable API.
"""

from repro.txn.balancer import LoadBalancer
from repro.txn.config import TxnConfig
from repro.txn.coordinator import ABORT, COMMIT, TwoPhaseCommitCoordinator
from repro.txn.fabric import (
    COORDINATOR_PREFIX, PARTICIPANT_PREFIX, TxnFabric, build_txn_fabric,
    txn_aliases,
)
from repro.txn.log import ParticipantLog, TxnLogRecord, TxnState
from repro.txn.manager import (
    PREPARED, PreparedViewStats, TransactionError, TransactionManager,
)
from repro.txn.participant import TxnParticipant

__all__ = [
    "ABORT",
    "COMMIT",
    "COORDINATOR_PREFIX",
    "LoadBalancer",
    "PARTICIPANT_PREFIX",
    "PREPARED",
    "ParticipantLog",
    "PreparedViewStats",
    "TransactionError",
    "TransactionManager",
    "TwoPhaseCommitCoordinator",
    "TxnConfig",
    "TxnFabric",
    "TxnLogRecord",
    "TxnParticipant",
    "TxnState",
    "build_txn_fabric",
    "txn_aliases",
]
