"""Correctable: a placeholder for an incrementally refined result.

A Correctable starts in the *updating* state.  Preliminary views trigger
``on_update`` callbacks and keep the Correctable updating; the final view (or
an error) closes it, moving it to *final* (or *error*) and firing the
corresponding callbacks (Figure 3 of the paper).

The two central methods are :meth:`Correctable.set_callbacks` and
:meth:`Correctable.speculate`; the latter captures the speculation pattern of
Listing 3 and is implemented in :mod:`repro.core.speculation`.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, List, Optional

from repro.core.consistency import ConsistencyLevel
from repro.core.errors import InvalidStateError
from repro.core.promise import Promise
from repro.core.views import View


class CorrectableState(Enum):
    """Lifecycle of a :class:`Correctable` (Figure 3)."""

    UPDATING = "updating"
    FINAL = "final"
    ERROR = "error"


UpdateCallback = Callable[[View], None]
ErrorCallback = Callable[[BaseException], None]


class Correctable:
    """The progressively improving result of an operation on a replicated object."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._state = CorrectableState.UPDATING
        self._views: List[View] = []
        self._error: Optional[BaseException] = None
        self._update_callbacks: List[UpdateCallback] = []
        self._final_callbacks: List[UpdateCallback] = []
        self._error_callbacks: List[ErrorCallback] = []
        self._clock = clock
        #: Updates that arrived after the Correctable closed (late/out-of-order
        #: deliveries); they are dropped but counted for observability.
        self.discarded_updates = 0

    # -- state inspection --------------------------------------------------
    @property
    def state(self) -> CorrectableState:
        return self._state

    def is_updating(self) -> bool:
        return self._state is CorrectableState.UPDATING

    def is_final(self) -> bool:
        return self._state is CorrectableState.FINAL

    def is_error(self) -> bool:
        return self._state is CorrectableState.ERROR

    def is_done(self) -> bool:
        return self._state is not CorrectableState.UPDATING

    def views(self) -> List[View]:
        """Every view delivered so far, in arrival order (final last)."""
        return list(self._views)

    def latest_view(self) -> Optional[View]:
        """The most recent view, or None if nothing has arrived yet."""
        return self._views[-1] if self._views else None

    def preliminary_views(self) -> List[View]:
        """All views except the final one."""
        if self._state is CorrectableState.FINAL and self._views:
            return list(self._views[:-1])
        return list(self._views)

    def final_view(self) -> View:
        """The final view.

        Raises:
            InvalidStateError: if the Correctable has not closed with a value.
        """
        if self._state is CorrectableState.ERROR:
            assert self._error is not None
            raise self._error
        if self._state is not CorrectableState.FINAL:
            raise InvalidStateError("correctable has not closed yet")
        return self._views[-1]

    def value(self) -> Any:
        """The final value (shorthand for ``final_view().value``)."""
        return self.final_view().value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    # -- callbacks (application-facing) -------------------------------------
    def set_callbacks(self,
                      on_update: Optional[UpdateCallback] = None,
                      on_final: Optional[UpdateCallback] = None,
                      on_error: Optional[ErrorCallback] = None) -> "Correctable":
        """Attach callbacks for the three state transitions.

        Callbacks registered after the corresponding transition already
        happened fire immediately (Promise semantics), so application code
        never races with the storage.  Returns ``self`` for chaining.
        """
        if on_update is not None:
            self._update_callbacks.append(on_update)
            for view in self.preliminary_views():
                on_update(view)
        if on_final is not None:
            if self._state is CorrectableState.FINAL:
                on_final(self._views[-1])
            else:
                self._final_callbacks.append(on_final)
        if on_error is not None:
            if self._state is CorrectableState.ERROR:
                assert self._error is not None
                on_error(self._error)
            else:
                self._error_callbacks.append(on_error)
        return self

    def on_update(self, callback: UpdateCallback) -> "Correctable":
        """Shorthand for ``set_callbacks(on_update=callback)``."""
        return self.set_callbacks(on_update=callback)

    def on_final(self, callback: UpdateCallback) -> "Correctable":
        """Shorthand for ``set_callbacks(on_final=callback)``."""
        return self.set_callbacks(on_final=callback)

    def on_error(self, callback: ErrorCallback) -> "Correctable":
        """Shorthand for ``set_callbacks(on_error=callback)``."""
        return self.set_callbacks(on_error=callback)

    # -- transitions (driven by the library / bindings) ----------------------
    def _now(self) -> Optional[float]:
        return self._clock() if self._clock is not None else None

    def update(self, value: Any, consistency: ConsistencyLevel,
               metadata: Optional[dict] = None) -> Optional[View]:
        """Deliver a preliminary view (updating → updating transition).

        Late updates arriving after the Correctable closed are dropped and
        counted in :attr:`discarded_updates`.
        """
        if self._state is not CorrectableState.UPDATING:
            self.discarded_updates += 1
            return None
        view = View(value=value, consistency=consistency,
                    timestamp=self._now(), metadata=metadata or {})
        self._views.append(view)
        for callback in list(self._update_callbacks):
            callback(view)
        return view

    def close(self, value: Any, consistency: ConsistencyLevel,
              metadata: Optional[dict] = None,
              is_confirmation: bool = False) -> View:
        """Deliver the final view (updating → final transition)."""
        if self._state is not CorrectableState.UPDATING:
            raise InvalidStateError(
                f"correctable already {self._state.value}; cannot close")
        view = View(value=value, consistency=consistency,
                    timestamp=self._now(), metadata=metadata or {},
                    is_confirmation=is_confirmation)
        self._views.append(view)
        self._state = CorrectableState.FINAL
        callbacks = list(self._final_callbacks)
        self._clear_callbacks()
        for callback in callbacks:
            callback(view)
        return view

    def close_with_view(self, view: View) -> View:
        """Close with an already-constructed :class:`View`."""
        if self._state is not CorrectableState.UPDATING:
            raise InvalidStateError(
                f"correctable already {self._state.value}; cannot close")
        self._views.append(view)
        self._state = CorrectableState.FINAL
        callbacks = list(self._final_callbacks)
        self._clear_callbacks()
        for callback in callbacks:
            callback(view)
        return view

    def fail(self, error: BaseException) -> None:
        """Close with an error (updating → error transition)."""
        if self._state is not CorrectableState.UPDATING:
            raise InvalidStateError(
                f"correctable already {self._state.value}; cannot fail")
        self._state = CorrectableState.ERROR
        self._error = error
        callbacks = list(self._error_callbacks)
        self._clear_callbacks()
        for callback in callbacks:
            callback(error)

    def _clear_callbacks(self) -> None:
        self._update_callbacks = []
        self._final_callbacks = []
        self._error_callbacks = []

    # -- derived correctables ------------------------------------------------
    def speculate(self, speculation_fn: Callable[[Any], Any],
                  abort_fn: Optional[Callable[[Any], None]] = None,
                  stats: Optional["SpeculationStats"] = None) -> "Correctable":
        """Speculate on preliminary views (Listing 3).

        ``speculation_fn`` runs on every new view whose value differs from the
        previously speculated one.  The returned Correctable closes with the
        speculation output computed on an input matching the final view; if no
        preliminary matched, the function re-runs on the final value and
        ``abort_fn`` (if given) undoes the superseded speculation's effects.
        """
        from repro.core.speculation import attach_speculation
        return attach_speculation(self, speculation_fn, abort_fn, stats)

    def map(self, fn: Callable[[Any], Any]) -> "Correctable":
        """A Correctable whose every view is ``fn(view.value)``."""
        mapped = Correctable(clock=self._clock)

        def _on_update(view: View) -> None:
            mapped.update(fn(view.value), view.consistency,
                          metadata=dict(view.metadata))

        def _on_final(view: View) -> None:
            mapped.close(fn(view.value), view.consistency,
                         metadata=dict(view.metadata),
                         is_confirmation=view.is_confirmation)

        self.set_callbacks(on_update=_on_update, on_final=_on_final,
                           on_error=mapped.fail)
        return mapped

    def final_promise(self) -> Promise:
        """A :class:`Promise` for the final value."""
        promise = Promise()
        self.set_callbacks(
            on_final=lambda view: promise.resolve(view.value),
            on_error=promise.reject,
        )
        return promise

    # -- combinators -----------------------------------------------------------
    @staticmethod
    def resolved(value: Any, consistency: ConsistencyLevel) -> "Correctable":
        """A Correctable already closed with ``value``."""
        correctable = Correctable()
        correctable.close(value, consistency)
        return correctable

    @staticmethod
    def all(correctables: List["Correctable"]) -> Promise:
        """A Promise for the list of all final values (fails on first error)."""
        return Promise.all([c.final_promise() for c in correctables])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Correctable(state={self._state.value}, "
                f"views={len(self._views)})")


# Imported late to avoid a circular import at module load time; re-exported
# here so `Correctable.speculate(..., stats=...)` type hints resolve.
from repro.core.speculation import SpeculationStats  # noqa: E402  (re-export)
