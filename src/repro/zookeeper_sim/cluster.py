"""Ensemble assembly for the simulated ZooKeeper deployment."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region
from repro.zookeeper_sim.client import ZKClient
from repro.zookeeper_sim.config import ZooKeeperConfig
from repro.zookeeper_sim.server import ZKServer


class ZooKeeperCluster:
    """A leader + followers ensemble inside one simulation environment."""

    def __init__(self, env: SimEnvironment,
                 leader_region: str = Region.IRL,
                 follower_regions: Sequence[str] = (Region.FRK, Region.VRG),
                 config: Optional[ZooKeeperConfig] = None) -> None:
        self.env = env
        self.config = config if config is not None else ZooKeeperConfig()
        self.leader = ZKServer(f"zk-leader-{leader_region}", leader_region,
                               env.network, self.config)
        self.followers: List[ZKServer] = [
            ZKServer(f"zk-follower-{i}-{region}", region, env.network, self.config)
            for i, region in enumerate(follower_regions)
        ]
        ensemble = [self.leader.name] + [f.name for f in self.followers]
        self.leader.become_leader(ensemble)
        for follower in self.followers:
            follower.become_follower(self.leader.name, ensemble)
        self._servers_by_region: Dict[str, ZKServer] = {}
        for server in self.servers:
            self._servers_by_region.setdefault(server.region, server)
        self._clients: List[ZKClient] = []

    @property
    def servers(self) -> List[ZKServer]:
        return [self.leader] + list(self.followers)

    def enable_failure_detection(self) -> None:
        """Arm heartbeats/elections on every server.

        Requires a config with ``heartbeat_interval_ms > 0`` (e.g.
        ``ZooKeeperConfig.fault_tolerant()``); a no-op otherwise.
        """
        for server in self.servers:
            server.enable_failure_detection()

    def current_leader(self) -> Optional[ZKServer]:
        """The live server currently acting as leader (highest epoch wins)."""
        leaders = [s for s in self.servers if s.alive and s.is_leader]
        if not leaders:
            return None
        return max(leaders, key=lambda s: s.epoch)

    def server_names(self) -> List[str]:
        return [server.name for server in self.servers]

    def server_in(self, region: str) -> ZKServer:
        """The ensemble member deployed in ``region`` (leader preferred)."""
        if self.leader.region == region:
            return self.leader
        try:
            return self._servers_by_region[region]
        except KeyError:
            raise KeyError(f"no ZooKeeper server in region {region}") from None

    def add_client(self, name: str, region: str,
                   connect_region: Optional[str] = None,
                   colocated: bool = False,
                   failover: bool = False) -> ZKClient:
        """Create a client in ``region`` connected to a server.

        ``connect_region`` picks the server (defaults to the client's own
        region); ``colocated=True`` places the client on the same host as the
        server, giving loopback latency (used for the ticket retailers that
        sit next to the FRK follower).  ``failover=True`` hands the client
        the whole ensemble so a request timeout can rotate to another server
        (used by the fault experiments with ``config.request_timeout_ms``).
        """
        server = self.server_in(connect_region or region)
        host = server.host if colocated else None
        ensemble = self.server_names() if failover else None
        client = ZKClient(name, region, self.env.network, server.name,
                          self.config, host=host, ensemble=ensemble)
        self._clients.append(client)
        return client

    @property
    def clients(self) -> List[ZKClient]:
        return list(self._clients)

    # -- data loading ------------------------------------------------------------
    def preload_queue(self, queue_path: str, items: Sequence) -> None:
        """Install a queue with ``items`` identically on every server."""
        for server in self.servers:
            if not server.tree.exists(queue_path):
                server.tree.create(queue_path)
            for item in items:
                server.tree.create(f"{queue_path}/item-", data=item,
                                   sequential=True)
