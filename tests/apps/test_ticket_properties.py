"""Property-based tests for the ticket shop's safety and fast-path behaviour."""

from hypothesis import given, settings, strategies as st

from repro.apps.tickets import TicketSeller
from repro.bindings.local import LocalBinding
from repro.core.client import CorrectableClient


def _sell_everything(tickets: int, threshold: int, buyers: int):
    """Sell a stock through ``buyers`` sequential purchase loops (LocalBinding)."""
    binding = LocalBinding(weak_delay_ms=1, strong_delay_ms=40)
    for i in range(tickets):
        binding.store.enqueue("/t", f"ticket-{i}")
    sellers = [TicketSeller(CorrectableClient(binding), "/t",
                            threshold=threshold) for _ in range(buyers)]
    sold = []
    sellers_seeing_sold_out = 0
    # The synchronous LocalBinding completes each purchase inline, so each
    # retailer keeps buying until it personally observes the sold-out answer.
    for seller in sellers:
        while True:
            outcome_box = []
            seller.purchase_ticket(outcome_box.append)
            outcome = outcome_box[0]
            if outcome.sold_out:
                sellers_seeing_sold_out += 1
                break
            sold.append(outcome)
    return sold, sellers_seeing_sold_out, sellers


@given(st.integers(min_value=0, max_value=60),
       st.integers(min_value=0, max_value=30),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_stock_sold_exactly_once_and_never_oversold(tickets, threshold, buyers):
    sold, _, _ = _sell_everything(tickets, threshold, buyers)
    assert len(sold) == tickets
    assert len({outcome.ticket for outcome in sold}) == tickets


@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=0, max_value=30))
@settings(max_examples=30, deadline=None)
def test_fast_path_used_exactly_while_stock_above_threshold(tickets, threshold):
    sold, _, sellers = _sell_everything(tickets, threshold, buyers=1)
    fast = sum(1 for outcome in sold if outcome.used_preliminary)
    # The weak view reports the stock size *before* the dequeue, so purchases
    # use the fast path while strictly more than `threshold` tickets remain
    # after taking one (remaining > threshold).
    expected_fast = max(0, tickets - threshold - 1)
    assert fast == expected_fast
    assert sellers[0].purchases_from_preliminary == fast
    assert sellers[0].purchases_from_final == tickets - fast


@given(st.integers(min_value=1, max_value=40))
@settings(max_examples=20, deadline=None)
def test_every_customer_eventually_sees_sold_out(tickets):
    _, sellers_seeing_sold_out, _ = _sell_everything(tickets, threshold=5,
                                                     buyers=3)
    assert sellers_seeing_sold_out == 3
