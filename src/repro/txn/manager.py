"""Client-side transaction manager: multi-key transactions as Correctables.

:meth:`TransactionManager.execute` submits a multi-key write transaction to
the coordinator group (routed through the health-tracking
:class:`~repro.txn.balancer.LoadBalancer`) and returns a
:class:`~repro.core.correctable.Correctable`:

* a speculative **PREPARED** preliminary view fires as soon as every
  participant voted yes — the transaction will *probably* commit, but a
  coordinator crash before the decision is durable can still abort it;
* the **final** view carries the actual commit/abort outcome.

The manager reuses the same :class:`~repro.sim.failover.FailoverMixin` +
:class:`~repro.core.retry.RetryPolicy` seam as the storage clients: a timed
out submission is retried (with capped exponential backoff) against the
next healthy coordinator, within the transaction's absolute
:class:`~repro.core.retry.Deadline`.  Retries are idempotent — they carry
the same transaction id, and coordinators deduplicate by id.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from repro.core.consistency import STRONG, ConsistencyLevel
from repro.core.correctable import Correctable
from repro.core.errors import CorrectableError
from repro.core.retry import Deadline, RetryPolicy
from repro.sim.failover import FailoverMixin
from repro.sim.network import MESSAGE_HEADER_BYTES, Message, Network
from repro.sim.node import Node
from repro.txn.balancer import LoadBalancer
from repro.txn.config import TxnConfig

#: The speculative "all participants voted yes" consistency level: stronger
#: than causal (it reflects a coordinated, conflict-checked state) but
#: weaker than the final committed outcome.
PREPARED = ConsistencyLevel.register("prepared", 25)


class TransactionError(CorrectableError):
    """A transaction could not be driven to a known outcome."""


@dataclass
class PreparedViewStats:
    """Accounting for how often the speculative PREPARED view was right."""

    prepared_views: int = 0
    matched: int = 0
    mismatched: int = 0
    unresolved: int = 0

    def record_final(self, prepared_seen: bool, committed: bool) -> None:
        if not prepared_seen:
            return
        if committed:
            self.matched += 1
        else:
            self.mismatched += 1

    def accuracy(self) -> Optional[float]:
        """Fraction of resolved PREPARED views whose transaction committed."""
        resolved = self.matched + self.mismatched
        if resolved == 0:
            return None
        return self.matched / resolved


@dataclass
class _PendingTxn:
    txn_id: str
    writes: Dict[str, Any]
    sent_at: float
    correctable: Correctable
    deadline_ms: float
    on_final: Any = None
    prepared_seen: bool = False
    last_target: Optional[str] = None
    preferred: Optional[str] = None
    redirects: int = 0
    attempts: int = 0
    rotation_index: int = 0
    timeout_event: Optional[Any] = None
    metadata: Dict[str, Any] = field(default_factory=dict)


class TransactionManager(FailoverMixin, Node):
    """Issues multi-key transactions against the coordinator group."""

    def __init__(self, name: str, region: str, network: Network,
                 coordinators: Sequence[str], config: TxnConfig,
                 balancer: Optional[LoadBalancer] = None) -> None:
        super().__init__(name, region, network)
        self.config = config
        self.coordinators = tuple(coordinators)
        self.balancer = balancer if balancer is not None else LoadBalancer(
            self.coordinators,
            failure_threshold=config.breaker_failure_threshold,
            reset_timeout_ms=config.breaker_reset_ms)
        self._txn_ids = itertools.count(1)
        self._pending: Dict[str, _PendingTxn] = {}
        self.stats = PreparedViewStats()
        #: Acked outcomes, kept for the post-run atomicity audit:
        #: txn_id -> {"timestamp": (t, coord, seq), "writes": {...}}.
        self.acked_commits: Dict[str, Dict[str, Any]] = {}
        self.acked_aborts: set = set()
        # Instrumentation.
        self.txns_submitted = 0
        self.retries = 0
        self.failed_requests = 0
        self.redirects_followed = 0
        self.duplicate_finals = 0

    # -- issuing transactions -----------------------------------------------
    def execute(self, writes: Dict[str, Any],
                budget_ms: Optional[float] = None) -> Correctable:
        """Submit a multi-key transaction; returns its Correctable."""
        if not writes:
            raise ValueError("a transaction needs at least one write")
        txn_id = f"{self.name}:{next(self._txn_ids)}"
        now = self.scheduler.now()
        deadline = Deadline.after(
            now, budget_ms if budget_ms is not None
            else self.config.txn_deadline_ms)
        correctable = Correctable(clock=self.scheduler.now)
        pending = _PendingTxn(txn_id=txn_id, writes=dict(writes), sent_at=now,
                              correctable=correctable,
                              deadline_ms=deadline.expires_at_ms)
        pending.on_final = lambda response: self._complete(pending, response)
        self._pending[txn_id] = pending
        self.txns_submitted += 1
        self._dispatch(pending)
        return correctable

    def _dispatch(self, pending: _PendingTxn) -> None:
        now = self.scheduler.now()
        target = self.balancer.pick(now, preferred=pending.preferred,
                                    avoid=pending.last_target)
        pending.preferred = None
        pending.last_target = target
        size = MESSAGE_HEADER_BYTES + sum(
            self.config.key_size_bytes + self.config.value_size_bytes
            for _ in pending.writes)
        self.send(target, "txn_begin", {
            "txn_id": pending.txn_id,
            "writes": dict(pending.writes),
            "client": self.name,
            "deadline_ms": pending.deadline_ms,
        }, size_bytes=size)
        self._arm_request_timeout(pending, pending.txn_id,
                                  self.config.client_timeout_ms)

    # -- failover hooks (see FailoverMixin) ----------------------------------
    def _redispatch(self, pending: _PendingTxn) -> None:
        self._dispatch(pending)

    def _failover_retries(self) -> int:
        return self.config.client_retries

    def _retry_policy(self) -> RetryPolicy:
        policy = self._failover_policy
        if policy is None:
            policy = RetryPolicy(
                max_retries=self.config.client_retries,
                base_delay_ms=self.config.client_backoff_base_ms,
                multiplier=self.config.client_backoff_multiplier,
                cap_ms=self.config.client_backoff_cap_ms,
                jitter_ms=self.config.client_backoff_jitter_ms,
                label=f"failover:{self.name}")
            self._failover_policy = policy
        return policy

    def _on_request_timeout(self, txn_id: str) -> None:
        pending = self._pending.get(txn_id)
        if pending is None:
            return
        now = self.scheduler.now()
        if pending.last_target is not None:
            # Feed the health tracker: this coordinator went silent.
            self.balancer.record_failure(pending.last_target, now)
        if Deadline(pending.deadline_ms).expired(now):
            # No budget left for another attempt: fail now.
            pending.timeout_event = None
            self.failed_requests += 1
            del self._pending[txn_id]
            pending.on_final(self._timeout_failure_response(pending))
            return
        super()._on_request_timeout(txn_id)

    def _timeout_failure_response(self, pending: _PendingTxn) -> Dict[str, Any]:
        return {
            "outcome": "error",
            "timestamp": None,
            "error": "transaction timeout: no coordinator answered",
            "latency_ms": self.scheduler.now() - pending.sent_at,
        }

    # -- responses -----------------------------------------------------------
    def on_txn_redirect(self, message: Message) -> None:
        """A standby bounced us toward the coordinator it believes active."""
        payload = message.payload
        pending = self._pending.get(payload["txn_id"])
        if pending is None:
            return
        self._settle(pending)
        pending.redirects += 1
        self.redirects_followed += 1
        if pending.redirects <= 2 * len(self.coordinators):
            pending.preferred = payload.get("active")
            self._dispatch(pending)
            return
        # Redirect loop (no coordinator admits being active): burn a retry.
        self._on_request_timeout(pending.txn_id)

    def on_txn_prepared_notice(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.get(payload["txn_id"])
        if pending is None or pending.prepared_seen:
            return
        pending.prepared_seen = True
        self.stats.prepared_views += 1
        pending.correctable.update(
            {"txn_id": pending.txn_id, "outcome": "commit",
             "speculative": True},
            PREPARED,
            metadata={"latency_ms": self.scheduler.now() - pending.sent_at})

    def on_txn_final(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.pop(payload["txn_id"], None)
        if pending is None:
            self.duplicate_finals += 1
            return
        self._settle(pending)
        if pending.last_target is not None:
            self.balancer.record_success(pending.last_target)
        self._complete(pending, {
            "outcome": payload["outcome"],
            "timestamp": tuple(payload["timestamp"])
            if payload.get("timestamp") else None,
            "error": None,
            "latency_ms": self.scheduler.now() - pending.sent_at,
        })

    def _complete(self, pending: _PendingTxn,
                  response: Dict[str, Any]) -> None:
        outcome = response["outcome"]
        if outcome == "error":
            if pending.prepared_seen:
                self.stats.unresolved += 1
            pending.correctable.fail(TransactionError(response["error"]))
            return
        committed = outcome == "commit"
        self.stats.record_final(pending.prepared_seen, committed)
        if committed:
            self.acked_commits[pending.txn_id] = {
                "timestamp": response["timestamp"],
                "writes": dict(pending.writes),
                "latency_ms": response["latency_ms"],
            }
        else:
            self.acked_aborts.add(pending.txn_id)
        pending.correctable.close(
            {"txn_id": pending.txn_id, "outcome": outcome,
             "timestamp": response["timestamp"]},
            STRONG,
            metadata={"latency_ms": response["latency_ms"]})
