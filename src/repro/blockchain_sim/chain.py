"""Chain data structures: transactions, blocks, and the ledger."""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_tx_ids = itertools.count(1)


@dataclass(frozen=True)
class Transaction:
    """A transfer of ``amount`` from ``sender`` to ``recipient``."""

    sender: str
    recipient: str
    amount: float
    tx_id: str = field(default_factory=lambda: f"tx-{next(_tx_ids):08d}")

    def size_bytes(self) -> int:
        """Approximate wire size of the transaction."""
        return 250


@dataclass
class Block:
    """One block of the chain."""

    height: int
    parent_hash: str
    transactions: List[Transaction]
    mined_at: float

    @property
    def block_hash(self) -> str:
        payload = f"{self.height}:{self.parent_hash}:" + ",".join(
            tx.tx_id for tx in self.transactions)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


GENESIS_HASH = "genesis"


class Blockchain:
    """A single (longest) chain with orphaning of the tip on small forks."""

    def __init__(self) -> None:
        self._blocks: List[Block] = []
        self._tx_block_height: Dict[str, int] = {}
        self.orphaned_blocks = 0

    # -- chain state -------------------------------------------------------
    @property
    def height(self) -> int:
        return len(self._blocks)

    def tip_hash(self) -> str:
        return self._blocks[-1].block_hash if self._blocks else GENESIS_HASH

    def blocks(self) -> List[Block]:
        return list(self._blocks)

    # -- mutation ------------------------------------------------------------
    def append_block(self, transactions: List[Transaction],
                     mined_at: float) -> Block:
        """Mine a new block containing ``transactions`` on top of the tip."""
        block = Block(height=self.height + 1, parent_hash=self.tip_hash(),
                      transactions=list(transactions), mined_at=mined_at)
        self._blocks.append(block)
        for tx in transactions:
            self._tx_block_height[tx.tx_id] = block.height
        return block

    def orphan_tip(self) -> List[Transaction]:
        """Drop the newest block (a competing fork won); returns its transactions.

        The dropped transactions return to the mempool of whoever mined them;
        the caller decides whether to re-include them in a later block.
        """
        if not self._blocks:
            return []
        block = self._blocks.pop()
        self.orphaned_blocks += 1
        for tx in block.transactions:
            self._tx_block_height.pop(tx.tx_id, None)
        return list(block.transactions)

    # -- queries ----------------------------------------------------------------
    def confirmations(self, tx_id: str) -> int:
        """Number of blocks from the transaction's block to the tip (inclusive).

        Zero means the transaction is not currently part of the chain (still
        pending, or its block was orphaned).
        """
        height = self._tx_block_height.get(tx_id)
        if height is None:
            return 0
        return self.height - height + 1

    def contains(self, tx_id: str) -> bool:
        return tx_id in self._tx_block_height

    def balance(self, account: str, initial: float = 0.0) -> float:
        """Account balance implied by every transaction on the chain."""
        balance = initial
        for block in self._blocks:
            for tx in block.transactions:
                if tx.recipient == account:
                    balance += tx.amount
                if tx.sender == account:
                    balance -= tx.amount
        return balance
