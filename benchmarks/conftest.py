"""Shared helpers for the benchmark suite.

Each benchmark regenerates one figure of the paper and, besides the timing
collected by pytest-benchmark, writes the figure's data table to
``benchmarks/results/<name>.txt`` so the numbers can be compared against the
paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_BENCHMARKS_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark as ``slow`` so `-m "not slow"` runs in seconds."""
    for item in items:
        if _BENCHMARKS_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    """Write a rendered figure table to the results directory (and echo it)."""

    def _save(name: str, report: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(report + "\n", encoding="utf-8")
        print()
        print(report)

    return _save
